"""Legacy setup shim: lets `pip install -e . --no-use-pep517` work on
environments whose setuptools lacks the `wheel` package (offline installs).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
