"""Render phase trees as aligned text tables (the ``--trace`` view).

The renderer accepts either a live :class:`~repro.runtime.cost.PhaseNode`
(e.g. ``cost.phases``) or a loaded
:class:`~repro.obs.export.BenchmarkRecord`, and prints one row per phase
with tree indentation, work (absolute and as a share of the total), span,
wall time, entry count and item count.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.obs.export import BenchmarkRecord
from repro.runtime.cost import PhaseNode


def _fmt_wall(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_phase_table(
    source: PhaseNode | BenchmarkRecord, title: str | None = None
) -> str:
    """An aligned table of the phase tree, one row per phase.

    ``%work`` is relative to the total work (the root's work if nonzero,
    else the sum of the top-level phases), so nested phases show their
    share of the whole run, not of their parent.
    """
    if isinstance(source, BenchmarkRecord):
        root = source.phase_tree()
        if title is None:
            rev = f" @ {source.git_rev}" if source.git_rev else ""
            title = f"phase trace: {source.name}{rev}"
    else:
        root = source
        if title is None:
            title = "phase trace"

    top = list(root.children.values())
    total_work = root.work if root.work else sum(c.work for c in top)
    total_span = root.span if root.span else sum(c.span for c in top)
    total_wall = root.wall if root.wall else sum(c.wall for c in top)

    rows = []
    for depth, node in root.walk():
        if depth == 0:
            continue  # the root is the summary line below the table
        share = 100.0 * node.work / total_work if total_work else 0.0
        rows.append(
            [
                "  " * (depth - 1) + node.name,
                node.work,
                f"{share:.1f}%",
                node.span,
                _fmt_wall(node.wall),
                node.calls,
                node.items if node.items else "",
            ]
        )
    rows.append(
        [
            "total",
            total_work,
            "100.0%" if total_work else "",
            total_span,
            _fmt_wall(total_wall),
            "",
            "",
        ]
    )
    return format_table(
        ["phase", "work", "%work", "span", "wall", "calls", "items"],
        rows,
        title=title,
    )
