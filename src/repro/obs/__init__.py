"""Structured observability: phase tracing, metrics, and benchmark records.

Three complementary layers (``docs/observability.md`` is the guide):

- **Phase spans** live on :class:`~repro.runtime.cost.CostModel`
  (:meth:`~repro.runtime.cost.CostModel.phase`): hierarchical, named
  regions that attribute simulated work/span, wall time and item counts to
  algorithm stages -- Algorithm 2's semisort -> CPT build -> MSF kernel ->
  forest splice pipeline is instrumented out of the box.
  :class:`~repro.runtime.cost.PhaseNode` is re-exported here.
- **Metrics** (:mod:`repro.obs.metrics`): a process-wide
  :class:`MetricsRegistry` of counters, gauges and histograms with a
  zero-overhead no-op mode when disabled.
- **Exporters** (:mod:`repro.obs.export`): :class:`BenchmarkRecord` -- one
  machine-readable JSON document per benchmark run (parameters, per-phase
  costs, wall times, git revision, metrics snapshot) -- with JSON/JSONL
  writers and a loader; :mod:`repro.obs.trace` renders a record's phase
  tree as an aligned text table (also via ``python -m repro.report
  --trace``).
"""

from repro.runtime.cost import PhaseNode
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    set_metrics_enabled,
)
from repro.obs.export import (
    BenchmarkRecord,
    append_jsonl,
    git_revision,
    read_record,
    record_from_costs,
    write_record,
)
from repro.obs.trace import render_phase_table

__all__ = [
    "PhaseNode",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "set_metrics_enabled",
    "BenchmarkRecord",
    "record_from_costs",
    "write_record",
    "read_record",
    "append_jsonl",
    "git_revision",
    "render_phase_table",
]
