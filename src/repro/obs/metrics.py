"""Process-wide metrics: counters, gauges, histograms, and a registry.

Instrumented code asks the registry for a named instrument and updates it::

    from repro.obs import get_metrics

    get_metrics().counter("semisort.calls").inc()
    get_metrics().histogram("batch_msf.batch_size").observe(len(batch))

Instruments are created on first use and accumulate for the life of the
process (or until :meth:`MetricsRegistry.reset`).  When the registry is
disabled -- :func:`set_metrics_enabled(False) <set_metrics_enabled>` -- every
lookup returns a shared *null* instrument whose update methods are empty:
no allocation, no dict growth, no arithmetic.  That makes leaving metric
calls in hot paths safe.

Granularity convention: instruments are updated once per *batch operation*
(a ``batch_insert``, one semisort, one contraction pass), never once per
element -- the per-element story belongs to the
:class:`~repro.runtime.cost.CostModel`.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count (events, elements, calls)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value (sizes, levels, current window width)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observation."""
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A streaming distribution summary: count, sum, min, max, mean.

    Deliberately O(1) space -- no reservoir -- so it can sit on hot paths.
    ``summary()`` returns the JSON-ready aggregate.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """The aggregate as a plain dict (empty histogram -> zeros)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.3g})"


class _NullCounter(Counter):
    """Shared do-nothing counter returned by a disabled registry."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge returned by a disabled registry."""

    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram returned by a disabled registry."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter("<null>")
NULL_GAUGE = _NullGauge("<null>")
NULL_HISTOGRAM = _NullHistogram("<null>")


class MetricsRegistry:
    """Named instruments, created on first use.

    Args:
        enabled: when False, every lookup returns the shared null
            instrument of the right type and nothing is ever recorded.
            Can be flipped at runtime via :attr:`enabled`; instruments
            created while enabled keep their values across a disable /
            re-enable cycle.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (null instrument when disabled)."""
        if not self.enabled:
            return NULL_COUNTER
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (null instrument when disabled)."""
        if not self.enabled:
            return NULL_GAUGE
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (null instrument when disabled)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every instrument, sorted by name."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (names and values)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_registry = MetricsRegistry(enabled=True)


def get_metrics() -> MetricsRegistry:
    """The process-wide registry the library's hot paths report to."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap in a different process-wide registry; returns the old one."""
    global _registry
    old = _registry
    _registry = registry
    return old


def set_metrics_enabled(enabled: bool) -> bool:
    """Toggle the process-wide registry; returns the previous state."""
    prev = _registry.enabled
    _registry.enabled = enabled
    return prev
