"""Benchmark records: one JSON document per benchmark run.

A :class:`BenchmarkRecord` captures everything needed to read a run without
re-running it: the harness parameters, the per-phase cost breakdown (from
:class:`~repro.runtime.cost.CostModel` phase trees), the cost-model totals,
wall time, the git revision of the tree that produced it, and a snapshot of
the :mod:`repro.obs.metrics` registry.  The schema is documented in
``docs/observability.md`` and versioned via the ``schema`` field.

Invariant (by construction in :func:`record_from_costs`): the per-phase
``work`` of the record's top-level phases sums *exactly* to
``totals["work"]`` -- any work charged outside every phase is made explicit
as a synthetic ``(untracked)`` phase rather than silently dropped.

Schema v2 bounds the committed record's size: deep phase trees (a
replicated-service run nests replay phases 20 levels deep and fans out
per configuration) are *capped* to :data:`PHASE_DEPTH_CAP` levels /
:data:`PHASE_NODE_CAP` nodes before writing.  Because every node's
``work``/``span``/``wall`` are inclusive of its subtree, folding
descendants loses only drill-down detail, never accounting: a node whose
subtree was folded carries ``"collapsed": <n>`` (how many descendant
nodes it absorbed), so a reader can tell a genuine leaf from a capped
one.  Pass ``raw_phases=True`` (or set ``$REPRO_RAW_PHASES=1``) to keep
the full tree when investigating.  :meth:`BenchmarkRecord.from_dict`
reads v1 and v2 records alike -- v1 simply has no ``collapsed`` markers.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime.cost import CostModel, PhaseNode

SCHEMA = "repro.obs/benchmark-record/v2"
SCHEMA_V1 = "repro.obs/benchmark-record/v1"
#: schema tags :meth:`BenchmarkRecord.from_dict` accepts.
KNOWN_SCHEMAS = (SCHEMA, SCHEMA_V1)
UNTRACKED = "(untracked)"

#: default phase-tree caps applied by :func:`record_from_costs`.
PHASE_DEPTH_CAP = 4
PHASE_NODE_CAP = 400
#: set to a truthy value to commit uncapped phase trees.
RAW_PHASES_ENV = "REPRO_RAW_PHASES"

_git_rev_cache: dict[str, str | None] = {}


def git_revision(cwd: str | pathlib.Path | None = None) -> str | None:
    """The short git revision of ``cwd`` (cached; None outside a repo)."""
    key = str(pathlib.Path(cwd) if cwd is not None else pathlib.Path.cwd())
    if key not in _git_rev_cache:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=10,
            )
            _git_rev_cache[key] = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache[key] = None
    return _git_rev_cache[key]


@dataclass
class BenchmarkRecord:
    """One benchmark run, machine-readable.

    Attributes:
        name: the artifact name (matches ``bench_results/<name>.txt``).
        params: harness parameters (n, batch sizes, seeds, sweep values).
        phases: top-level phase dicts (:meth:`PhaseNode.to_dict` shape);
            their ``work`` values sum to ``totals["work"]``.
        totals: ``{"work", "span", "wall_s"}`` aggregated over the run.
        metrics: a :meth:`MetricsRegistry.as_dict` snapshot (may be empty).
        extra: free-form benchmark-specific results (fit residuals, table
            rows, assertions checked).
        git_rev: short revision of the producing tree (None if unknown).
        created: Unix timestamp of record creation.
        schema: record format version tag.
    """

    name: str
    params: dict = field(default_factory=dict)
    phases: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    git_rev: str | None = None
    created: float = 0.0
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        """The record as a JSON-ready plain dict."""
        return {
            "schema": self.schema,
            "name": self.name,
            "created": self.created,
            "git_rev": self.git_rev,
            "params": self.params,
            "totals": self.totals,
            "phases": self.phases,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchmarkRecord":
        """Rebuild a record from :meth:`to_dict` output (schema v1 or v2)."""
        schema = d.get("schema", SCHEMA)
        if schema not in KNOWN_SCHEMAS:
            raise ValueError(
                f"unknown benchmark-record schema {schema!r} "
                f"(known: {', '.join(KNOWN_SCHEMAS)})"
            )
        return cls(
            name=d["name"],
            params=dict(d.get("params", {})),
            phases=list(d.get("phases", [])),
            totals=dict(d.get("totals", {})),
            metrics=dict(d.get("metrics", {})),
            extra=dict(d.get("extra", {})),
            git_rev=d.get("git_rev"),
            created=float(d.get("created", 0.0)),
            schema=d.get("schema", SCHEMA),
        )

    def phase_tree(self) -> PhaseNode:
        """The record's phases as one rebuilt :class:`PhaseNode` root."""
        root = PhaseNode("total")
        root.work = int(self.totals.get("work", 0))
        root.span = int(self.totals.get("span", 0))
        root.wall = float(self.totals.get("wall_s", 0.0))
        for d in self.phases:
            child = PhaseNode.from_dict(d)
            root.children[child.name] = child
        return root


def _phase_nodes(d: dict) -> int:
    """Nodes in one phase dict's subtree (itself included)."""
    return 1 + sum(_phase_nodes(c) for c in d.get("children", ()))


def _cap_phase(d: dict, depth: int) -> dict:
    """Copy of ``d`` keeping at most ``depth`` levels.

    A node whose descendants are folded away gains ``"collapsed": <n>``
    -- the folded node count -- while its own inclusive ``work``/
    ``span``/``wall`` already account for them, so nothing is lost from
    the totals.
    """
    out = {k: v for k, v in d.items() if k != "children"}
    kids = d.get("children", ())
    if depth <= 1:
        folded = sum(_phase_nodes(c) for c in kids)
        if folded:
            out["collapsed"] = folded + int(out.get("collapsed", 0))
        out["children"] = []
    else:
        out["children"] = [_cap_phase(c, depth - 1) for c in kids]
    return out


def cap_phases(
    phases: list[dict],
    max_depth: int = PHASE_DEPTH_CAP,
    max_nodes: int = PHASE_NODE_CAP,
) -> list[dict]:
    """Bound a phase forest to ``max_depth`` levels and ``max_nodes`` nodes.

    Applies the depth cap first, then tightens it level by level until the
    node budget holds (top-level phases are never dropped -- the sum-to-
    totals invariant needs them all).  Folded subtrees are marked with
    ``"collapsed"`` counts; see :func:`_cap_phase`.
    """
    capped = phases
    for depth in range(max_depth, 0, -1):
        capped = [_cap_phase(p, depth) for p in phases]
        if sum(_phase_nodes(p) for p in capped) <= max_nodes:
            break
    return capped


def record_from_costs(
    name: str,
    costs: CostModel | Iterable[CostModel],
    params: dict | None = None,
    wall_s: float | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
    raw_phases: bool | None = None,
) -> BenchmarkRecord:
    """Build a record from one or more cost models' phase trees.

    Several models (e.g. one per sweep configuration) are merged phase-by-
    phase; totals are the sums of their work and span (the run executed
    them sequentially).  Work or span charged outside every phase becomes a
    synthetic ``(untracked)`` top-level phase, so top-level phase work
    always sums exactly to ``totals["work"]``.

    The phase forest is capped via :func:`cap_phases` unless
    ``raw_phases`` is true (default: the :data:`RAW_PHASES_ENV`
    environment toggle), keeping committed records reviewable.

    ``wall_s`` defaults to the summed wall time of the top-level phases.
    """
    cost_list = [costs] if isinstance(costs, CostModel) else list(costs)
    merged = PhaseNode("total")
    total_work = 0
    total_span = 0
    for cost in cost_list:
        merged.merge(cost.phases)
        total_work += cost.work
        total_span += cost.span

    phase_dicts = [c.to_dict() for c in merged.children.values()]
    tracked_work = sum(c.work for c in merged.children.values())
    tracked_span = sum(c.span for c in merged.children.values())
    if total_work - tracked_work or total_span - tracked_span:
        stray = PhaseNode(UNTRACKED)
        stray.work = total_work - tracked_work
        stray.span = total_span - tracked_span
        phase_dicts.append(stray.to_dict())

    if raw_phases is None:
        raw_phases = os.environ.get(RAW_PHASES_ENV, "").strip().lower() in (
            "1",
            "true",
            "yes",
        )
    if not raw_phases:
        phase_dicts = cap_phases(phase_dicts)

    if wall_s is None:
        wall_s = sum(c.wall for c in merged.children.values())
    return BenchmarkRecord(
        name=name,
        params=dict(params or {}),
        phases=phase_dicts,
        totals={"work": total_work, "span": total_span, "wall_s": wall_s},
        metrics=dict(metrics or {}),
        extra=dict(extra or {}),
        git_rev=git_revision(),
        created=time.time(),
    )


def write_record(record: BenchmarkRecord, path: str | pathlib.Path) -> pathlib.Path:
    """Write one record as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=False) + "\n")
    return path


def read_record(path: str | pathlib.Path) -> BenchmarkRecord:
    """Load a record written by :func:`write_record` (or a JSONL line)."""
    text = pathlib.Path(path).read_text()
    return BenchmarkRecord.from_dict(json.loads(text))


def append_jsonl(record: BenchmarkRecord, path: str | pathlib.Path) -> pathlib.Path:
    """Append one record as a single JSONL line (perf-trajectory logs)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as f:
        f.write(json.dumps(record.to_dict(), sort_keys=False) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[BenchmarkRecord]:
    """Load every record from a JSONL file written by :func:`append_jsonl`."""
    out = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(BenchmarkRecord.from_dict(json.loads(line)))
    return out
