"""Benchmark records: one JSON document per benchmark run.

A :class:`BenchmarkRecord` captures everything needed to read a run without
re-running it: the harness parameters, the per-phase cost breakdown (from
:class:`~repro.runtime.cost.CostModel` phase trees), the cost-model totals,
wall time, the git revision of the tree that produced it, and a snapshot of
the :mod:`repro.obs.metrics` registry.  The schema is documented in
``docs/observability.md`` and versioned via the ``schema`` field.

Invariant (by construction in :func:`record_from_costs`): the per-phase
``work`` of the record's top-level phases sums *exactly* to
``totals["work"]`` -- any work charged outside every phase is made explicit
as a synthetic ``(untracked)`` phase rather than silently dropped.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime.cost import CostModel, PhaseNode

SCHEMA = "repro.obs/benchmark-record/v1"
UNTRACKED = "(untracked)"

_git_rev_cache: dict[str, str | None] = {}


def git_revision(cwd: str | pathlib.Path | None = None) -> str | None:
    """The short git revision of ``cwd`` (cached; None outside a repo)."""
    key = str(pathlib.Path(cwd) if cwd is not None else pathlib.Path.cwd())
    if key not in _git_rev_cache:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=key,
                capture_output=True,
                text=True,
                timeout=10,
            )
            _git_rev_cache[key] = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            _git_rev_cache[key] = None
    return _git_rev_cache[key]


@dataclass
class BenchmarkRecord:
    """One benchmark run, machine-readable.

    Attributes:
        name: the artifact name (matches ``bench_results/<name>.txt``).
        params: harness parameters (n, batch sizes, seeds, sweep values).
        phases: top-level phase dicts (:meth:`PhaseNode.to_dict` shape);
            their ``work`` values sum to ``totals["work"]``.
        totals: ``{"work", "span", "wall_s"}`` aggregated over the run.
        metrics: a :meth:`MetricsRegistry.as_dict` snapshot (may be empty).
        extra: free-form benchmark-specific results (fit residuals, table
            rows, assertions checked).
        git_rev: short revision of the producing tree (None if unknown).
        created: Unix timestamp of record creation.
        schema: record format version tag.
    """

    name: str
    params: dict = field(default_factory=dict)
    phases: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)
    git_rev: str | None = None
    created: float = 0.0
    schema: str = SCHEMA

    def to_dict(self) -> dict:
        """The record as a JSON-ready plain dict."""
        return {
            "schema": self.schema,
            "name": self.name,
            "created": self.created,
            "git_rev": self.git_rev,
            "params": self.params,
            "totals": self.totals,
            "phases": self.phases,
            "metrics": self.metrics,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "BenchmarkRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            name=d["name"],
            params=dict(d.get("params", {})),
            phases=list(d.get("phases", [])),
            totals=dict(d.get("totals", {})),
            metrics=dict(d.get("metrics", {})),
            extra=dict(d.get("extra", {})),
            git_rev=d.get("git_rev"),
            created=float(d.get("created", 0.0)),
            schema=d.get("schema", SCHEMA),
        )

    def phase_tree(self) -> PhaseNode:
        """The record's phases as one rebuilt :class:`PhaseNode` root."""
        root = PhaseNode("total")
        root.work = int(self.totals.get("work", 0))
        root.span = int(self.totals.get("span", 0))
        root.wall = float(self.totals.get("wall_s", 0.0))
        for d in self.phases:
            child = PhaseNode.from_dict(d)
            root.children[child.name] = child
        return root


def record_from_costs(
    name: str,
    costs: CostModel | Iterable[CostModel],
    params: dict | None = None,
    wall_s: float | None = None,
    metrics: dict | None = None,
    extra: dict | None = None,
) -> BenchmarkRecord:
    """Build a record from one or more cost models' phase trees.

    Several models (e.g. one per sweep configuration) are merged phase-by-
    phase; totals are the sums of their work and span (the run executed
    them sequentially).  Work or span charged outside every phase becomes a
    synthetic ``(untracked)`` top-level phase, so top-level phase work
    always sums exactly to ``totals["work"]``.

    ``wall_s`` defaults to the summed wall time of the top-level phases.
    """
    cost_list = [costs] if isinstance(costs, CostModel) else list(costs)
    merged = PhaseNode("total")
    total_work = 0
    total_span = 0
    for cost in cost_list:
        merged.merge(cost.phases)
        total_work += cost.work
        total_span += cost.span

    phase_dicts = [c.to_dict() for c in merged.children.values()]
    tracked_work = sum(c.work for c in merged.children.values())
    tracked_span = sum(c.span for c in merged.children.values())
    if total_work - tracked_work or total_span - tracked_span:
        stray = PhaseNode(UNTRACKED)
        stray.work = total_work - tracked_work
        stray.span = total_span - tracked_span
        phase_dicts.append(stray.to_dict())

    if wall_s is None:
        wall_s = sum(c.wall for c in merged.children.values())
    return BenchmarkRecord(
        name=name,
        params=dict(params or {}),
        phases=phase_dicts,
        totals={"work": total_work, "span": total_span, "wall_s": wall_s},
        metrics=dict(metrics or {}),
        extra=dict(extra or {}),
        git_rev=git_revision(),
        created=time.time(),
    )


def write_record(record: BenchmarkRecord, path: str | pathlib.Path) -> pathlib.Path:
    """Write one record as pretty-printed JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=False) + "\n")
    return path


def read_record(path: str | pathlib.Path) -> BenchmarkRecord:
    """Load a record written by :func:`write_record` (or a JSONL line)."""
    text = pathlib.Path(path).read_text()
    return BenchmarkRecord.from_dict(json.loads(text))


def append_jsonl(record: BenchmarkRecord, path: str | pathlib.Path) -> pathlib.Path:
    """Append one record as a single JSONL line (perf-trajectory logs)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as f:
        f.write(json.dumps(record.to_dict(), sort_keys=False) + "\n")
    return path


def read_jsonl(path: str | pathlib.Path) -> list[BenchmarkRecord]:
    """Load every record from a JSONL file written by :func:`append_jsonl`."""
    out = []
    for line in pathlib.Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(BenchmarkRecord.from_dict(json.loads(line)))
    return out
