"""Aggregate the benchmark harness output into one report.

``python -m repro.report`` collects every table in ``bench_results/`` (as
written by ``pytest benchmarks/ --benchmark-only``) into a single
``REPORT.md`` next to it -- the regenerable companion to EXPERIMENTS.md.
Benchmarks also emit machine-readable ``bench_results/*.json`` records
(see ``docs/observability.md``); the report summarises them, and
``python -m repro.report --trace <record.json>`` renders one record's
phase tree as an aligned table.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# Render order: headline theorems, figures, Table 1 rows, ablations.
_SECTIONS = [
    ("Theorem 1.1 (batch-incremental MSF)", ["thm11_work_scaling", "thm11_span_scaling"]),
    ("Theorem 3.2 (compressed path trees)", ["thm32_cpt_scaling_path", "thm32_cpt_scaling_random-tree"]),
    ("Figure 1", ["fig1_cpt_example"]),
    ("Figure 2", ["fig2_rctree_example"]),
    (
        "Table 1",
        [
            "table1_connectivity",
            "table1_connectivity_query",
            "table1_connectivity_expire",
            "table1_bipartiteness",
            "table1_bipartiteness_trace",
            "table1_cyclefree",
            "table1_cyclefree_trace",
            "table1_msf",
            "table1_msf_quality",
            "table1_kcertificate",
            "table1_kcertificate_size",
            "table1_sparsifier_work",
            "table1_sparsifier_quality",
        ],
    ),
    ("Service layer", ["service_throughput", "replication_reads", "gateway", "shards"]),
    (
        "Ablations",
        [
            "ablation_batching",
            "ablation_msf_kernel_work",
            "ablation_ternary",
            "ablation_compress_rule",
            "ablation_compress_rule_agreement",
            "queries_work",
            "scale_end_to_end",
        ],
    ),
]


def _records_section(results_dir: pathlib.Path) -> list[str]:
    """A summary table of the structured JSON benchmark records."""
    from repro.analysis.tables import format_table
    from repro.obs.export import read_record

    paths = sorted(results_dir.glob("*.json"))
    if not paths:
        return []
    rows = []
    for path in paths:
        try:
            rec = read_record(path)
        except (ValueError, KeyError):
            continue  # not a benchmark record
        rows.append(
            [
                rec.name,
                rec.totals.get("work", ""),
                rec.totals.get("span", ""),
                f"{rec.totals.get('wall_s', 0.0):.3f}",
                len(rec.phases),
                rec.git_rev or "?",
            ]
        )
    if not rows:
        return []
    table = format_table(
        ["record", "work", "span", "wall_s", "phases", "rev"],
        rows,
        title="Structured records (render one with `python -m repro.report "
        "--trace bench_results/<name>.json`)",
    )
    return ["", "## Structured records", "", "```", table, "```"]


def build_report(results_dir: pathlib.Path) -> str:
    """Assemble the markdown report from the tables in ``results_dir``."""
    lines = [
        "# Benchmark report",
        "",
        "Regenerated from `bench_results/*.txt` by `python -m repro.report`;",
        "see EXPERIMENTS.md for the paper-claim-by-claim reading.",
    ]
    seen = set()
    for title, names in _SECTIONS:
        found = [n for n in names if (results_dir / f"{n}.txt").exists()]
        if not found:
            continue
        lines += ["", f"## {title}"]
        for name in found:
            seen.add(name)
            lines += ["", "```", (results_dir / f"{name}.txt").read_text().rstrip(), "```"]
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in seen
    )
    if extras:
        lines += ["", "## Other results"]
        for name in extras:
            lines += ["", "```", (results_dir / f"{name}.txt").read_text().rstrip(), "```"]
    lines += _records_section(results_dir)
    return "\n".join(lines) + "\n"


def _compare_records(records) -> str:
    """A totals table comparing several records side by side.

    Rendered whenever ``--trace`` receives two or more records -- the
    intended use is comparing the same benchmark run under different
    engines (``params["engine"]``, stamped by the benchmark harness), with
    wall-clock speedups computed against the *first* record given.
    """
    from repro.analysis.tables import format_table

    base_wall = records[0].totals.get("wall_s") or 0.0
    rows = []
    for rec in records:
        wall = rec.totals.get("wall_s") or 0.0
        speedup = f"{base_wall / wall:.2f}x" if base_wall and wall else "-"
        rows.append(
            [
                rec.name,
                rec.params.get("engine", "?"),
                rec.totals.get("work", ""),
                rec.totals.get("span", ""),
                f"{wall:.3f}",
                speedup,
            ]
        )
    return format_table(
        ["record", "engine", "work", "span", "wall_s", "speedup"],
        rows,
        title=f"Record comparison (wall-clock speedup vs {records[0].name})",
    )


def render_trace(paths: list[pathlib.Path]) -> int:
    """Print the phase-tree table of each benchmark record in ``paths``.

    With two or more records, also print a side-by-side totals comparison
    (engine tag, work/span, wall-clock speedup vs the first record).
    """
    from repro.obs.export import read_record
    from repro.obs.trace import render_phase_table

    status = 0
    records = []
    for i, path in enumerate(paths):
        if not path.exists():
            print(f"no such record: {path}", file=sys.stderr)
            status = 1
            continue
        try:
            rec = read_record(path)
        except (ValueError, KeyError) as exc:
            print(f"{path} is not a benchmark record: {exc}", file=sys.stderr)
            status = 1
            continue
        if i:
            print()
        records.append(rec)
        print(render_phase_table(rec))
        if rec.params:
            params = ", ".join(f"{k}={v}" for k, v in sorted(rec.params.items()))
            print(f"params: {params}")
    if len(records) > 1:
        print()
        print(_compare_records(records))
    return status


def _diff_rows(a, b) -> list[list[str]]:
    """Per-phase and totals comparison rows for two benchmark records."""
    def phase_map(rec) -> dict:
        return {p["name"]: p for p in rec.phases}

    def fmt_ratio(x: float, y: float) -> str:
        return f"{y / x:.2f}x" if x else "-"

    pa, pb = phase_map(a), phase_map(b)
    rows = []
    for name in sorted(set(pa) | set(pb)):
        da, db = pa.get(name), pb.get(name)
        wa = da["work"] if da else 0
        wb = db["work"] if db else 0
        ta = da.get("wall_s", 0.0) if da else 0.0
        tb = db.get("wall_s", 0.0) if db else 0.0
        both = da is not None and db is not None
        rows.append(
            [
                name,
                wa if da else "-",
                wb if db else "-",
                fmt_ratio(wa, wb) if both else "-",
                f"{ta:.4f}" if da else "-",
                f"{tb:.4f}" if db else "-",
                fmt_ratio(ta, tb) if both else "-",
            ]
        )
    ta, tb = a.totals.get("wall_s", 0.0), b.totals.get("wall_s", 0.0)
    wa, wb = a.totals.get("work", 0), b.totals.get("work", 0)
    rows.append(
        [
            "(totals)",
            wa,
            wb,
            fmt_ratio(wa, wb),
            f"{ta:.4f}",
            f"{tb:.4f}",
            fmt_ratio(ta, tb),
        ]
    )
    return rows


def render_trace_diff(path_a: pathlib.Path, path_b: pathlib.Path) -> int:
    """Print a phase-by-phase comparison of two benchmark records.

    The regression-triage view: column ``B/A`` is the second record's
    work (and wall time) relative to the first, per top-level phase and
    in total, so a drift flagged by ``scripts/gate.py`` can be localised
    to the phase that moved.  A missing, truncated, or
    schema-mismatched record exits 1 with a one-line diagnosis (an
    inspection tool must name the damage, not traceback on it).
    """
    from repro.analysis.tables import format_table
    from repro.obs.export import read_record

    records = []
    for path in (path_a, path_b):
        if not path.exists():
            print(f"no such record: {path}", file=sys.stderr)
            return 1
        try:
            records.append(read_record(path))
        except (ValueError, KeyError) as exc:
            print(
                f"{path} is not a readable benchmark record: {exc}",
                file=sys.stderr,
            )
            return 1
    a, b = records
    print(
        format_table(
            ["phase", "work A", "work B", "B/A", "wall A", "wall B", "B/A"],
            _diff_rows(a, b),
            title=f"Trace diff: A={a.name} vs B={b.name}",
        )
    )
    for tag, rec in (("A", a), ("B", b)):
        params = ", ".join(f"{k}={v}" for k, v in sorted(rec.params.items()))
        print(f"{tag}: {rec.name} rev={rec.git_rev or '?'}"
              + (f" ({params})" if params else ""))
    return 0


def _wal_summary_of(data_dir: pathlib.Path) -> dict:
    """One data directory's WAL summary dict; raises on damage."""
    from repro.service.service import WAL_DIRNAME, WAL_FILENAME
    from repro.service.wal import wal_summary

    wal_dir = data_dir / WAL_DIRNAME
    if not wal_dir.is_dir():
        if not (data_dir / WAL_FILENAME).exists():
            raise FileNotFoundError("no WAL")
        # A legacy single-file layout: summarise it as one segment
        # without migrating (read-only inspection must not mutate).
        from repro.service.wal import read_wal

        records, good = read_wal(data_dir / WAL_FILENAME)
        return {
            "segments": 1,
            "base_lsn": records[0].lsn if records else 0,
            "next_lsn": (records[-1].lsn + 1) if records else 0,
            "rounds": len(records),
            "bytes": good,
            "epoch": records[-1].epoch if records else 0,
        }
    return wal_summary(wal_dir)


def render_wal(data_dirs: list[pathlib.Path]) -> int:
    """Summarise one or more service data directories' WALs.

    One line per directory; with several (a sharded deployment's
    ``shard0..shardK-1`` WAL dirs in one invocation) also a combined
    totals line.  Every directory is inspected even after a failure --
    one damaged shard must not hide the healthy ones' state -- and any
    failure makes the exit status 1.
    """
    from repro.service.wal import WalCorruption

    status = 0
    summaries = []
    for data_dir in data_dirs:
        try:
            s = _wal_summary_of(data_dir)
        except FileNotFoundError:
            print(f"{data_dir}: no WAL", file=sys.stderr)
            status = 1
            continue
        except WalCorruption as exc:
            # An inspection tool must diagnose a damaged log, not crash
            # on it: name the damage and exit nonzero.
            print(f"{data_dir}: corrupt WAL: {exc}", file=sys.stderr)
            status = 1
            continue
        except OSError as exc:
            print(f"{data_dir}: cannot read WAL: {exc}", file=sys.stderr)
            status = 1
            continue
        summaries.append(s)
        print(
            f"{data_dir}: {s['segments']} segment(s), "
            f"lsn [{s['base_lsn']}, {s['next_lsn']}) "
            f"({s['rounds']} rounds), {s['bytes']} bytes, epoch {s['epoch']}"
        )
    if len(data_dirs) > 1 and summaries:
        print(
            f"combined: {len(summaries)}/{len(data_dirs)} dirs, "
            f"{sum(s['segments'] for s in summaries)} segment(s), "
            f"{sum(s['rounds'] for s in summaries)} rounds, "
            f"{sum(s['bytes'] for s in summaries)} bytes, "
            f"max epoch {max(s['epoch'] for s in summaries)}"
        )
    return status


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: write ``REPORT.md``, or render traces with --trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description="Aggregate bench_results/ into REPORT.md, or render the "
        "phase trace of structured benchmark records.",
    )
    parser.add_argument(
        "--trace",
        nargs="+",
        metavar="RECORD.json",
        help="render the phase tree of one or more benchmark records "
        "instead of building REPORT.md",
    )
    parser.add_argument(
        "--trace-diff",
        nargs=2,
        metavar=("A.json", "B.json"),
        help="print a phase-by-phase comparison of two benchmark records "
        "(work and wall-time ratios per phase; exit 1 on unreadable or "
        "schema-mismatched records)",
    )
    parser.add_argument(
        "--wal",
        nargs="+",
        metavar="DATA_DIR",
        help="print a one-line summary of each service data directory's "
        "write-ahead log (segments, LSN range, bytes, epoch); several "
        "directories (e.g. a sharded deployment's shard0..shardK-1) also "
        "get a combined totals line",
    )
    parser.add_argument(
        "results",
        nargs="?",
        default="bench_results",
        help="results directory (default: bench_results)",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    if args.trace:
        return render_trace([pathlib.Path(p) for p in args.trace])
    if args.trace_diff:
        return render_trace_diff(
            pathlib.Path(args.trace_diff[0]), pathlib.Path(args.trace_diff[1])
        )
    if args.wal:
        return render_wal([pathlib.Path(p) for p in args.wal])

    results = pathlib.Path(args.results)
    if not results.is_dir():
        print(
            f"no {results}/ directory -- run `pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    out = results / "REPORT.md"
    out.write_text(build_report(results))
    print(f"wrote {out} ({sum(1 for _ in results.glob('*.txt'))} tables)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
