"""Aggregate the benchmark harness output into one report.

``python -m repro.report`` collects every table in ``bench_results/`` (as
written by ``pytest benchmarks/ --benchmark-only``) into a single
``REPORT.md`` next to it -- the regenerable companion to EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
import sys

# Render order: headline theorems, figures, Table 1 rows, ablations.
_SECTIONS = [
    ("Theorem 1.1 (batch-incremental MSF)", ["thm11_work_scaling", "thm11_span_scaling"]),
    ("Theorem 3.2 (compressed path trees)", ["thm32_cpt_scaling_path", "thm32_cpt_scaling_random-tree"]),
    ("Figure 1", ["fig1_cpt_example"]),
    ("Figure 2", ["fig2_rctree_example"]),
    (
        "Table 1",
        [
            "table1_connectivity",
            "table1_connectivity_query",
            "table1_connectivity_expire",
            "table1_bipartiteness",
            "table1_bipartiteness_trace",
            "table1_cyclefree",
            "table1_cyclefree_trace",
            "table1_msf",
            "table1_msf_quality",
            "table1_kcertificate",
            "table1_kcertificate_size",
            "table1_sparsifier_work",
            "table1_sparsifier_quality",
        ],
    ),
    (
        "Ablations",
        [
            "ablation_batching",
            "ablation_msf_kernel_work",
            "ablation_ternary",
            "ablation_compress_rule",
            "ablation_compress_rule_agreement",
            "queries_work",
            "scale_end_to_end",
        ],
    ),
]


def build_report(results_dir: pathlib.Path) -> str:
    """Assemble the markdown report from the tables in ``results_dir``."""
    lines = [
        "# Benchmark report",
        "",
        "Regenerated from `bench_results/*.txt` by `python -m repro.report`;",
        "see EXPERIMENTS.md for the paper-claim-by-claim reading.",
    ]
    seen = set()
    for title, names in _SECTIONS:
        found = [n for n in names if (results_dir / f"{n}.txt").exists()]
        if not found:
            continue
        lines += ["", f"## {title}"]
        for name in found:
            seen.add(name)
            lines += ["", "```", (results_dir / f"{name}.txt").read_text().rstrip(), "```"]
    extras = sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in seen
    )
    if extras:
        lines += ["", "## Other results"]
        for name in extras:
            lines += ["", "```", (results_dir / f"{name}.txt").read_text().rstrip(), "```"]
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: write ``REPORT.md`` into the results directory."""
    argv = sys.argv[1:] if argv is None else argv
    results = pathlib.Path(argv[0]) if argv else pathlib.Path("bench_results")
    if not results.is_dir():
        print(
            f"no {results}/ directory -- run `pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    out = results / "REPORT.md"
    out.write_text(build_report(results))
    print(f"wrote {out} ({sum(1 for _ in results.glob('*.txt'))} tables)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
