"""repro: work-efficient batch-incremental minimum spanning trees.

A production-quality Python reproduction of Anderson, Blelloch and
Tangwongsan, *"Work-efficient Batch-incremental Minimum Spanning Trees with
Applications to the Sliding Window Model"* (SPAA 2020, arXiv:2002.05710).

Public entry points:

- :class:`repro.core.BatchIncrementalMSF` -- the paper's main data structure
  (Algorithm 2): batch edge insertion in ``O(l lg(1 + n/l))`` expected work.
- :func:`repro.core.compressed_path_tree` -- the compressed path tree
  (Section 3, Algorithm 1).
- :mod:`repro.trees` -- batch-dynamic rake-compress trees.
- :mod:`repro.sliding_window` -- the six sliding-window structures of
  Section 5 (connectivity, bipartiteness, approximate MSF weight,
  k-certificates, cycle-freeness, sparsifiers).
- :mod:`repro.msf` -- static MSF kernels (Kruskal / Boruvka / Prim / KKT).
- :mod:`repro.runtime` -- the work-span cost model the bounds are measured in.
"""

__version__ = "1.0.0"

# Convenience top-level exports (the full surface lives in the subpackages).
from repro.core import BatchIncrementalMSF, SequentialIncrementalMSF
from repro.trees import DynamicForest, make_rc_forest, resolve_engine
from repro.runtime import CostModel

__all__ = [
    "BatchIncrementalMSF",
    "SequentialIncrementalMSF",
    "DynamicForest",
    "CostModel",
    "make_rc_forest",
    "resolve_engine",
    "__version__",
]
