"""Incremental (insert-only) analogs of the sliding-window structures.

Section 5.7 observes that replacing the MSF-based connectivity structure by
the batched union-find of Simsiri et al. turns the ``lg(1 + n/l)`` factor of
every application into ``alpha(n)`` in the incremental setting (Table 1,
first column).  This module provides those analogs:

- :class:`IncrementalConnectivity` -- Theorem 5.2 analog: ``numComponents``
  in O(1), spanning-forest edge list maintained on the side.
- :class:`IncrementalBipartiteness` -- cycle double cover over two
  connectivity structures.
- :class:`IncrementalCycleFree` -- a cycle exists iff some insert closed one.
- :class:`IncrementalKCertificate` -- k cascading spanning forests,
  ``O(k l alpha(n))`` work per batch.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.connectivity.batch_uf import BatchUnionFind
from repro.runtime.cost import CostModel


class IncrementalConnectivity:
    """Insert-only connectivity: ``O(l alpha(n))`` expected work per batch."""

    def __init__(self, n: int, seed: int = 0xCC, cost: CostModel | None = None) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._uf = BatchUnionFind(n, seed=seed, cost=self.cost)
        self.forest_edges: list[tuple[int, int]] = []

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> list[tuple[int, int]]:
        """Insert edges; returns those that extended the spanning forest."""
        if not edges:
            return []
        us = np.fromiter((e[0] for e in edges), dtype=np.int64, count=len(edges))
        vs = np.fromiter((e[1] for e in edges), dtype=np.int64, count=len(edges))
        pos = self._uf.batch_union(us, vs)
        new = [(int(us[p]), int(vs[p])) for p in pos]
        self.forest_edges.extend(new)
        return new

    def is_connected(self, u: int, v: int) -> bool:
        """O(alpha(n)) work and span."""
        return self._uf.connected(u, v)

    @property
    def num_components(self) -> int:
        """O(1) worst-case."""
        return self._uf.num_components


class IncrementalBipartiteness:
    """Insert-only bipartiteness via the cycle double cover reduction.

    ``G`` is bipartite iff its double cover ``D(G)`` has exactly twice as
    many components (Section 5.2); both are tracked with union-find.
    """

    def __init__(self, n: int, seed: int = 0xCC, cost: CostModel | None = None) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._g = IncrementalConnectivity(n, seed=seed, cost=self.cost)
        self._cover = IncrementalConnectivity(2 * n, seed=seed + 1, cost=self.cost)

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges into the graph and its double cover."""
        self._g.batch_insert(edges)
        cover_edges = []
        for u, v in edges:
            cover_edges.append((u, self.n + v))
            cover_edges.append((self.n + u, v))
        self._cover.batch_insert(cover_edges)

    def is_bipartite(self) -> bool:
        """O(1) worst-case work and span.

        Isolated vertices of G contribute two isolated cover vertices each,
        so the doubling criterion holds verbatim with both counts including
        singletons.
        """
        return self._cover.num_components == 2 * self._g.num_components


class IncrementalCycleFree:
    """Insert-only cycle detection: a cycle appears exactly when an edge
    arrives whose endpoints are already connected."""

    def __init__(self, n: int, seed: int = 0xCC, cost: CostModel | None = None) -> None:
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._conn = IncrementalConnectivity(n, seed=seed, cost=self.cost)
        self._edges_seen = 0

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges; O(l alpha(n)) expected work."""
        # Self-loops count as cycles: they are tallied in _edges_seen but
        # can never enter the forest, so has_cycle() stays true afterwards.
        real = [(u, v) for u, v in edges if u != v]
        self._edges_seen += len(edges)
        self._conn.batch_insert(real)

    def has_cycle(self) -> bool:
        """O(1): edges beyond the spanning forest certify a cycle."""
        return self._edges_seen > len(self._conn.forest_edges)


class IncrementalKCertificate:
    """Insert-only k-certificate: k cascading maximal spanning forests.

    Each arriving edge is placed in the first forest ``F_i`` where it does
    not close a cycle; edges falling off the end are discarded.  The union
    of the forests preserves all cuts of size <= k (properties P1-P3).
    ``O(k l alpha(n))`` expected work per batch.
    """

    def __init__(
        self, n: int, k: int, seed: int = 0xCC, cost: CostModel | None = None
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._forests = [
            IncrementalConnectivity(n, seed=seed + i, cost=self.cost)
            for i in range(k)
        ]

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges, cascading replacements through the k forests."""
        overflow = [(u, v) for u, v in edges if u != v]
        for forest in self._forests:
            if not overflow:
                break
            kept = set(
                map(tuple, forest.batch_insert(overflow))
            )
            # Edges not kept cascade; batch duplicates may repeat pairs, so
            # match by position rather than value.
            nxt = []
            remaining_kept = set(kept)
            for e in overflow:
                if e in remaining_kept:
                    remaining_kept.discard(e)
                else:
                    nxt.append(e)
            overflow = nxt

    def certificate(self) -> list[tuple[int, int]]:
        """The union of the k forests: at most ``k (n - 1)`` edges."""
        out: list[tuple[int, int]] = []
        for f in self._forests:
            out.extend(f.forest_edges)
        return out

    def connectivity_lower_bound(self, u: int, v: int) -> int:
        """Largest ``i`` with ``u, v`` connected in ``F_i`` (property P1:
        they are then at least i-connected in G)."""
        bound = 0
        for i, f in enumerate(self._forests, start=1):
            if f.is_connected(u, v):
                bound = i
            else:
                break
        return bound
