"""Parallel connected components and incremental connectivity.

This package provides the incremental-model substrate of Section 5.7: the
work-efficient parallel batched union-find of Simsiri et al. [46], whose
batch insertion runs finds on the endpoints and then a Gazit-style
randomized star-contraction connected-components pass [26] over the root
graph.  The spanning edges that the components pass returns are exactly the
new spanning forest edges, which yields the incremental analog of
Theorem 5.2 (``numComponents`` in O(1)).
"""

from repro.connectivity.components import connected_components, spanning_forest
from repro.connectivity.batch_uf import BatchUnionFind
from repro.connectivity.incremental import (
    IncrementalBipartiteness,
    IncrementalConnectivity,
    IncrementalCycleFree,
    IncrementalKCertificate,
)

__all__ = [
    "connected_components",
    "spanning_forest",
    "BatchUnionFind",
    "IncrementalConnectivity",
    "IncrementalBipartiteness",
    "IncrementalCycleFree",
    "IncrementalKCertificate",
]
