"""Work-efficient batched union-find (Simsiri et al. [46]).

``batch_union`` first runs ``find`` on every endpoint (near-constant
amortized work per find with path halving + union by rank), then computes
connected components of the *root graph* with one star-contraction pass,
and finally installs the new component representatives.  The spanning
edges the contraction reports are exactly the batch edges that joined
previously-separate components -- the hook the incremental-connectivity
analog of Theorem 5.2 needs.

Work: ``O(l alpha(n))`` expected per batch of ``l`` edges;
span: ``O(polylog n)``.
"""

from __future__ import annotations

import numpy as np

from repro.connectivity.components import _star_contraction
from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel, log2ceil


class BatchUnionFind:
    """Union-find over ``0..n-1`` with parallel batched unions."""

    def __init__(self, n: int, seed: int = 0xCC, cost: CostModel | None = None) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._parent = np.arange(n, dtype=np.int64)
        self._rank = np.zeros(n, dtype=np.int8)
        self._seed = seed
        self._epoch = 0
        self.num_components = n

    def find(self, x: int) -> int:
        """Representative of ``x``; amortized near-constant (path halving)."""
        p = self._parent
        steps = 0
        while p[x] != x:
            p[x] = p[p[x]]
            x = int(p[x])
            steps += 1
        self.cost.add(work=steps + 1, span=1)
        return x

    def connected(self, u: int, v: int) -> bool:
        """Same-component test; amortized near-constant."""
        return self.find(u) == self.find(v)

    def union(self, u: int, v: int) -> bool:
        """Single union; True if the components were previously distinct."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            return False
        if self._rank[ru] < self._rank[rv]:
            ru, rv = rv, ru
        self._parent[rv] = ru
        if self._rank[ru] == self._rank[rv]:
            self._rank[ru] += 1
        self.num_components -= 1
        self.cost.add(work=1, span=1)
        return True

    def batch_union(self, us, vs) -> np.ndarray:
        """Union every pair ``(us[i], vs[i])``; returns the positions whose
        edges joined two previously-separate components (a spanning forest
        of the batch over the current partition).

        ``O(l alpha(n))`` expected work, ``O(polylog n)`` span.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("endpoint arrays must have equal length")
        ell = us.shape[0]
        if ell == 0:
            return np.empty(0, dtype=np.int64)
        metrics = get_metrics()
        metrics.counter("batch_uf.batches").inc()
        metrics.histogram("batch_uf.batch_size").observe(ell)

        # Stage 1: find the representative of every endpoint.
        with self.cost.phase("uf-find", items=2 * ell):
            roots_u = np.fromiter(
                (self.find(int(x)) for x in us), dtype=np.int64, count=ell
            )
            roots_v = np.fromiter(
                (self.find(int(x)) for x in vs), dtype=np.int64, count=ell
            )
            self.cost.add(work=ell, span=log2ceil(max(ell, 2)))

        # Stage 2: connected components of the root graph (star contraction).
        with self.cost.phase("uf-components", items=ell):
            self._epoch += 1
            comp, forest_pos = _star_contraction(
                self.n, roots_u, roots_v, self._seed ^ self._epoch, self.cost
            )

        # Stage 3: install the new component representatives.
        with self.cost.phase("uf-install", items=len(forest_pos)):
            for pos in forest_pos:
                joined = self.union(int(us[pos]), int(vs[pos]))
                assert joined  # star contraction only reports cross edges
        return forest_pos
