"""Randomized star-contraction connected components (Gazit-style).

Each round, vertices flip a coin; every *tail* vertex with at least one
*head* neighbour hooks onto one, forming stars that are contracted by
pointer jumping.  A constant fraction of the live edges disappears per
round in expectation, giving ``O(m)`` expected work and ``O(lg n)`` rounds
-- the structure of Gazit's optimal randomized CC algorithm [26] that
Simsiri et al. [46] run over union-find roots.

:func:`spanning_forest` additionally reports, per hook, the edge that
realised it; those edges form a spanning forest of the input (what the
incremental-connectivity layer appends to its forest edge list).
"""

from __future__ import annotations

import numpy as np

from repro.runtime.cost import CostModel, log2ceil
from repro.runtime.hashing import splitmix64


def _coins(vertices: np.ndarray, salt: int) -> np.ndarray:
    """Vectorized splitmix64 coin flips (uint64 arithmetic wraps mod 2^64)."""
    x = vertices.astype(np.uint64) * np.uint64(0x100000001B3)
    x ^= np.uint64(salt)
    x += np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return (x & np.uint64(1)).astype(bool)


def connected_components(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    seed: int = 0xCC,
    cost: CostModel | None = None,
) -> np.ndarray:
    """Component labels (smallest reachable root id per component not
    guaranteed; labels are representative vertex ids).

    Expected ``O(n + m)`` work, ``O(lg n)`` span w.h.p.
    """
    labels, _ = _star_contraction(n, us, vs, seed, cost)
    return labels


def spanning_forest(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    seed: int = 0xCC,
    cost: CostModel | None = None,
) -> np.ndarray:
    """Positions of an (arbitrary) spanning forest of the input edges.

    Expected ``O(n + m)`` work, ``O(lg n)`` span w.h.p.
    """
    _, forest_pos = _star_contraction(n, us, vs, seed, cost)
    forest_pos.sort()
    return forest_pos


def _star_contraction(
    n: int,
    us: np.ndarray,
    vs: np.ndarray,
    seed: int,
    cost: CostModel | None,
) -> tuple[np.ndarray, np.ndarray]:
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    m = us.shape[0]
    comp = np.arange(n, dtype=np.int64)
    chosen: list[int] = []
    if m == 0:
        return comp, np.empty(0, dtype=np.int64)

    live = np.nonzero(us != vs)[0]
    round_ = 0
    lg = log2ceil(max(n, 2))
    while live.size:
        cu = comp[us[live]]
        cv = comp[vs[live]]
        cross = cu != cv
        live = live[cross]
        if live.size == 0:
            break
        cu, cv = cu[cross], cv[cross]
        if cost is not None:
            cost.add(work=int(live.size), span=lg)

        salt = splitmix64(seed ^ round_)
        verts = np.unique(np.concatenate([cu, cv]))
        heads = np.zeros(n, dtype=bool)
        heads[verts] = _coins(verts, salt)

        # Tail endpoints hook onto head endpoints (arbitrary CRCW write wins).
        hook = np.arange(n, dtype=np.int64)
        hook_edge = np.full(n, -1, dtype=np.int64)
        tail_u = ~heads[cu] & heads[cv]
        hook[cu[tail_u]] = cv[tail_u]
        hook_edge[cu[tail_u]] = live[tail_u]
        tail_v = ~heads[cv] & heads[cu]
        hook[cv[tail_v]] = cu[tail_v]
        hook_edge[cv[tail_v]] = live[tail_v]

        hooked = np.nonzero(hook_edge >= 0)[0]
        chosen.extend(int(e) for e in hook_edge[hooked])
        comp = hook[comp]  # stars have depth 1: a single jump contracts them
        round_ += 1
        if round_ > 4 * lg + 64:  # pragma: no cover - probabilistic safety
            raise RuntimeError("star contraction failed to converge")

    return comp, np.asarray(chosen, dtype=np.int64)
