"""Seeded fault injection behind the :class:`StorageIO` seam.

:class:`FaultyIO` is the adversary the resilience machinery is tested
against.  It implements every durable operation the WAL and snapshot
store perform, and -- while *armed* -- rolls a seeded die on each one:

===============  ====================================================
operation        injected faults
===============  ====================================================
``append``       transient ``EIO``/``ENOSPC``; *torn write* (a strict
                 prefix of the bytes lands, then the error fires)
``write_bytes``  same as ``append`` (snapshot checkpoint bodies)
``fsync``        transient ``EIO`` (write may or may not be durable --
                 the WAL discards to its last known-good offset)
``fsync_dir``    transient ``EIO``
``read_from``    transient ``EIO`` (follower tailing)
``read_bytes``   single-bit flip in the returned payload (snapshot
                 corruption: recovery must fall back to an older
                 checkpoint)
===============  ====================================================

``truncate``, ``replace``, and ``unlink`` are never faulted:
``truncate`` is the WAL's *repair* primitive (faulting the repair of a
torn append would manufacture mid-file garbage no real crash produces),
and ``replace``/``unlink`` are atomic-by-contract in the fault model --
the interesting snapshot failures are torn bodies and bit rot, which the
seam already covers upstream of the rename.

All randomness comes from one seeded stream, so a single-threaded test
replays decisions exactly; ``max_faults`` bounds a window so retries can
eventually succeed.  Injected faults are counted per kind in
``chaos.faults.<kind>`` metrics and on :attr:`FaultyIO.injected`.
"""

from __future__ import annotations

import errno
import pathlib
import random
import threading
import time
from typing import Callable

from repro.obs.metrics import get_metrics
from repro.service.storage import StorageIO

#: errnos the injector alternates between for transient write faults.
_WRITE_ERRNOS = (errno.EIO, errno.ENOSPC)


class FaultyIO(StorageIO):
    """A :class:`StorageIO` that injects seeded, deterministic faults.

    Args:
        seed: seeds the decision stream (same seed, same faults -- in
            single-threaded use; under concurrency the per-call decisions
            stay seeded but interleaving is the scheduler's).
        p_write_error: probability an ``append``/``write_bytes`` raises a
            transient ``OSError`` before writing anything.
        p_torn_write: probability an ``append``/``write_bytes`` writes
            only a strict prefix and then raises (the torn-write model).
        p_fsync_error: probability an ``fsync``/``fsync_dir`` raises.
        p_read_error: probability a ``read_from`` (WAL tailing) raises.
        p_bitflip: probability a ``read_bytes`` (snapshot load) returns
            the payload with one bit flipped.
        latency: extra seconds added to every armed operation (crude disk
            stall model).
        sleep: injectable sleep for the latency model.

    The injector starts *disarmed* (fault-free).  :meth:`arm` opens a
    fault window, optionally bounded to ``max_faults`` injections so a
    bounded retry policy can outlast it; :meth:`disarm` closes it.
    """

    def __init__(
        self,
        seed: int = 0,
        p_write_error: float = 0.0,
        p_torn_write: float = 0.0,
        p_fsync_error: float = 0.0,
        p_read_error: float = 0.0,
        p_bitflip: float = 0.0,
        latency: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.seed = seed
        self.p_write_error = p_write_error
        self.p_torn_write = p_torn_write
        self.p_fsync_error = p_fsync_error
        self.p_read_error = p_read_error
        self.p_bitflip = p_bitflip
        self.latency = latency
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._armed = False
        self._budget: int | None = None
        #: total faults injected over the injector's lifetime.
        self.injected = 0

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def arm(self, max_faults: int | None = None) -> None:
        """Open a fault window (``max_faults`` bounds it; None: unbounded)."""
        with self._lock:
            self._armed = True
            self._budget = max_faults

    def disarm(self) -> None:
        """Close the fault window: all operations succeed again."""
        with self._lock:
            self._armed = False
            self._budget = None

    @property
    def armed(self) -> bool:
        """Whether a fault window is currently open."""
        with self._lock:
            return self._armed and (self._budget is None or self._budget > 0)

    # ------------------------------------------------------------------
    # Decision stream
    # ------------------------------------------------------------------

    def _roll(self, p: float, kind: str) -> bool:
        """One seeded fault decision; True consumes budget and counts."""
        with self._lock:
            if not self._armed or p <= 0.0:
                return False
            if self._budget is not None and self._budget <= 0:
                return False
            if self._rng.random() >= p:
                return False
            if self._budget is not None:
                self._budget -= 1
            self.injected += 1
        get_metrics().counter(f"chaos.faults.{kind}").inc()
        return True

    def _draw(self, n: int) -> int:
        """A seeded integer in ``[0, n)`` (tear offsets, flip positions)."""
        with self._lock:
            return self._rng.randrange(n)

    def _stall(self) -> None:
        if self.latency > 0.0 and self.armed:
            self._sleep(self.latency)

    def _write_fault(self, f, data: bytes, op: str) -> None:
        """Shared fault preamble for ``append`` and ``write_bytes``."""
        if len(data) > 1 and self._roll(self.p_torn_write, f"torn_{op}"):
            # A strict prefix lands (flushed, like a crash mid-write),
            # then the error fires.  The WAL repairs by truncating to its
            # last known-good offset; a snapshot tmp is simply abandoned.
            f.write(data[: 1 + self._draw(len(data) - 1)])
            f.flush()
            raise OSError(errno.EIO, f"injected torn {op}")
        if self._roll(self.p_write_error, f"{op}_error"):
            raise OSError(
                _WRITE_ERRNOS[self._draw(len(_WRITE_ERRNOS))],
                f"injected {op} error",
            )

    # ------------------------------------------------------------------
    # StorageIO overrides
    # ------------------------------------------------------------------

    def append(self, f, data: bytes) -> None:
        self._stall()
        self._write_fault(f, data, "append")
        super().append(f, data)

    def write_bytes(self, f, data: bytes) -> None:
        self._stall()
        self._write_fault(f, data, "write")
        super().write_bytes(f, data)

    def fsync(self, f) -> None:
        self._stall()
        if self._roll(self.p_fsync_error, "fsync_error"):
            raise OSError(errno.EIO, "injected fsync error")
        super().fsync(f)

    def fsync_dir(self, directory) -> None:
        self._stall()
        if self._roll(self.p_fsync_error, "fsync_dir_error"):
            raise OSError(errno.EIO, "injected fsync_dir error")
        super().fsync_dir(directory)

    def read_from(self, path, offset: int) -> bytes:
        self._stall()
        if self._roll(self.p_read_error, "read_error"):
            raise OSError(errno.EIO, "injected read error")
        return super().read_from(path, offset)

    def read_bytes(self, path) -> bytes:
        self._stall()
        data = super().read_bytes(path)
        # Bit rot targets snapshot checkpoints only: a flipped WAL byte is
        # a CRC mismatch and *correctly* fails loud (never retried, never
        # degraded), which would end the run rather than exercise the
        # snapshot-fallback path this fault exists to test.
        if data and is_snapshot_path(path) and self._roll(
            self.p_bitflip, "bitflip"
        ):
            pos = self._draw(len(data))
            bit = 1 << self._draw(8)
            corrupted = bytearray(data)
            corrupted[pos] ^= bit
            get_metrics().counter("chaos.faults.bitflip_bytes").inc()
            return bytes(corrupted)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyIO(seed={self.seed}, armed={self.armed}, "
            f"injected={self.injected})"
        )


#: The suffix snapshot checkpoints use -- exported so tests can target
#: bit-flips at checkpoints without duplicating the naming convention.
SNAPSHOT_SUFFIX = ".pkl"


def is_snapshot_path(path) -> bool:
    """Whether ``path`` names a snapshot checkpoint file."""
    return pathlib.Path(path).suffix == SNAPSHOT_SUFFIX
