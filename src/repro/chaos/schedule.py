"""Seeded chaos schedules and the driver that plays them.

A :class:`ChaosSchedule` is a reproducible *tape* of adversities --
follower kills and restarts, storage fault windows, primary kills --
generated from one seed.  :class:`ChaosDriver` plays the tape against a
live :class:`~repro.replication.replicated.ReplicatedService` while the
caller keeps writing rounds through it:

- a ``fault_window`` arms the service's :class:`~repro.chaos.faults.FaultyIO`
  for a bounded number of steps (and a bounded fault budget, so retry
  policies can outlast it);
- a ``primary_kill`` installs an always-firing failpoint, so the next
  write crashes the primary mid-commit; the driver then *fails over* --
  promotes the most-caught-up live follower (restarting one if none is
  live) -- and retries the round on the new primary;
- replication is *tick-based* (the driver polls followers itself each
  step) so a chaos run is deterministic: no background threads, no
  scheduler interleaving.

The ground truth after any run is the log: :func:`replay_oracle` rebuilds
state on a fresh structure from the winning WAL chain, and chaos tests
assert the served structures are byte-identical to it (same fingerprint)
once faults are disarmed and followers have caught up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.chaos.faults import FaultyIO
from repro.obs.metrics import get_metrics
from repro.replication.follower import FollowerDead
from repro.replication.replicated import ReplicatedService
from repro.service.resilience import is_transient_io
from repro.service.service import (
    InjectedCrash,
    ServiceClosed,
    apply_ops,
    wal_directory,
)
from repro.service.wal import OP_EXPIRE, OP_INSERT, Op, WalTruncated, read_wal_dir

#: Event kinds a schedule may contain, with their default sampling weights.
EVENT_KINDS = ("kill_follower", "restart_follower", "fault_window", "primary_kill")

_DEFAULT_WEIGHTS = {
    "kill_follower": 0.30,
    "restart_follower": 0.35,
    "fault_window": 0.35,
}


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled adversity.

    Attributes:
        step: the driver step the event fires at.
        kind: one of :data:`EVENT_KINDS`.
        duration: for ``fault_window``: how many steps the window stays
            armed (0 for the other kinds).
        budget: for ``fault_window``: at most how many faults the window
            may inject (bounded so retries can win).
    """

    step: int
    kind: str
    duration: int = 0
    budget: int = 0


@dataclass
class ChaosSchedule:
    """A seeded, sorted tape of :class:`ChaosEvent`.

    Build one with :meth:`generate`; iterate with :meth:`at` from a
    driving loop.  ``seed`` and the generation parameters are kept so a
    failing run can be named by them.
    """

    seed: int
    steps: int
    events: list[ChaosEvent] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        seed: int = 0,
        events: int = 50,
        steps: int = 400,
        primary_kills: int = 2,
        weights: dict[str, float] | None = None,
    ) -> "ChaosSchedule":
        """A reproducible schedule of ``events`` adversities over ``steps``.

        ``primary_kills`` of them are primary kills, spread across the
        run (each third of the tape gets at most one, jittered) so
        failovers interleave with follower churn instead of clustering.
        The rest are sampled from ``weights`` (default: roughly even
        kills/restarts/fault windows) at seeded steps.
        """
        if events < primary_kills:
            raise ValueError("events must be >= primary_kills")
        rng = random.Random(seed)
        w = dict(_DEFAULT_WEIGHTS if weights is None else weights)
        kinds = list(w)
        total = sum(w.values())
        out: list[ChaosEvent] = []
        # Spread primary kills: one per equal slice of the tape, away
        # from the very start so there is state worth failing over.
        slice_len = max(1, steps // max(1, primary_kills))
        for i in range(primary_kills):
            lo = i * slice_len + slice_len // 4
            hi = min(steps - 1, (i + 1) * slice_len - 1)
            out.append(ChaosEvent(step=rng.randint(lo, max(lo, hi)), kind="primary_kill"))
        for _ in range(events - primary_kills):
            r = rng.random() * total
            kind = kinds[-1]
            for k in kinds:
                if r < w[k]:
                    kind = k
                    break
                r -= w[k]
            step = rng.randrange(steps)
            if kind == "fault_window":
                out.append(
                    ChaosEvent(
                        step=step,
                        kind=kind,
                        duration=rng.randint(2, 8),
                        budget=rng.randint(1, 6),
                    )
                )
            else:
                out.append(ChaosEvent(step=step, kind=kind))
        out.sort(key=lambda e: (e.step, e.kind))
        return cls(seed=seed, steps=steps, events=out)

    def at(self, step: int) -> list[ChaosEvent]:
        """The events firing at ``step`` (sorted, possibly empty)."""
        return sorted(
            (e for e in self.events if e.step == step),
            key=lambda e: (e.step, e.kind),
        )

    def counts(self) -> dict[str, int]:
        """How many events of each kind the tape holds."""
        out = {k: 0 for k in EVENT_KINDS}
        for e in self.events:
            out[e.kind] += 1
        return out


class ChaosDriver:
    """Plays a :class:`ChaosSchedule` against a replicated service.

    Args:
        service: the :class:`ReplicatedService` under test.  Its config's
            ``io`` should be the same :class:`FaultyIO` passed here, or
            fault windows arm nothing.
        schedule: the tape to play.
        faults: the injector fault windows arm/disarm (None: kill events
            only).

    The caller owns the write loop::

        driver = ChaosDriver(svc, schedule, faults)
        for step, (edges, expire) in enumerate(rounds):
            driver.step(step, edges, expire)
        driver.finish()          # disarm, revive, drain replication

    :meth:`step` fires the step's events, commits the round (failing over
    to a follower if the primary dies mid-commit), and ticks replication.
    ``stats`` accumulates what actually happened, so a soak can assert
    the tape was exercised (nonzero kills, promotions, faults).
    """

    def __init__(
        self,
        service: ReplicatedService,
        schedule: ChaosSchedule,
        faults: FaultyIO | None = None,
    ) -> None:
        self.service = service
        self.schedule = schedule
        self.faults = faults
        self._window_end: int | None = None
        self.stats: dict[str, int] = {
            "rounds": 0,
            "follower_kills": 0,
            "follower_restarts": 0,
            "fault_windows": 0,
            "promotions": 0,
            "write_failures": 0,
            "tail_failures": 0,
        }

    # ------------------------------------------------------------------
    # Tape playback
    # ------------------------------------------------------------------

    def step(self, step: int, edges: Sequence[Sequence] = (), expire: int = 0) -> int:
        """Play one step: fire events, commit the round, tick replication.

        Returns the committed round's LSN token (on whichever primary
        ended up committing it).
        """
        ops: list[Op] = []
        if edges:
            ops.append((OP_INSERT, tuple(tuple(e) for e in edges)))
        if expire:
            ops.append((OP_EXPIRE, int(expire)))
        return self.step_ops(step, ops)

    def step_ops(self, step: int, ops: Sequence[Op]) -> int:
        """Like :meth:`step`, but committing an explicit WAL-shaped op
        list (the trace replayer's entry point: a recorded round's ops
        replay under chaos with their op structure preserved)."""
        if (
            self.faults is not None
            and self._window_end is not None
            and step >= self._window_end
        ):
            self.faults.disarm()
            self._window_end = None
        for ev in self.schedule.at(step):
            self._apply(ev, step)
        lsn = self._write_ops(ops)
        self._tick_replication()
        self.stats["rounds"] += 1
        return lsn

    def finish(self) -> None:
        """End the run cleanly: disarm faults, revive every follower, and
        drain replication so each replica reaches the durable tip."""
        if self.faults is not None:
            self.faults.disarm()
            self._window_end = None
        for f in self.service.followers:
            if not f.alive:
                f.restart()
                self.stats["follower_restarts"] += 1
        self.service.poll()

    def _apply(self, ev: ChaosEvent, step: int) -> None:
        if ev.kind == "kill_follower":
            live = [f for f in self.service.followers if f.alive]
            if len(live) > 1:  # keep one replica for reads/failover
                victim = live[self._pick(ev, len(live))]
                victim.kill()
                self.stats["follower_kills"] += 1
        elif ev.kind == "restart_follower":
            dead = [f for f in self.service.followers if not f.alive]
            if dead:
                try:
                    dead[self._pick(ev, len(dead))].restart()
                except OSError as exc:
                    # A restart inside an armed fault window may fail to
                    # bootstrap; the replica stays dead until a later
                    # restart event (or finish()) revives it.
                    if not is_transient_io(exc):
                        raise
                    self.stats["tail_failures"] += 1
                else:
                    self.stats["follower_restarts"] += 1
        elif ev.kind == "fault_window":
            if self.faults is not None:
                self.faults.arm(max_faults=ev.budget or None)
                self._window_end = step + max(1, ev.duration)
                self.stats["fault_windows"] += 1
        elif ev.kind == "primary_kill":
            # The next write dies mid-commit; _write fails over.
            self.service.primary.failpoints["before-wal-append"] = (
                lambda lsn: True
            )
        else:  # pragma: no cover - generate() never emits unknown kinds
            raise ValueError(f"unknown chaos event kind {ev.kind!r}")
        get_metrics().counter(f"chaos.events.{ev.kind}").inc()

    @staticmethod
    def _pick(ev: ChaosEvent, n: int) -> int:
        # Victim choice must be deterministic but vary across events:
        # derive it from the event's own coordinates, not a shared rng
        # whose stream position would depend on how many events fired.
        return (ev.step * 31 + len(ev.kind)) % n

    # ------------------------------------------------------------------
    # Writes with failover
    # ------------------------------------------------------------------

    def _write_ops(self, ops: Sequence[Op]) -> int:
        try:
            return self.service.write_ops(ops)
        except (InjectedCrash, ServiceClosed, OSError) as exc:
            if isinstance(exc, OSError) and not is_transient_io(exc):
                raise
            self.stats["write_failures"] += 1
            self._failover()
            # The crashed round never reached the WAL; recommit it on the
            # new primary.  A second failure here is a real test failure.
            return self.service.write_ops(ops)

    def _failover(self) -> None:
        """Promote the most-caught-up follower after a primary death."""
        if self.faults is not None:
            # An operator replaces the disk before re-pointing traffic;
            # promotion itself runs fault-free.
            self.faults.disarm()
            self._window_end = None
        live = [f for f in self.service.followers if f.alive]
        if not live:
            if not self.service.followers:
                raise RuntimeError(
                    "primary died with no followers attached; nothing to "
                    "promote"
                )
            f = min(self.service.followers, key=lambda g: g.fid)
            f.restart()
            self.stats["follower_restarts"] += 1
            live = [f]
        best = max(live, key=lambda f: f.replayed_lsn)
        self.service.promote(best, catch_up=True)
        # Promotion consumes the replica; attach a replacement (it
        # bootstraps from shared storage) so the fleet size -- and the
        # ability to survive the *next* primary kill -- is preserved.
        self.service.add_follower()
        self.stats["promotions"] += 1

    # ------------------------------------------------------------------
    # Tick-based replication
    # ------------------------------------------------------------------

    def _tick_replication(self) -> None:
        for f in self.service.followers:
            if not f.alive:
                continue
            try:
                f.catch_up()
            except (FollowerDead, WalTruncated):
                self.stats["tail_failures"] += 1
            except OSError as exc:
                if not is_transient_io(exc):
                    raise
                # Retries exhausted inside an armed window; the tape will
                # close it and the next tick drains the backlog.
                self.stats["tail_failures"] += 1


def replay_oracle(
    factory: Callable[[], Any], data_dir, io=None
) -> tuple[Any, int]:
    """Rebuild ground-truth state from the winning WAL chain.

    Replays every retained record of the winning chain (highest epoch
    wins, exactly the recovery rule) into a fresh ``factory()`` structure.
    Returns ``(structure, next_lsn)``.  Chaos tests compare the running
    service's structures against this -- byte-identical convergence is
    the pass criterion.
    """
    structure = factory()
    records, base = read_wal_dir(wal_directory(data_dir), io)
    if base != 0:
        raise WalTruncated(
            f"oracle replay needs the full chain but the log starts at "
            f"{base}; disable WAL truncation (snapshot_every=0) in chaos "
            "runs"
        )
    tip = 0
    for rec in records:
        apply_ops(structure, rec.ops)
        tip = rec.lsn + 1
    return structure, tip
