"""Deterministic chaos engineering for the durable service layer.

The paper gives a worst-case bound on *algorithmic* work; this package is
the worst-case story for the *systems* layers wrapped around it.  Two
pieces:

- :mod:`repro.chaos.faults` -- :class:`~repro.chaos.faults.FaultyIO`, a
  seeded fault-injecting implementation of the
  :class:`~repro.service.storage.StorageIO` seam (transient I/O errors,
  torn writes, added latency, snapshot bit-flips);
- :mod:`repro.chaos.schedule` -- :class:`~repro.chaos.schedule.ChaosSchedule`
  (a seeded, reproducible event tape: follower kills/restarts, storage
  fault windows, primary kills) and
  :class:`~repro.chaos.schedule.ChaosDriver`, which plays the tape
  against a live :class:`~repro.replication.replicated.ReplicatedService`
  while ingest and reads continue, promoting a follower whenever the
  primary dies.

Everything is seeded: the same ``(seed, events)`` pair replays the same
run, which is what makes a chaos failure debuggable.  The invariant every
chaos test asserts is *oracle convergence*: after the tape ends and
faults are disarmed, the surviving timeline's WAL replays -- on a fresh
structure -- to state byte-identical to what the service tier serves.
See ``docs/resilience.md``.
"""

from repro.chaos.faults import FaultyIO
from repro.chaos.schedule import ChaosDriver, ChaosEvent, ChaosSchedule

__all__ = ["FaultyIO", "ChaosDriver", "ChaosEvent", "ChaosSchedule"]
