"""Static random graph generators (edge lists with weights)."""

from __future__ import annotations

import random
from typing import Callable

Edge = tuple[int, int, float]


def _weights(rng: random.Random, lo: float, hi: float) -> Callable[[], float]:
    return lambda: rng.uniform(lo, hi)


def gnm_edges(
    n: int,
    m: int,
    rng: random.Random,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """``m`` uniform random edges on ``n`` vertices (self-loops excluded,
    parallel edges allowed -- the structures must tolerate them)."""
    w = _weights(rng, *weight_range)
    out: list[Edge] = []
    while len(out) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            out.append((u, v, w()))
    return out


def path_edges(
    n: int,
    rng: random.Random | None = None,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """A path 0-1-...-(n-1); the worst case for contraction depth."""
    rng = rng or random.Random(0)
    w = _weights(rng, *weight_range)
    return [(i, i + 1, w()) for i in range(n - 1)]


def star_edges(
    n: int,
    rng: random.Random | None = None,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """A star centered at 0; the worst case for ternarization fan-out."""
    rng = rng or random.Random(0)
    w = _weights(rng, *weight_range)
    return [(0, i, w()) for i in range(1, n)]


def random_tree_edges(
    n: int,
    rng: random.Random,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """A uniform random recursive tree (vertex i attaches to a random
    earlier vertex)."""
    w = _weights(rng, *weight_range)
    return [(rng.randrange(i), i, w()) for i in range(1, n)]


def grid_edges(
    side: int,
    rng: random.Random | None = None,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """A side x side grid (vertex ids row-major); mesh-like topologies."""
    rng = rng or random.Random(0)
    w = _weights(rng, *weight_range)
    out: list[Edge] = []
    for r in range(side):
        for c in range(side):
            v = r * side + c
            if c + 1 < side:
                out.append((v, v + 1, w()))
            if r + 1 < side:
                out.append((v, v + side, w()))
    return out


def preferential_attachment_edges(
    n: int,
    out_degree: int,
    rng: random.Random,
    weight_range: tuple[float, float] = (0.0, 1.0),
) -> list[Edge]:
    """Barabasi-Albert-style power-law graph: each new vertex attaches
    ``out_degree`` times to endpoints sampled from the existing edge list
    (degree-proportional)."""
    if n < 2:
        return []
    w = _weights(rng, *weight_range)
    out: list[Edge] = [(0, 1, w())]
    targets = [0, 1]
    for v in range(2, n):
        for _ in range(min(out_degree, v)):
            t = targets[rng.randrange(len(targets))]
            if t == v:
                continue
            out.append((v, t, w()))
            targets.append(v)
            targets.append(t)
    return out


def euclidean_knn_edges(
    points: list[tuple[float, float]],
    k: int,
) -> list[Edge]:
    """k-nearest-neighbour graph of 2D points, weighted by distance.

    The standard input shape for single-linkage clustering demos; O(n^2)
    construction is fine at example scale (use a KD-tree upstream for more).
    """
    import math

    n = len(points)
    out: list[Edge] = []
    seen: set[tuple[int, int]] = set()
    for i, (x, y) in enumerate(points):
        dists = []
        for j, (a, b) in enumerate(points):
            if i != j:
                dists.append((math.hypot(x - a, y - b), j))
        dists.sort()
        for d, j in dists[:k]:
            key = (min(i, j), max(i, j))
            if key not in seen:
                seen.add(key)
                out.append((i, j, d))
    return out
