"""Sliding-window stream generators.

A stream is a list of :class:`EdgeBatch` rounds; each round inserts a batch
and expires a count, exercising the "arbitrary interleavings of batch
insertions or expirations, each of arbitrary size" the paper supports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class EdgeBatch:
    """One round: insert ``edges``, then expire ``expire`` oldest items."""

    edges: tuple
    expire: int = 0


def sliding_window_stream(
    n: int,
    rounds: int,
    batch_size: int,
    window: int,
    rng: random.Random,
) -> list[EdgeBatch]:
    """Uniform random unweighted edges; expiry keeps ~``window`` live items."""
    out: list[EdgeBatch] = []
    live = 0
    for _ in range(rounds):
        batch = []
        for _ in range(batch_size):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v))
        live += len(batch)
        expire = max(0, live - window)
        live -= expire
        out.append(EdgeBatch(tuple(batch), expire))
    return out


def weighted_stream(
    n: int,
    rounds: int,
    batch_size: int,
    window: int,
    rng: random.Random,
    weight_range: tuple[float, float] = (1.0, 100.0),
) -> list[EdgeBatch]:
    """Like :func:`sliding_window_stream` with uniform weights (for the
    approximate-MSF structure, which assumes weights in [1, W])."""
    lo, hi = weight_range
    out: list[EdgeBatch] = []
    live = 0
    for _ in range(rounds):
        batch = []
        for _ in range(batch_size):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                batch.append((u, v, rng.uniform(lo, hi)))
        live += len(batch)
        expire = max(0, live - window)
        live -= expire
        out.append(EdgeBatch(tuple(batch), expire))
    return out


def bursty_stream(
    n: int,
    rounds: int,
    base_batch: int,
    burst_batch: int,
    window: int,
    rng: random.Random,
    burst_every: int = 4,
    weight_range: tuple[float, float] | None = None,
) -> list[EdgeBatch]:
    """Uniform random edges with periodic arrival bursts.

    Every ``burst_every``-th round delivers ``burst_batch`` edges instead
    of ``base_batch`` -- the load shape that exercises adaptive
    micro-batching in :mod:`repro.service` (a backlogged flush commits a
    larger round, amortizing the per-batch ``lg(1 + n/l)`` factor).  With
    ``weight_range`` the edges carry uniform weights (for the weighted
    structures); otherwise they are ``(u, v)`` pairs.
    """
    out: list[EdgeBatch] = []
    live = 0
    for r in range(rounds):
        size = burst_batch if burst_every and r % burst_every == burst_every - 1 else base_batch
        batch = []
        for _ in range(size):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v:
                continue
            if weight_range is None:
                batch.append((u, v))
            else:
                batch.append((u, v, rng.uniform(*weight_range)))
        live += len(batch)
        expire = max(0, live - window)
        live -= expire
        out.append(EdgeBatch(tuple(batch), expire))
    return out


def bipartite_stream(
    n: int,
    rounds: int,
    batch_size: int,
    window: int,
    rng: random.Random,
    violation_every: int = 5,
) -> list[EdgeBatch]:
    """Edges across a fixed bipartition (even/odd ids), with an intra-side
    edge (odd cycle risk) every ``violation_every`` rounds.  Bipartiteness
    flips as violations enter and leave the window."""
    out: list[EdgeBatch] = []
    live = 0
    for r in range(rounds):
        batch = []
        for _ in range(batch_size):
            u = rng.randrange(0, n, 2) if n > 1 else 0
            v = rng.randrange(1, n, 2) if n > 1 else 0
            if u != v:
                batch.append((u, v))
        if violation_every and r % violation_every == violation_every - 1 and n > 3:
            a = rng.randrange(0, n, 2)
            b = rng.randrange(0, n, 2)
            if a != b:
                batch.append((a, b))
        live += len(batch)
        expire = max(0, live - window)
        live -= expire
        out.append(EdgeBatch(tuple(batch), expire))
    return out


def cycle_pulse_stream(
    n: int,
    rounds: int,
    window: int,
    rng: random.Random,
    pulse_every: int = 4,
) -> list[EdgeBatch]:
    """Mostly tree edges (vertex v -> random earlier vertex), with a short
    pulse of cycle-closing edges every ``pulse_every`` rounds."""
    out: list[EdgeBatch] = []
    live = 0
    attached: list[int] = [0]
    for r in range(rounds):
        batch = []
        for _ in range(3):
            v = rng.randrange(1, n)
            u = rng.randrange(v)
            batch.append((u, v))
            attached.append(v)
        if r % pulse_every == pulse_every - 1 and len(attached) >= 2:
            a, b = rng.sample(attached, 2)
            if a != b:
                batch.append((a, b))
        live += len(batch)
        expire = max(0, live - window)
        live -= expire
        out.append(EdgeBatch(tuple(batch), expire))
    return out
