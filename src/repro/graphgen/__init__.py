"""Workload generators: random graphs and sliding-window edge streams.

The paper evaluates no specific dataset (it is a theory paper), so the
benchmark harness synthesizes workloads whose parameters (n, batch size l,
window length, weight range) sweep the regimes each bound distinguishes.
"""

from repro.graphgen.random_graphs import (
    gnm_edges,
    grid_edges,
    path_edges,
    preferential_attachment_edges,
    random_tree_edges,
    star_edges,
)
from repro.graphgen.streams import (
    EdgeBatch,
    bipartite_stream,
    bursty_stream,
    cycle_pulse_stream,
    sliding_window_stream,
    weighted_stream,
)

__all__ = [
    "gnm_edges",
    "grid_edges",
    "path_edges",
    "star_edges",
    "random_tree_edges",
    "preferential_attachment_edges",
    "EdgeBatch",
    "sliding_window_stream",
    "weighted_stream",
    "bipartite_stream",
    "bursty_stream",
    "cycle_pulse_stream",
]
