"""Sliding-window graph connectivity (Theorems 5.1 and 5.2).

:class:`SWConnectivity` is the lazy structure of Theorem 5.1: expiry is an
O(1) advance of the window pointer ``TW``, and ``is_connected`` checks the
recent-edge condition ``tau(e*) >= TW`` on the oldest edge ``e*`` of the
tree path.  :class:`SWConnectivityEager` (Theorem 5.2) additionally keeps
the MSF edges in an ordered set keyed by ``tau`` and evicts expired edges
eagerly, which makes ``num_components`` an O(1) query.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.batch_msf import BatchIncrementalMSF
from repro.obs.metrics import get_metrics
from repro.orderedset.treap import Treap
from repro.runtime.cost import CostModel
from repro.sliding_window.base import WindowClock


class SWConnectivity:
    """Lazy sliding-window connectivity (Theorem 5.1).

    - ``batch_insert``: ``O(l lg(1 + n/l))`` expected work, ``O(lg^2 n)``
      span w.h.p.
    - ``batch_expire``: O(1) worst case.
    - ``is_connected``: ``O(lg n)`` w.h.p.
    - space: O(n) words beyond the clock.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        self._msf = BatchIncrementalMSF(n, seed=seed, cost=self.cost, engine=engine)
        self.engine = self._msf.engine

    def batch_insert(
        self, edges: Sequence[tuple[int, int]], taus: Sequence[int] | None = None
    ) -> None:
        """Insert edges ``(u, v)``; optional explicit stream positions.

        Explicit ``taus`` (for structures sharing a parent clock) must be
        strictly increasing and at least the current clock position.
        """
        if taus is None:
            taus = self.clock.assign(len(edges))
        else:
            if len(taus) != len(edges):
                raise ValueError("taus and edges must have equal length")
            if any(b <= a for a, b in zip(taus, taus[1:])) or (
                len(taus) and taus[0] < self.clock.t
            ):
                raise ValueError("explicit taus must be increasing and fresh")
            if len(taus):
                self.clock.t = taus[-1] + 1
        with self.cost.phase("window-insert", items=len(edges)):
            rows = [(u, v, -float(tau), tau) for (u, v), tau in zip(edges, taus)]
            self._msf.batch_insert(rows)
        get_metrics().counter("sw_connectivity.inserted").inc(len(edges))

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest stream items; O(1)."""
        with self.cost.phase("window-expire", items=delta):
            self.clock.expire(delta)

    def expire_until(self, tau: int) -> None:
        """Advance the window start to global position ``tau`` (for
        structures sharing a parent clock)."""
        self.clock.expire_until(tau)

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity via the recent-edge lemma; O(lg n) w.h.p."""
        if u == v:
            return True
        heaviest = self._msf.heaviest_edge(u, v)
        if heaviest is None:
            return False
        oldest_tau = heaviest[1]  # eid == tau
        return oldest_tau >= self.clock.tw

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Window connectivity for a whole batch of pairs at once.

        ``l`` queries share one ``batch-query`` sweep of the RC tree --
        ``O(l lg(1 + n/l))`` expected work total (Theorem 3.2; see
        docs/batch_queries.md) instead of ``l`` independent ``O(lg n)``
        path maxima.  Answers match :meth:`is_connected` exactly.
        """
        with self.cost.phase("window-query", items=len(pairs)):
            heaviest = self._msf.batch_heaviest_edges(pairs)
        out = []
        for (u, v), h in zip(pairs, heaviest):
            if u == v:
                out.append(True)
            else:
                # eid == tau: h carries the oldest tau on the tree path.
                out.append(h is not None and h[1] >= self.clock.tw)
        return out

    def heaviest_edge(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest ``(weight, eid)`` on the maintained tree path ``u--v``.

        Window edges are weighted ``-tau``, so the "heaviest" edge is the
        *oldest* on the path and ``eid`` is its stream position -- the
        quantity the recent-edge lemma tests.  ``None`` when the tree
        does not connect them (or ``u == v``).
        """
        return self._msf.heaviest_edge(u, v)

    def batch_heaviest_edges(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, int] | None]:
        """:meth:`heaviest_edge` for a whole batch off one shared
        ``batch-query`` sweep."""
        with self.cost.phase("window-query", items=len(pairs)):
            return self._msf.batch_heaviest_edges(pairs)

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size


class SWConnectivityEager(SWConnectivity):
    """Eager sliding-window connectivity with component counting
    (Theorem 5.2).

    Keeps an ordered set ``D`` of unexpired MSF edges by ``tau``;
    ``batch_expire`` splits off and physically cuts the expired prefix, so
    the maintained forest spans exactly the window graph and
    ``num_components = n - |D|`` in O(1).
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        super().__init__(n, seed=seed, cost=cost, engine=engine)
        self._d = Treap(cost=self.cost)

    def batch_insert(
        self, edges: Sequence[tuple[int, int]], taus: Sequence[int] | None = None
    ) -> None:
        """Insert edges and keep the ordered MSF-edge set in step
        (Theorem 5.2 bounds)."""
        if taus is None:
            taus = self.clock.assign(len(edges))
        else:
            if len(taus) != len(edges):
                raise ValueError("taus and edges must have equal length")
            if any(b <= a for a, b in zip(taus, taus[1:])) or (
                len(taus) and taus[0] < self.clock.t
            ):
                raise ValueError("explicit taus must be increasing and fresh")
            if len(taus):
                self.clock.t = taus[-1] + 1
        with self.cost.phase("window-insert", items=len(edges)):
            rows = [(u, v, -float(tau), tau) for (u, v), tau in zip(edges, taus)]
            report = self._msf.batch_insert(rows)
            self._d.insert_many((eid, (u, v)) for u, v, _, eid in report.inserted)
            self._d.delete_many(eid for _, _, _, eid in report.evicted)
        get_metrics().counter("sw_connectivity.inserted").inc(len(edges))

    def batch_expire(self, delta: int) -> None:
        """Expire ``delta`` oldest items; ``O(delta lg(1 + n/delta) + lg n)``
        expected work, ``O(lg^2 n)`` span w.h.p."""
        self.expire_until(self.clock.tw + delta)

    def expire_until(self, tau: int) -> None:
        """Advance to ``tau`` and physically cut the expired MSF edges."""
        with self.cost.phase("window-expire") as ph:
            tau = self.clock.expire_until(tau)
            expired = self._d.split_at(tau)
            ph.count(len(expired))
            if len(expired):
                self._msf.forget_edges([eid for eid, _ in expired.items()])
        get_metrics().counter("sw_connectivity.expired").inc(len(expired))

    def is_connected(self, u: int, v: int) -> bool:
        """O(lg n) w.h.p.; the forest holds only unexpired edges."""
        return u == v or self._msf.connected(u, v)

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Batched connectivity off one shared root-walk sweep; the eager
        forest holds only unexpired edges, so plain tree connectivity
        suffices."""
        with self.cost.phase("window-query", items=len(pairs)):
            conn = self._msf.batch_connected(pairs)
        return [u == v or c for (u, v), c in zip(pairs, conn)]

    @property
    def num_components(self) -> int:
        """O(1) worst-case (Theorem 5.2)."""
        return self.n - len(self._d)

    def forest_edges(self) -> list[tuple[int, int, int]]:
        """Unexpired spanning-forest edges as ``(u, v, tau)`` (O(n))."""
        return [(u, v, tau) for tau, (u, v) in self._d.items()]
