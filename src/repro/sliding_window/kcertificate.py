"""Sliding-window k-certificates (Theorem 5.5).

Maintains the maximal spanning forest decomposition ``F_1, ..., F_k`` of
the window graph: each arriving batch is inserted into ``F_1``; the edges
it replaces there cascade into ``F_2``, and so on (Section 5.4).  Every
``F_i`` is a batch-incremental MSF under the recent-edge weighting with a
side ordered set ``D_i`` of its unexpired edges, so expiry is eager.

The union of the unexpired forests is a k-certificate: it preserves all
cuts of size <= k, and is k-connected iff the window graph is (P1-P3).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.batch_msf import BatchIncrementalMSF
from repro.mincut.stoer_wagner import global_min_cut
from repro.obs.metrics import get_metrics
from repro.orderedset.treap import Treap
from repro.runtime.cost import CostModel
from repro.sliding_window.base import WindowClock


class SWKCertificate:
    """Sliding-window k-certificate.

    - ``batch_insert``: ``O(k l lg(1 + n/l))`` expected work, ``O(k lg^2 n)``
      span w.h.p. (the k cascades are sequential).
    - ``batch_expire``: ``O(k delta lg(1 + n/delta))`` expected work.
    - ``make_certificate``: at most ``k (n - 1)`` edges, ``O(k n)`` work.
    """

    def __init__(
        self,
        n: int,
        k: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.n = n
        self.k = k
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        self._forests = [
            BatchIncrementalMSF(n, seed=seed + i, cost=self.cost, engine=engine)
            for i in range(k)
        ]
        self.engine = self._forests[0].engine
        self._d = [Treap(cost=self.cost) for _ in range(k)]

    def batch_insert(
        self, edges: Sequence[tuple[int, int]], taus: Sequence[int] | None = None
    ) -> None:
        """Insert edges, cascading replacements through F_1 .. F_k."""
        if taus is None:
            taus = self.clock.assign(len(edges))
        else:
            if len(taus) != len(edges):
                raise ValueError("taus and edges must have equal length")
            if any(b <= a for a, b in zip(taus, taus[1:])) or (
                len(taus) and taus[0] < self.clock.t
            ):
                raise ValueError("explicit taus must be increasing and fresh")
            if len(taus):
                self.clock.t = taus[-1] + 1
        cascade = [
            (u, v, -float(tau), tau) for (u, v), tau in zip(edges, taus) if u != v
        ]
        depth = 0
        with self.cost.phase("window-insert", items=len(cascade)):
            for forest, d in zip(self._forests, self._d):
                if not cascade:
                    break
                depth += 1
                report = forest.batch_insert(cascade)
                d.insert_many((eid, (u, v)) for u, v, _, eid in report.inserted)
                d.delete_many(eid for _, _, _, eid in report.evicted)
                # Replaced edges (evicted + rejected) move to the next forest;
                # their ids are reusable there because each forest has its own
                # id space.
                cascade = report.replaced
        metrics = get_metrics()
        metrics.counter("sw_kcertificate.inserted").inc(len(edges))
        metrics.histogram("sw_kcertificate.cascade_depth").observe(depth)

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest items from every forest."""
        self.expire_until(self.clock.tw + delta)

    def expire_until(self, tau: int) -> None:
        """Advance to global ``tau``, cutting expired edges eagerly."""
        with self.cost.phase("window-expire") as ph:
            tau = self.clock.expire_until(tau)
            for forest, d in zip(self._forests, self._d):
                expired = d.split_at(tau)
                ph.count(len(expired))
                if len(expired):
                    forest.forget_edges([eid for eid, _ in expired.items()])

    # -- queries -----------------------------------------------------------

    def make_certificate(self) -> list[tuple[int, int, int]]:
        """The k-certificate: unexpired edges of all forests as
        ``(u, v, tau)``; at most ``k (n - 1)`` of them."""
        out: list[tuple[int, int, int]] = []
        for d in self._d:
            out.extend((u, v, tau) for tau, (u, v) in d.items())
        return out

    def certificate_sizes(self) -> list[int]:
        """Unexpired edge count per forest (diagnostics)."""
        return [len(d) for d in self._d]

    def is_k_connected(self) -> bool:
        """Whether the window graph is k-edge-connected, tested on the
        certificate with a global min cut (property P3)."""
        cert = [(u, v) for u, v, _ in self.make_certificate()]
        return global_min_cut(self.n, cert, cost=self.cost) >= self.k

    def connectivity_lower_bound(self, u: int, v: int) -> int:
        """Largest ``i`` such that ``u, v`` are connected in ``F_i`` --
        they are then at least i-edge-connected in the window (P1)."""
        bound = 0
        for i, forest in enumerate(self._forests, start=1):
            if u == v or forest.connected(u, v):
                bound = i
            else:
                break
        return bound

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity: ``F_1`` spans every window component, so
        connectivity there is connectivity in the window graph."""
        return u == v or self._forests[0].connected(u, v)

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Window connectivity for a whole pair batch off one shared
        ``batch-query`` root-walk sweep of ``F_1`` (Theorem 3.2; see
        docs/batch_queries.md)."""
        if not pairs:
            return []
        with self.cost.phase("window-query", items=len(pairs)):
            conn = self._forests[0].batch_connected(pairs)
        return [u == v or c for (u, v), c in zip(pairs, conn)]

    def batch_connectivity_lower_bounds(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[int]:
        """:meth:`connectivity_lower_bound` for a whole pair batch.

        One shared ``batch-query`` sweep per forest level, and a pair
        stops participating once it first disconnects, so the total work
        is ``sum_i O(l_i lg(1 + n/l_i))`` with ``l_i`` the pairs still
        connected through ``F_{i-1}``.
        """
        if not pairs:
            return []
        bounds = [0] * len(pairs)
        active = list(range(len(pairs)))
        with self.cost.phase("window-query", items=len(pairs)):
            for i, forest in enumerate(self._forests, start=1):
                if not active:
                    break
                conn = forest.batch_connected([pairs[j] for j in active])
                nxt = []
                for j, c in zip(active, conn):
                    u, v = pairs[j]
                    if u == v or c:
                        bounds[j] = i
                        nxt.append(j)
                active = nxt
        return bounds

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size
