"""Sliding-window cut sparsifiers (Section 5.6, Theorem 5.8).

Composition of everything in the paper:

- *Connectivity estimation* [29]: ``(L+1) x K`` lazy connectivity
  structures over subsampled streams ``G_i^(j)`` (edge kept with
  probability ``2^-i``).  ``L(u, v)`` is the deepest level at which the
  endpoints stay connected in all ``K`` repetitions; ``2^L(e)`` estimates
  edge connectivity within ``O(lg n)`` (Lemma 5.2).
- *Geometric edge samples* [4]: streams ``H_0 .. H_L`` (edge kept with
  probability ``2^-i``), each retained as a sliding-window k-certificate
  ``Q_i``, which w.h.p. keeps every edge whose sampled connectivity is
  below ``k`` (Lemma 5.3).
- *Sampling rule* [25]: at query time edge ``e`` is emitted with weight
  ``2^beta(e)`` if it survives in ``Q_beta(e)``, where
  ``beta(e) = lg(1 / p_e)`` and ``p_e = min(1, c 2^-L(e) eps^-2 lg^2 n)``.

The paper's constants (``k = O(eps^-2 lg^3 n)`` etc.) make exact-constant
runs enormous; they are exposed as parameters with practical defaults, and
the theorem-faithful values are documented here (DESIGN.md, substitution
note).  Shapes -- O(n polylog n) sparsifier size, cut preservation on
test graphs -- are exercised in the test suite.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel, log2ceil, parallel_regions
from repro.runtime.hashing import splitmix64
from repro.sliding_window.base import WindowClock
from repro.sliding_window.connectivity import SWConnectivity
from repro.sliding_window.kcertificate import SWKCertificate


class SWSparsifier:
    """Sliding-window (1 +- eps) cut sparsifier.

    Args:
        n: vertex count.
        eps: target cut approximation.
        levels: sampling depth ``L`` (default ``ceil(lg n)``).
        reps: independent repetitions ``K`` for connectivity estimation
            (paper: ``O(lg n)``; default ``max(2, ceil(lg n / 2))``).
        cert_k: certificate order.  The paper uses ``O(eps^-2 lg^3 n)``;
            the default keeps the load-bearing ``eps^-2 lg^2 n`` scaling
            (``k`` must dominate the expected sampled connectivity
            ``p_e * c_e <= eps^-2 lg^2 n`` for Lemma 5.3's retention) and
            drops only the extra w.h.p. ``lg n`` factor and the constant.
        sample_const: the constant ``c`` in ``p_e`` (paper: 253; default 1
            -- with the reduced ``cert_k`` a huge ``c`` would just clamp
            every probability to 1).
    """

    def __init__(
        self,
        n: int,
        eps: float = 0.5,
        levels: int | None = None,
        reps: int | None = None,
        cert_k: int | None = None,
        sample_const: float = 1.0,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.n = n
        self.eps = eps
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        lg_n = max(1, math.ceil(math.log2(max(n, 2))))
        self.levels = levels if levels is not None else lg_n
        self.reps = reps if reps is not None else max(2, (lg_n + 1) // 2)
        self.cert_k = (
            cert_k
            if cert_k is not None
            else max(4, math.ceil(lg_n * lg_n / (eps * eps)))
        )
        self.sample_const = sample_const
        self._seed = seed

        # Every sub-instance charges its own model; updates hit all of them
        # in parallel (the KL + L structure of Section 5.6), composed as
        # sum-work / max-span.
        self._conn: dict[tuple[int, int], SWConnectivity] = {}
        self._conn_costs: dict[tuple[int, int], CostModel] = {}
        for i in range(self.levels + 1):
            for j in range(self.reps):
                sub = CostModel(enabled=self.cost.enabled)
                self._conn_costs[(i, j)] = sub
                self._conn[(i, j)] = SWConnectivity(
                    n, seed=seed ^ (i * 1009 + j * 9176), cost=sub, engine=engine
                )
                if i == 0:
                    break  # G_0^(j) = G for every j; one instance suffices
        self._cert_costs = [
            CostModel(enabled=self.cost.enabled) for _ in range(self.levels + 1)
        ]
        self._certs = [
            SWKCertificate(
                n,
                k=self.cert_k,
                seed=seed ^ (0xABCD + i),
                cost=self._cert_costs[i],
                engine=engine,
            )
            for i in range(self.levels + 1)
        ]
        self.engine = self._certs[0].engine

    # -- sampling ----------------------------------------------------------

    def _in_conn_sample(self, tau: int, i: int, j: int) -> bool:
        if i == 0:
            return True
        h = splitmix64(self._seed ^ 0x51A5 ^ (tau * 0x100000001B3 + i * 131 + j))
        return h & ((1 << i) - 1) == 0

    def _in_cert_sample(self, tau: int, i: int) -> bool:
        if i == 0:
            return True
        h = splitmix64(self._seed ^ 0xBEEF ^ (tau * 0x100000001B3 + i * 733))
        return h & ((1 << i) - 1) == 0

    # -- updates -----------------------------------------------------------

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges into every subsampled sub-structure in parallel."""
        taus = list(self.clock.assign(len(edges)))

        def insert_conn(i, j, conn):
            sub = [
                (e, tau)
                for e, tau in zip(edges, taus)
                if self._in_conn_sample(tau, i, j)
            ]
            if sub:
                conn.batch_insert([e for e, _ in sub], taus=[t for _, t in sub])

        def insert_cert(i, cert):
            sub = [
                (e, tau)
                for e, tau in zip(edges, taus)
                if self._in_cert_sample(tau, i)
            ]
            if sub:
                cert.batch_insert([e for e, _ in sub], taus=[t for _, t in sub])

        regions = [
            (self._conn_costs[key], (lambda key=key, c=c: insert_conn(*key, c)))
            for key, c in self._conn.items()
        ] + [
            (self._cert_costs[i], (lambda i=i, c=c: insert_cert(i, c)))
            for i, c in enumerate(self._certs)
        ]
        with self.cost.phase("window-insert", items=len(edges)):
            parallel_regions(self.cost, regions)
        get_metrics().counter("sw_sparsifier.inserted").inc(len(edges))

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest arrivals everywhere."""
        tw = self.clock.expire(delta)
        regions = [
            (self._conn_costs[key], (lambda c=c: c.expire_until(tw)))
            for key, c in self._conn.items()
        ] + [
            (self._cert_costs[i], (lambda c=c: c.expire_until(tw)))
            for i, c in enumerate(self._certs)
        ]
        with self.cost.phase("window-expire", items=delta):
            parallel_regions(self.cost, regions)

    # -- queries -----------------------------------------------------------

    def connectivity_level(self, u: int, v: int) -> int:
        """``L(u, v)``: deepest sampling level keeping the endpoints
        connected in all repetitions; ``2^L`` estimates edge connectivity
        within ``O(lg n)`` (Lemma 5.2).  ``O(lg^3 n)`` work."""
        self.cost.add(
            work=self.levels * self.reps * log2ceil(max(self.n, 2)),
            span=log2ceil(max(self.n, 2)),
        )
        level = 0
        for i in range(1, self.levels + 1):
            ok = all(
                self._conn[(i, j)].is_connected(u, v) for j in range(self.reps)
            )
            if ok:
                level = i
            else:
                break
        return level

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity via ``G_0`` (the unsampled level, which is
        the window graph itself)."""
        return parallel_regions(
            self.cost,
            [(self._conn_costs[(0, 0)], lambda: self._conn[(0, 0)].is_connected(u, v))],
        )[0]

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Window connectivity for a whole pair batch off one shared
        ``batch-query`` sweep of ``G_0`` (see docs/batch_queries.md)."""
        if not pairs:
            return []
        with self.cost.phase("window-query", items=len(pairs)):
            return parallel_regions(
                self.cost,
                [
                    (
                        self._conn_costs[(0, 0)],
                        lambda: self._conn[(0, 0)].batch_is_connected(pairs),
                    )
                ],
            )[0]

    def _sample_probability(self, level: int) -> float:
        lg_n = math.log2(max(self.n, 2))
        return min(
            1.0,
            self.sample_const * (2.0**-level) * lg_n * lg_n / (self.eps * self.eps),
        )

    def sparsify(self) -> list[tuple[int, int, float]]:
        """An eps-sparsifier of the window graph w.h.p.

        Edge ``e`` (surviving in certificate ``Q_beta(e)``) is emitted with
        weight ``2^beta(e)``; ``O(n polylog n)`` work.
        """
        out: list[tuple[int, int, float]] = []
        for i, cert in enumerate(self._certs):
            for u, v, _tau in cert.make_certificate():
                p = self._sample_probability(self.connectivity_level(u, v))
                beta = min(self.levels, max(0, math.floor(-math.log2(p))))
                if beta == i:
                    out.append((u, v, float(2**beta)))
        return out

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size

    @property
    def num_instances(self) -> int:
        """Total sub-structures maintained (diagnostics / space shape)."""
        return len(self._conn) + len(self._certs)
