"""Sliding-window cycle-freeness (Theorem 5.6).

A graph with no cycles is a spanning forest, so with the order-2 maximal
spanning forest decomposition ``F_1, F_2`` of Section 5.4, the window graph
has a cycle iff ``F_2`` holds an unexpired edge (an edge beyond a spanning
forest) -- an O(1) query on the ordered set ``D_2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel
from repro.sliding_window.base import WindowClock
from repro.sliding_window.kcertificate import SWKCertificate


class SWCycleFree:
    """Sliding-window cycle detection.

    - ``batch_insert``: ``O(l lg(1 + n/l))`` expected work (two cascades).
    - ``batch_expire``: ``O(delta lg(1 + n/delta))`` expected work.
    - ``has_cycle``: O(1) worst case.

    Self-loops are cycles: they are tracked by arrival position on the side
    since they can never enter a forest.  The structure owns the stream
    clock; the inner certificate receives global positions explicitly.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        self._cert = SWKCertificate(n, k=2, seed=seed, cost=self.cost, engine=engine)
        self.engine = self._cert.engine
        self._loop_taus: list[int] = []  # arrival positions of self-loops

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges (self-loops tracked separately as instant cycles)."""
        taus = self.clock.assign(len(edges))
        keep_edges, keep_taus = [], []
        for (u, v), tau in zip(edges, taus):
            if u == v:
                self._loop_taus.append(tau)
            else:
                keep_edges.append((u, v))
                keep_taus.append(tau)
        if keep_edges:
            # The inner certificate shares this cost model, so its own
            # window-insert phase nests under (and is included in) this one.
            with self.cost.phase("window-insert", items=len(edges)):
                self._cert.batch_insert(keep_edges, taus=keep_taus)
        get_metrics().counter("sw_cyclefree.self_loops").inc(
            len(edges) - len(keep_edges)
        )

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest items (loops included)."""
        tw = self.clock.expire(delta)
        with self.cost.phase("window-expire", items=delta):
            self._cert.expire_until(tw)
            self._loop_taus = [t for t in self._loop_taus if t >= tw]

    def has_cycle(self) -> bool:
        """O(1): the second forest is non-empty iff a cycle is in-window."""
        return bool(self._loop_taus) or self._cert.certificate_sizes()[1] > 0

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity via the inner certificate's ``F_1``, which
        spans every window component."""
        return self._cert.is_connected(u, v)

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Batched window connectivity off one shared ``batch-query``
        sweep of the certificate's ``F_1`` (see docs/batch_queries.md)."""
        return self._cert.batch_is_connected(pairs)

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size
