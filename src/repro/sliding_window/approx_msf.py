"""Sliding-window approximate MSF weight (Theorem 5.4).

For weights in ``[1, W]``, maintain ``R = O(eps^-1 lg W)`` eager
connectivity structures ``F_0 .. F_{R-1}``, where level ``i`` sees only the
edges of weight at most ``(1 + eps)^i``.  The classic reduction [11, 4, 13]
then approximates the MSF weight to within ``1 + eps`` as

    weight = (n - cc(G_0)) + sum_i (cc(G_{i-1}) - cc(G_i)) * (1 + eps)^i ,

where ``cc`` is the O(1) ``num_components`` query of Theorem 5.2.

The estimate treats the window graph as if each MSF edge of true weight
``w`` weighed the smallest ``(1 + eps)^i >= w``; for disconnected windows
the convention (as in the reduction) is that only intra-component MSF
weight is counted.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel, log2ceil, parallel_regions
from repro.sliding_window.base import WindowClock
from repro.sliding_window.connectivity import SWConnectivityEager


class SWApproxMSFWeight:
    """(1 + eps)-approximate MSF weight over a sliding window.

    Args:
        n: vertex count.
        eps: approximation parameter (> 0).
        max_weight: upper bound ``W`` on edge weights (weights must lie in
            ``[1, W]``); sets ``R = ceil(log_{1+eps} W) + 1`` levels.

    - ``batch_insert``: ``O(eps^-1 l lg W lg(1 + n/l))`` expected work.
    - ``batch_expire``: ``O(eps^-1 delta lg W lg(1 + n/delta))`` expected.
    - ``weight``: ``O(R)`` work (R ``num_components`` calls + the sum).
    """

    def __init__(
        self,
        n: int,
        eps: float,
        max_weight: float,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if max_weight < 1:
            raise ValueError("weights are assumed to lie in [1, max_weight]")
        self.n = n
        self.eps = eps
        self.max_weight = max_weight
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        self.num_levels = max(1, math.ceil(math.log(max_weight, 1.0 + eps))) + 1
        # Each level gets its own sub-model; updates run on all levels in
        # parallel (Section 5.3: "batch-inserting into R SW-Conn-Eager
        # instances in parallel"), so the parent is charged sum-work /
        # max-span across levels.
        self._level_costs = [
            CostModel(enabled=self.cost.enabled) for _ in range(self.num_levels)
        ]
        self._levels = [
            SWConnectivityEager(
                n, seed=seed + i, cost=self._level_costs[i], engine=engine
            )
            for i in range(self.num_levels)
        ]
        self.engine = self._levels[0].engine

    def _threshold(self, i: int) -> float:
        return (1.0 + self.eps) ** i

    def batch_insert(self, edges: Sequence[tuple[int, int, float]]) -> None:
        """Insert weighted edges ``(u, v, w)`` with ``1 <= w <= W``."""
        for u, v, w in edges:
            if not (1.0 <= w <= self.max_weight):
                raise ValueError(
                    f"edge weight {w} outside [1, {self.max_weight}]"
                )
        taus = list(self.clock.assign(len(edges)))

        # Level i receives the sub-stream of edges with w <= (1+eps)^i, with
        # global positions so expiry lines up across levels; all levels are
        # updated in parallel (sum-work, max-span).
        def insert_into(i, level):
            thr = self._threshold(i)
            sub = [((u, v), tau) for (u, v, w), tau in zip(edges, taus) if w <= thr]
            if sub:
                level.batch_insert([e for e, _ in sub], taus=[t for _, t in sub])

        with self.cost.phase("window-insert", items=len(edges)):
            parallel_regions(
                self.cost,
                [
                    (self._level_costs[i], (lambda i=i, lvl=lvl: insert_into(i, lvl)))
                    for i, lvl in enumerate(self._levels)
                ],
            )
        get_metrics().counter("sw_approx_msf.inserted").inc(len(edges))

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest stream items at every level."""
        tw = self.clock.expire(delta)
        with self.cost.phase("window-expire", items=delta):
            parallel_regions(
                self.cost,
                [
                    (self._level_costs[i], (lambda lvl=lvl: lvl.expire_until(tw)))
                    for i, lvl in enumerate(self._levels)
                ],
            )

    def weight(self) -> float:
        """(1 + eps)-approximate window MSF weight; O(R) work, O(lg R) span.

        Recomputed from equation (1) of Section 5.3 on each call (the paper
        recomputes it at the end of each update; exposing it as a query is
        equivalent and keeps updates cheaper when no one is looking).
        """
        with self.cost.phase("window-query"):
            self.cost.add(
                work=self.num_levels, span=log2ceil(max(self.num_levels, 2))
            )
        cc = [lvl.num_components for lvl in self._levels]
        total = float(self.n - cc[0])
        for i in range(1, self.num_levels):
            total += (cc[i - 1] - cc[i]) * self._threshold(i)
        return total

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity, answered by the top level (its threshold
        is ``>= W``, so it sees every window edge)."""
        top = self.num_levels - 1
        return parallel_regions(
            self.cost,
            [(self._level_costs[top], lambda: self._levels[top].is_connected(u, v))],
        )[0]

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Window connectivity for a whole pair batch off one shared
        ``batch-query`` sweep of the top level (see
        docs/batch_queries.md)."""
        if not pairs:
            return []
        top = self.num_levels - 1
        with self.cost.phase("window-query", items=len(pairs)):
            return parallel_regions(
                self.cost,
                [
                    (
                        self._level_costs[top],
                        lambda: self._levels[top].batch_is_connected(pairs),
                    )
                ],
            )[0]

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size
