"""Sliding-window bipartiteness (Theorem 5.3).

A graph is bipartite iff its *cycle double cover* -- replace each vertex
``v`` by ``v1, v2`` and each edge ``(u, v)`` by ``(u1, v2), (u2, v1)`` --
has exactly twice as many connected components.  Two eager connectivity
structures run in parallel: one on the window graph, one on its double
cover (whose stream receives two edges per arrival, preserving order).
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel, parallel_regions
from repro.sliding_window.base import WindowClock
from repro.sliding_window.connectivity import SWConnectivityEager


class SWBipartiteness:
    """Sliding-window bipartite testing.

    - ``batch_insert``: ``O(l lg(1 + n/l))`` expected work.
    - ``batch_expire``: ``O(delta lg(1 + n/delta) + lg n)`` expected work.
    - ``is_bipartite``: O(1) worst case.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        # The window graph and its double cover are maintained "in parallel"
        # (Section 5.2): each gets a sub-model, composed as sum-work/max-span.
        self._g_cost = CostModel(enabled=self.cost.enabled)
        self._cover_cost = CostModel(enabled=self.cost.enabled)
        self._g = SWConnectivityEager(n, seed=seed, cost=self._g_cost, engine=engine)
        self._cover = SWConnectivityEager(
            2 * n, seed=seed + 1, cost=self._cover_cost, engine=engine
        )
        self.engine = self._g.engine

    def batch_insert(self, edges: Sequence[tuple[int, int]]) -> None:
        """Insert edges into the window graph and its double cover."""
        if not edges:
            return
        with self.cost.phase("window-insert", items=len(edges)):
            self.clock.assign(len(edges))
            cover_edges = []
            for u, v in edges:
                cover_edges.append((u, self.n + v))
                cover_edges.append((self.n + u, v))
            parallel_regions(
                self.cost,
                [
                    (self._g_cost, lambda: self._g.batch_insert(edges)),
                    (self._cover_cost, lambda: self._cover.batch_insert(cover_edges)),
                ],
            )
        get_metrics().counter("sw_bipartiteness.inserted").inc(len(edges))

    def batch_expire(self, delta: int) -> None:
        """Expire the ``delta`` oldest arrivals (2 delta cover edges)."""
        with self.cost.phase("window-expire", items=delta):
            self.clock.expire(delta)
            parallel_regions(
                self.cost,
                [
                    (self._g_cost, lambda: self._g.batch_expire(delta)),
                    # Two cover edges per arrival.
                    (self._cover_cost, lambda: self._cover.batch_expire(2 * delta)),
                ],
            )

    def is_bipartite(self) -> bool:
        """O(1): the window graph is bipartite iff its double cover has
        exactly twice as many components (isolated vertices included --
        each isolated original vertex contributes two cover singletons)."""
        return self._cover.num_components == 2 * self._g.num_components

    def is_connected(self, u: int, v: int) -> bool:
        """Window connectivity, answered by the window-graph structure."""
        return parallel_regions(
            self.cost, [(self._g_cost, lambda: self._g.is_connected(u, v))]
        )[0]

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Window connectivity for a whole pair batch off one shared
        ``batch-query`` sweep of the window-graph forest (see
        docs/batch_queries.md)."""
        if not pairs:
            return []
        with self.cost.phase("window-query", items=len(pairs)):
            return parallel_regions(
                self.cost,
                [(self._g_cost, lambda: self._g.batch_is_connected(pairs))],
            )[0]

    @property
    def num_components(self) -> int:
        """Components of the window graph (O(1))."""
        return self._g.num_components

    @property
    def window_size(self) -> int:
        """Number of unexpired stream items."""
        return self.clock.window_size
