"""Shared sliding-window plumbing: the arrival clock.

Every window structure tracks a stream clock: ``t`` is the next arrival
position (``tau`` of the next edge) and ``tw`` is the position of the
oldest unexpired edge.  ``batch_expire(delta)`` advances ``tw`` by
``delta`` (Section 5: "BatchExpire differs from a delete operation ... it
only expects a count"); composed structures that share a parent's clock
instead call ``expire_until(tau)``.
"""

from __future__ import annotations


class WindowClock:
    """The (t, tw) stream clock shared by all Section 5 structures."""

    __slots__ = ("t", "tw")

    def __init__(self) -> None:
        self.t = 0  # next arrival position
        self.tw = 0  # oldest unexpired position

    def assign(self, count: int) -> range:
        """Consume ``count`` arrival positions; returns their tau range."""
        out = range(self.t, self.t + count)
        self.t += count
        return out

    def expire(self, delta: int) -> int:
        """Advance the window start by ``delta`` items; returns new tw."""
        if delta < 0:
            raise ValueError("cannot expire a negative number of edges")
        self.tw = min(self.t, self.tw + delta)
        return self.tw

    def expire_until(self, tau: int) -> int:
        """Advance the window start to ``tau`` (monotone)."""
        self.tw = min(self.t, max(self.tw, tau))
        return self.tw

    @property
    def window_size(self) -> int:
        """Number of unexpired stream positions."""
        return self.t - self.tw
