"""Sliding-window graph data structures (Section 5, Theorems 5.1-5.8).

All structures share the batch sliding-window interface:

- ``batch_insert(edges)`` -- new edges arrive on the new side of the window;
- ``batch_expire(delta)`` -- the ``delta`` oldest edges leave the old side
  (only a count is needed, not the edges themselves);

plus problem-specific queries.  Arbitrary interleavings of inserts and
expirations of arbitrary sizes are allowed; matching them keeps the window
fixed-size.

Internally every structure weights edge ``e`` by ``-tau(e)`` (its stream
position), so a heaviest-edge path query returns the *oldest* edge on the
path -- the recent-edge property (Lemma 5.1) that reduces window
connectivity to incremental MSF.
"""

from repro.sliding_window.base import WindowClock
from repro.sliding_window.connectivity import SWConnectivity, SWConnectivityEager
from repro.sliding_window.bipartiteness import SWBipartiteness
from repro.sliding_window.approx_msf import SWApproxMSFWeight
from repro.sliding_window.kcertificate import SWKCertificate
from repro.sliding_window.cyclefree import SWCycleFree
from repro.sliding_window.sparsifier import SWSparsifier

__all__ = [
    "WindowClock",
    "SWConnectivity",
    "SWConnectivityEager",
    "SWBipartiteness",
    "SWApproxMSFWeight",
    "SWKCertificate",
    "SWCycleFree",
    "SWSparsifier",
]
