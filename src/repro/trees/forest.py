"""The user-facing weighted dynamic forest over original vertex ids.

:class:`DynamicForest` composes the ternarization layer with the RC forest:
callers speak in original vertices ``0..n-1`` and non-negative edge ids;
internally every operation runs on the bounded-degree forest.  Supports
batch link, batch cut, connectivity, heaviest-edge path queries and
compressed path trees -- everything Algorithm 2 needs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.runtime.cost import CostModel
from repro.trees.cpt import CompressedPathTree
from repro.trees.engine import make_rc_forest
from repro.trees.ternary import TernaryForest


class DynamicForest:
    """A batch-dynamic weighted forest on ``n`` vertices.

    Edges carry caller-chosen non-negative ids; weights are arbitrary floats
    compared as ``(weight, eid)`` so maxima are unique.  Linking two
    connected vertices raises (the structure is a forest; cycle-forming
    inserts are the responsibility of the MSF layer above).
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        compress_rule: str = "mr",
        engine: str | None = None,
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self.ternary = TernaryForest(n)
        self.rc = make_rc_forest(
            engine,
            vertices=range(n),
            seed=seed,
            cost=self.cost,
            compress_rule=compress_rule,
        )
        self.engine = self.rc.engine
        self._edge_info: dict[int, tuple[int, int, float]] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of live edges in the forest."""
        return len(self._edge_info)

    @property
    def num_components(self) -> int:
        """Components of the original vertex set (isolated vertices count)."""
        return self.n - len(self._edge_info)

    def has_edge(self, eid: int) -> bool:
        """Whether edge ``eid`` is currently in the forest."""
        return eid in self._edge_info

    def edge_info(self, eid: int) -> tuple[int, int, float]:
        """(u, v, weight) of a live edge."""
        return self._edge_info[eid]

    def edges(self) -> list[tuple[int, int, float, int]]:
        """All live edges as ``(u, v, w, eid)`` (O(m))."""
        return [(u, v, w, eid) for eid, (u, v, w) in sorted(self._edge_info.items())]

    def batch_update(
        self,
        links: Sequence[tuple[int, int, float, int]] = (),
        cut_eids: Sequence[int] = (),
        check_forest: bool = False,
    ) -> None:
        """Cut ``cut_eids`` then link ``links`` in one propagation pass.

        Each link is ``(u, v, w, eid)``.  Links must keep the structure a
        forest *after* the cuts are applied -- that is the caller's contract
        (Algorithm 2 guarantees it via Theorem 4.1).  Malformed batches
        (unknown/duplicate ids, self-loops, out-of-range endpoints) raise
        *before anything is mutated*.

        With ``check_forest=True`` the cuts and links run as two propagation
        passes with an O(l lg n) acyclicity check in between; a
        cycle-creating link then raises with the cuts applied but no links.
        """
        links = list(links)
        cut_eids = list(cut_eids)
        self.ternary.validate_batch(add=links, remove=cut_eids)

        cuts = self.ternary.remove_edges(cut_eids)
        for eid in cut_eids:
            del self._edge_info[eid]
        if check_forest:
            self.rc.batch_update(cuts=cuts)
            cuts = []
            comp_of: dict[int, int] = {}

            def find(x: int) -> int:
                while comp_of.get(x, x) != x:
                    comp_of[x] = comp_of.get(comp_of[x], comp_of[x])
                    x = comp_of[x]
                return x

            for u, v, w, eid in links:
                ru = find(self.rc.root_key(self.ternary.canonical(u)))
                rv = find(self.rc.root_key(self.ternary.canonical(v)))
                if ru == rv:
                    raise ValueError(
                        f"link ({u}, {v}) would close a cycle in the forest"
                    )
                comp_of[ru] = rv
        internal_links = self.ternary.add_edges(links)
        for u, v, w, eid in links:
            self._edge_info[eid] = (u, v, w)
        new_vertices = [
            x for x in range(self.rc.num_vertices, self.ternary.num_copies)
        ]
        for x in new_vertices:
            self.rc.ensure_vertex(x)
        self.rc.batch_update(links=internal_links, cuts=cuts)

    def batch_link(self, links: Sequence[tuple[int, int, float, int]]) -> None:
        """Insert edges ``(u, v, w, eid)`` (see :meth:`batch_update`)."""
        self.batch_update(links=links)

    def batch_cut(self, eids: Sequence[int]) -> None:
        """Delete edges by id (see :meth:`batch_update`)."""
        self.batch_update(cut_eids=eids)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are in the same tree (O(lg n) w.h.p.)."""
        return self.rc.connected(self.ternary.canonical(u), self.ternary.canonical(v))

    def _canonical_pairs(self, pairs) -> list[tuple[int, int]]:
        out = []
        canon = self.ternary.canonicals
        for u, v in pairs:
            u, v = int(u), int(v)
            if not (0 <= u < self.n):
                raise KeyError(f"vertex {u} out of range")
            if not (0 <= v < self.n):
                raise KeyError(f"vertex {v} out of range")
            out.append((canon[u], canon[v]))
        return out

    def batch_connected(self, pairs: Sequence[tuple[int, int]]) -> list[bool]:
        """:meth:`connected` for a whole batch of pairs in one shared
        root-walk sweep (phase ``batch-query`` wrapping the engine's
        ``bq-roots``); ``l`` queries cost ``O(l lg(1 + n/l))`` expected
        work at ``O(lg n)`` span instead of ``l`` root walks."""
        mapped = self._canonical_pairs(pairs)
        if not mapped:
            return []
        with self.cost.phase("batch-query", items=len(mapped)):
            return self.rc.batch_is_connected(mapped)

    def batch_path_max(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, int] | None]:
        """:meth:`path_max` for a whole batch of pairs; ``None`` per pair
        when disconnected or ``u == v``.

        One shared engine sweep (phase ``batch-query`` wrapping
        ``bq-roots``/``bq-paths``) instead of one compressed path tree
        per query; answers match :meth:`path_max` exactly.  Virtual
        ternarization links weigh ``-inf`` with negative eids, so a real
        edge always wins the max and the reported ``(w, eid)`` is a
        physical edge.
        """
        mapped = self._canonical_pairs(pairs)
        if not mapped:
            return []
        with self.cost.phase("batch-query", items=len(mapped)):
            raw = self.rc.batch_path_max(mapped)
        # A connected distinct original pair can never see an all-virtual
        # path (distinct originals are joined through real edges), so a
        # non-None answer is always a physical edge.
        return raw

    def path_max(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest ``(weight, eid)`` on the tree path ``u -- v``.

        Returns ``None`` if disconnected or ``u == v``.  O(lg n) w.h.p. --
        this is the compressed path tree of two marked vertices.
        """
        agg = self.path_aggregate(u, v)
        return None if agg is None else (agg.max_w, agg.max_eid)

    def path_aggregate(self, u: int, v: int):
        """Full aggregates of the tree path ``u -- v``: heaviest edge, total
        weight, edge count (a :class:`~repro.trees.cpt.PathAggregate`).

        Returns ``None`` if disconnected or ``u == v``.  O(lg n) w.h.p.
        """
        if u == v:
            return None
        cpt = self.compressed_path_tree([u, v])
        if not cpt.edges:
            return None
        ((a, b, _, _),) = cpt.edges
        assert {a, b} == {u, v}
        return cpt.aggregates[0]

    def path_sum(self, u: int, v: int) -> float | None:
        """Total weight of the tree path ``u -- v`` (None if disconnected)."""
        agg = self.path_aggregate(u, v)
        if agg is None:
            return 0.0 if u == v and 0 <= u < self.n else None
        return agg.total

    def path_length(self, u: int, v: int) -> int | None:
        """Number of edges on the tree path ``u -- v`` (None if disconnected)."""
        agg = self.path_aggregate(u, v)
        if agg is None:
            return 0 if u == v and 0 <= u < self.n else None
        return agg.count

    # -- component aggregates (O(lg n) root walk + O(1) read) -------------

    def _root(self, v: int):
        return self.rc.component_summary(self.ternary.canonical(v))

    def component_size(self, v: int) -> int:
        """Number of original vertices in ``v``'s tree.

        The root cluster counts ternarization copies, but a tree's original
        vertex count is its real-edge count plus one.
        """
        return self._root(v).sub_edges + 1

    def component_edge_count(self, v: int) -> int:
        """Number of edges in ``v``'s tree."""
        return self._root(v).sub_edges

    def component_weight(self, v: int) -> float:
        """Total edge weight of ``v``'s tree."""
        return self._root(v).sub_sum

    def split_aggregates(self, eid: int) -> tuple[dict, dict]:
        """What-if query: the component aggregates of the two sides that
        cutting edge ``eid`` would create, *without changing the forest*.

        Implemented as cut -> query -> relink; because the contraction
        state is a pure function of (edge set, seed), the relink restores
        the exact prior state.  O(lg n) w.h.p. per phase.
        """
        u, v, w = self.edge_info(eid)
        self.batch_cut([eid])
        try:
            sides = []
            for x in (u, v):
                sides.append(
                    {
                        "vertices": self.component_size(x),
                        "edges": self.component_edge_count(x),
                        "weight": self.component_weight(x),
                        "diameter": self.component_diameter(x),
                    }
                )
        finally:
            self.batch_link([(u, v, w, eid)])
        return sides[0], sides[1]

    def component_diameter(self, v: int) -> float:
        """Maximum path weight between any two vertices of ``v``'s tree
        (0 for an isolated vertex).  O(lg n) w.h.p. -- the classic RC-tree
        distance augmentation [3]."""
        return self._root(v).diam[0]

    def component_diameter_endpoints(self, v: int) -> tuple[int, int]:
        """A vertex pair realising the component diameter (original ids;
        ``(v, v)`` for an isolated vertex).  O(lg n) w.h.p."""
        _, x, y = self._root(v).diam
        owner = self.ternary.owner
        return (owner(x), owner(y))

    def eccentricity(self, u: int) -> float:
        """Maximum path weight from ``u`` to any vertex of its tree.

        Uses the classic fact that the farthest vertex from any vertex of a
        tree is an endpoint of some diameter; O(lg n) w.h.p.  Assumes
        non-negative weights (as eccentricity requires to be meaningful).
        """
        a, b = self.component_diameter_endpoints(u)
        da = self.path_sum(u, a) if u != a else 0.0
        db = self.path_sum(u, b) if u != b else 0.0
        return max(da, db)

    def farthest_vertex(self, u: int) -> tuple[int, float]:
        """The vertex of ``u``'s tree farthest from ``u`` and its distance
        (``(u, 0.0)`` for an isolated vertex).  O(lg n) w.h.p."""
        a, b = self.component_diameter_endpoints(u)
        da = self.path_sum(u, a) if u != a else 0.0
        db = self.path_sum(u, b) if u != b else 0.0
        return (a, da) if da >= db else (b, db)

    def compressed_path_tree(self, marked: Iterable[int]) -> CompressedPathTree:
        """The compressed path tree w.r.t. marked *original* vertices.

        Internal ternarization copies are contracted away: Steiner vertices
        are reported under their original ids, virtual chain edges vanish,
        and every edge is annotated with the heaviest physical ``(w, eid)``
        on the path segment it represents (Theorem 3.2 bounds).
        """
        marks = sorted({int(v) for v in marked})
        for v in marks:
            if not (0 <= v < self.n):
                raise KeyError(f"marked vertex {v} out of range")
        canon = self.ternary.canonicals
        raw = self.rc.compressed_path_trees(
            [canon[v] for v in marks], cost=self.cost
        )
        owner = self.ternary.owners
        vertices = sorted(set(map(owner.__getitem__, raw.vertices)))
        edges: list[tuple[int, int, float, int]] = []
        aggs = []
        for (a, b, w, eid), agg in zip(raw.edges, raw.aggregates):
            if eid < 0:  # virtual chain link (TernaryForest.is_virtual_eid)
                continue  # all-virtual segment: endpoints share an owner
            oa, ob = owner[a], owner[b]
            if oa == ob:  # pragma: no cover - forests cannot revisit a vertex
                raise AssertionError(f"real CPT segment loops at vertex {oa}")
            edges.append((oa, ob, w, eid))
            aggs.append(agg)
        return CompressedPathTree(
            vertices=vertices, edges=edges, aggregates=aggs, marked=set(marks)
        )
