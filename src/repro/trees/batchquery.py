"""Shared scalar reference for the batched RC-tree read kernels.

``batch_is_connected`` and ``batch_path_max`` answer a whole batch of
vertex pairs in two level-synchronous sweeps over the RC tree:

- **bq-roots** -- walk every distinct query endpoint from its vertex
  leaf to its root *simultaneously*.  Endpoints whose walks merge share
  the rest of the climb (one parent lookup per distinct frontier node
  per round), which is where the batch saves over per-query root walks:
  ``l`` queries cost ``O(l lg(1 + n/l))`` expected work instead of
  ``O(l lg n)``, at ``O(lg n)`` span.  The walk also records each leaf's
  depth, consumed by the second sweep.
- **bq-paths** -- for each distinct connected pair, climb both sides in
  depth lockstep while maintaining, per side, the heaviest ``(w, eid)``
  from the query vertex to each boundary vertex of its current cluster.
  The sides first share a parent M exactly at the pair's cluster-tree
  LCA; the two clusters there intersect precisely at ``rep(M)``, so the
  answer is the max of the two side aggregates oriented toward
  ``rep(M)``.

Three implementations exist: this module's scalar loops (the object
engine always, and ``RCArrayForest`` under ``DENSE_THRESHOLD``) and the
vectorized NumPy sweep in :mod:`repro.trees.rcarray`.  All three must
return identical answers **and charge identical work/span to identical
phases** -- the cross-engine differential tests compare per-op charges.
The contract, which every implementation replicates exactly:

- ``bq-roots``: ``work = 2 l + sum_r |frontier_r| + l`` where
  ``frontier_r`` is the set of distinct live nodes in round ``r`` and
  ``l = len(pairs)``; ``span = rounds + 2``; ``items = l``.
- ``bq-paths``: ``work = m + advances + l`` where ``m`` is the number of
  distinct normalized connected pairs and ``advances`` counts every
  one-side climb step plus one unit per resolution; ``span = rounds + 2``
  with ``rounds`` the longest single-pair lockstep; ``items = m``.

Implementations are parameterized by a tiny adapter (duck-typed node
handles: ``ClusterNode`` objects or int node ids) so the climb logic --
in particular the boundary-orientation cases -- lives in exactly one
place.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.cost import CostModel

#: Identity for max-(w, eid) path aggregates.  The eid component is more
#: negative than any virtual-edge id the ternarization layer hands out,
#: so an empty aggregate loses even to an all-virtual path segment.
EMPTY_W = float("-inf")
EMPTY_E = -(1 << 62)
_EMPTY = (EMPTY_W, EMPTY_E)


def walk_roots(ad, verts):
    """Shared root walk: ``vert -> (root, depth)`` plus the charge inputs.

    Returns ``(root, depth, work, rounds)`` where ``work`` counts one
    unit per distinct frontier node per round (the dedup terms ``3 l``
    are added by the caller, which knows the batch size).
    """
    cur = {x: ad.leaf(x) for x in verts}
    root: dict = {}
    depth: dict = {}
    active = list(verts)
    work = 0
    rounds = 0
    while active:
        rounds += 1
        par: dict = {}
        for x in active:
            nd = cur[x]
            if nd not in par:
                par[nd] = ad.parent(nd)
        work += len(par)
        nxt = []
        for x in active:
            p = par[cur[x]]
            if p is None:
                root[x] = cur[x]
                depth[x] = rounds - 1
            else:
                cur[x] = p
                nxt.append(x)
        active = nxt
    return root, depth, work, rounds


def batch_is_connected(ad, pairs, cost: CostModel):
    """Scalar reference for the batched same-tree test."""
    if not pairs:
        return []
    l = len(pairs)
    with cost.phase("bq-roots", items=l):
        root, _, work, rounds = walk_roots(
            ad, {x for p in pairs for x in p}
        )
        cost.add(work=work + 3 * l, span=rounds + 2)
    return [root[u] == root[v] for u, v in pairs]


def batch_path_max(ad, pairs, cost: CostModel):
    """Scalar reference for the batched heaviest-edge path query.

    ``None`` for ``u == v`` and for disconnected pairs, matching the
    per-query CPT-based ``path_max``.
    """
    if not pairs:
        return []
    l = len(pairs)
    ans: list[tuple[float, int] | None] = [None] * l
    with cost.phase("bq-roots", items=l):
        root, depth, work, rounds = walk_roots(
            ad, {x for (u, v) in pairs if u != v for x in (u, v)}
        )
        cost.add(work=work + 3 * l, span=rounds + 2)
    todo: dict[tuple, list[int]] = {}
    for i, (u, v) in enumerate(pairs):
        if u == v or root[u] != root[v]:
            continue
        todo.setdefault((u, v) if u <= v else (v, u), []).append(i)
    m = len(todo)
    with cost.phase("bq-paths", items=m):
        work = m
        rounds = 0
        for (a, b), idxs in todo.items():
            res, r_p, w_p = _climb_pair(ad, a, b, depth[a], depth[b])
            rounds = max(rounds, r_p)
            work += w_p
            for i in idxs:
                ans[i] = res
        cost.add(work=work + l, span=rounds + 2)
    return ans


def _to_rep(ad, c, a0, a1, r):
    """Heaviest (w, eid) from the side's query vertex to ``r``, given its
    current cluster ``c`` with aggregates toward b0/b1."""
    if ad.is_vertex(c):
        return _EMPTY
    return a0 if ad.b0(c) == r else a1


def _advance(ad, c, a0, a1):
    """Climb one side from cluster ``c`` into its parent ``P``, rebasing
    the aggregates onto P's boundary.

    For each boundary vertex ``b`` of P: if ``c`` is the binary child
    adjacent to ``b`` the path stays inside ``c`` (reuse the aggregate
    toward ``b``); otherwise it runs through ``rep(P)`` and continues
    along that binary child's cluster path.
    """
    P = ad.parent(c)
    r = ad.rep(P)
    ar = _to_rep(ad, c, a0, a1, r)
    e1 = ad.e1(P)
    if c == e1:
        na0 = a0 if ad.b0(c) == ad.b0(P) else a1
    else:
        na0 = max(ar, (ad.pw(e1), ad.pe(e1)))
    if ad.nnb(P) == 2:
        e2 = ad.e2(P)
        if c == e2:
            na1 = a0 if ad.b0(c) == ad.b1(P) else a1
        else:
            na1 = max(ar, (ad.pw(e2), ad.pe(e2)))
    else:
        na1 = _EMPTY
    return P, na0, na1


def _climb_pair(ad, a, b, da, db):
    """Lockstep climb of one connected distinct pair; returns
    ``(answer, rounds, work)``."""
    ca, a0, a1 = ad.leaf(a), _EMPTY, _EMPTY
    cb, b0, b1 = ad.leaf(b), _EMPTY, _EMPTY
    rounds = 0
    work = 0
    while True:
        rounds += 1
        if da == db:
            pa = ad.parent(ca)
            if pa == ad.parent(cb):
                work += 1
                r = ad.rep(pa)
                return (
                    max(_to_rep(ad, ca, a0, a1, r), _to_rep(ad, cb, b0, b1, r)),
                    rounds,
                    work,
                )
            ca, a0, a1 = _advance(ad, ca, a0, a1)
            cb, b0, b1 = _advance(ad, cb, b0, b1)
            da -= 1
            db -= 1
            work += 2
        elif da > db:
            ca, a0, a1 = _advance(ad, ca, a0, a1)
            da -= 1
            work += 1
        else:
            cb, b0, b1 = _advance(ad, cb, b0, b1)
            db -= 1
            work += 1


def normalize_pairs(
    pairs: Sequence[tuple[int, int]], require
) -> list[tuple[int, int]]:
    """Validate a pair batch (both endpoints through ``require``) and
    return it as a list of int tuples."""
    out = []
    for u, v in pairs:
        u, v = int(u), int(v)
        require(u)
        require(v)
        out.append((u, v))
    return out
