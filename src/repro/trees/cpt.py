"""The compressed path tree (Section 3, Algorithm 1).

Given an RC forest and a set of marked vertices, the compressed path tree
(CPT) is a minimal tree on the marked vertices plus Steiner branch vertices
such that every pairwise heaviest-edge query between marked vertices has the
same answer as in the original forest.  Construction (Theorem 3.2):
``O(l lg(1 + n/l))`` work in expectation and ``O(lg n)`` span w.h.p. for
``l`` marked vertices.

The implementation follows the paper exactly:

1. *Mark phase* -- walk from each marked vertex leaf up the RC tree, stopping
   at the first already-marked cluster (the early stop realises the shared
   root-to-leaf path bound of Lemma 3.3).
2. *Expand phase* -- ``ExpandCluster`` recursion over marked clusters:
   an unmarked cluster contributes only its boundary (plus, if binary, one
   edge annotated with the heaviest ``(weight, eid)`` on its cluster path);
   a marked composite expands its children and then ``Prune``s its
   representative.  The paper's lazy set union is realised with a single
   shared graph builder mutated in post-order.

Edges in the result carry the identity of the *physical* heaviest edge on
the path segment they stand for, which is what lets Algorithm 2 translate
"CPT edge evicted from the local MSF" into "delete that base edge".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.runtime.cost import CostModel, log2ceil
from repro.trees.cluster import ClusterKind, ClusterNode
from repro.trees.rcforest import RCForest


@dataclass(frozen=True)
class PathAggregate:
    """Aggregates of one compressed path segment: the heaviest physical
    edge, the total real weight, and the real-edge count."""

    max_w: float
    max_eid: int
    total: float
    count: int

    def combine(self, other: "PathAggregate") -> "PathAggregate":
        """Concatenate two path segments (max of maxima, sums add)."""
        if (self.max_w, self.max_eid) >= (other.max_w, other.max_eid):
            mw, me = self.max_w, self.max_eid
        else:
            mw, me = other.max_w, other.max_eid
        return PathAggregate(mw, me, self.total + other.total, self.count + other.count)


@dataclass
class CompressedPathTree:
    """A compressed path forest over all components touched by the marks.

    Attributes:
        vertices: all vertices present (marked plus Steiner branch vertices).
        edges: ``(u, v, weight, eid)`` -- each annotated with the heaviest
            physical edge on the path segment it represents.
        aggregates: per-edge :class:`PathAggregate` aligned with ``edges``
            (adds the segment's total real weight and real-edge count).
        marked: the subset of ``vertices`` that was marked.
    """

    vertices: list[int]
    edges: list[tuple[int, int, float, int]]
    aggregates: list[PathAggregate] = field(default_factory=list)
    marked: set[int] = field(default_factory=set)

    @property
    def num_vertices(self) -> int:
        """Number of CPT vertices (marked + Steiner)."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of CPT edges (compressed path segments)."""
        return len(self.edges)

    def _adjacency(self) -> dict[int, list[tuple[int, int]]]:
        # Built lazily on the first path query, then reused for the whole
        # batch -- the point of answering l queries off one CPT.
        adj = getattr(self, "_adj", None)
        if adj is None:
            adj = {v: [] for v in self.vertices}
            for i, (a, b, _, _) in enumerate(self.edges):
                adj[a].append((b, i))
                adj[b].append((a, i))
            self._adj = adj
        return adj

    def path_aggregate(self, u: int, v: int) -> PathAggregate | None:
        """Aggregates of the (unique) CPT path ``u -- v``.

        ``u`` and ``v`` must be CPT vertices -- in practice, marked when
        the tree was built.  Returns ``None`` when they sit in different
        components or ``u == v``.  O(size of the CPT), so answering a
        whole batch of queries against one CPT keeps the per-query cost
        at the Theorem 3.2 amortized bound.
        """
        adj = self._adjacency()
        if u not in adj or v not in adj:
            raise KeyError(f"({u}, {v}): not CPT vertices")
        if u == v:
            return None
        # BFS with parent edges; the CPT is a forest, so the first route
        # found is the only one.
        parent: dict[int, tuple[int, int]] = {u: (u, -1)}
        frontier = [u]
        while frontier and v not in parent:
            nxt = []
            for x in frontier:
                for y, ei in adj[x]:
                    if y not in parent:
                        parent[y] = (x, ei)
                        nxt.append(y)
            frontier = nxt
        if v not in parent:
            return None
        agg: PathAggregate | None = None
        x = v
        while x != u:
            x, ei = parent[x]
            agg = self.aggregates[ei] if agg is None else agg.combine(
                self.aggregates[ei]
            )
        return agg

    def path_max(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest physical ``(weight, eid)`` on the CPT path ``u -- v``
        (``None`` when disconnected or ``u == v``)."""
        agg = self.path_aggregate(u, v)
        return None if agg is None else (agg.max_w, agg.max_eid)

    def connected(self, u: int, v: int) -> bool:
        """Whether CPT vertices ``u`` and ``v`` share a component.

        Faithful to the underlying forest for *marked* vertices: the CPT
        spans every component containing a mark.
        """
        return u == v or self.path_aggregate(u, v) is not None


class _GraphBuilder:
    """The mutable graph that ``ExpandCluster`` accumulates into.

    Edge annotations are :class:`PathAggregate` values; splicing combines
    them (max for the heaviest edge, sums for totals/counts).
    """

    __slots__ = ("adj",)

    def __init__(self) -> None:
        self.adj: dict[int, dict[int, PathAggregate]] = {}

    def add_vertex(self, v: int) -> None:
        """Ensure ``v`` exists (isolated if no edges follow)."""
        if v not in self.adj:
            self.adj[v] = {}

    def add_edge(self, a: int, b: int, agg: PathAggregate) -> None:
        """Add an annotated segment edge (forests never create parallels)."""
        self.add_vertex(a)
        self.add_vertex(b)
        if b in self.adj[a]:  # pragma: no cover - forest structure forbids it
            raise AssertionError(f"parallel CPT edge ({a}, {b})")
        self.adj[a][b] = agg
        self.adj[b][a] = agg

    def degree(self, v: int) -> int:
        """Current degree of ``v`` in the partial CPT."""
        return len(self.adj[v])

    def remove_vertex(self, v: int) -> None:
        """Delete ``v`` and its incident edges."""
        for u in list(self.adj[v]):
            del self.adj[u][v]
        del self.adj[v]

    def splice_out(self, v: int) -> None:
        """Replace degree-2 vertex ``v`` by one edge carrying the combined
        annotation of its two incident edges (the ``SpliceOut`` primitive)."""
        (a, wa), (b, wb) = self.adj[v].items()
        del self.adj[a][v]
        del self.adj[b][v]
        del self.adj[v]
        agg = wa.combine(wb)
        if b in self.adj[a]:  # pragma: no cover - forest structure forbids it
            raise AssertionError(f"parallel CPT edge ({a}, {b}) after splice")
        self.adj[a][b] = agg
        self.adj[b][a] = agg


def compressed_path_trees(
    rc: RCForest,
    marked: Iterable[int],
    cost: CostModel | None = None,
) -> CompressedPathTree:
    """Compressed path trees of every component containing a marked vertex.

    ``marked`` are vertex ids of ``rc``.  Isolated marked vertices appear in
    the result with no edges.  Work is charged per RC-tree node touched,
    span as the maximum expansion depth (Theorem 3.2).
    """
    marked_set = {int(v) for v in marked}
    for v in marked_set:
        if v not in rc.vleaf:
            raise KeyError(f"marked vertex {v} is not in the forest")

    charge = cost if cost is not None else CostModel(enabled=False)

    # Mark phase: early-stopping upward walks (Lemma 3.3 path sharing).
    with charge.phase("cpt-mark") as ph:
        marked_clusters: set[int] = set()  # ids of ClusterNode objects
        roots: list[ClusterNode] = []
        touched = 0
        for v in marked_set:
            node: ClusterNode | None = rc.vleaf[v]
            while node is not None and id(node) not in marked_clusters:
                marked_clusters.add(id(node))
                touched += 1
                if node.parent is None:
                    roots.append(node)
                node = node.parent
        charge.add(
            work=touched + max(len(marked_set), 1),
            span=log2ceil(max(rc.num_vertices, 2)),
        )
        ph.count(touched)

    with charge.phase("cpt-expand") as ph:
        builder = _GraphBuilder()
        for v in marked_set:
            builder.add_vertex(v)

        expand_count = 0
        max_depth = 0
        for root in roots:
            d = _expand(rc, root, builder, marked_set, marked_clusters)
            expand_count += d[0]
            max_depth = max(max_depth, d[1])
        charge.add(work=expand_count, span=max_depth + 1)
        ph.count(expand_count)

    vertices = sorted(builder.adj)
    edges = []
    aggs = []
    for a in vertices:
        for b, agg in builder.adj[a].items():
            if a < b:
                edges.append((a, b, agg.max_w, agg.max_eid))
                aggs.append(agg)
    return CompressedPathTree(
        vertices=vertices, edges=edges, aggregates=aggs, marked=marked_set
    )


def _expand(
    rc: RCForest,
    cluster: ClusterNode,
    g: _GraphBuilder,
    marked: set[int],
    marked_clusters: set[int],
) -> tuple[int, int]:
    """``ExpandCluster`` (Algorithm 1) in post-order over the shared builder.

    Returns (nodes visited, recursion depth) for cost accounting.
    """
    if id(cluster) not in marked_clusters:
        # Unmarked cluster: contribute its boundary, plus its cluster-path
        # edge if binary (Algorithm 1, lines 3-9).
        for b in cluster.boundary:
            g.add_vertex(b)
        if cluster.is_binary():
            a, b = cluster.boundary
            g.add_edge(
                a,
                b,
                PathAggregate(
                    cluster.path_w,
                    cluster.path_eid,
                    cluster.path_sum,
                    cluster.path_count,
                ),
            )
        return (1, 1)

    if cluster.kind is ClusterKind.VERTEX:
        g.add_vertex(cluster.rep)  # lines 10-11
        return (1, 1)

    visited, depth = 1, 0
    for child in cluster.children:
        cv, cd = _expand(rc, child, g, marked, marked_clusters)
        visited += cv
        depth = max(depth, cd)
    _prune(g, cluster.rep, marked, set(cluster.boundary))
    return (visited, depth + 1)


def _prune(
    g: _GraphBuilder, v: int, marked: set[int], protected: set[int]
) -> None:
    """The ``Prune`` primitive: drop a redundant representative vertex.

    ``protected`` holds the enclosing cluster's boundary vertices, which the
    recursion treats as marked (Lemma 3.1's inductive assumption).
    """
    if v in marked or v in protected:
        return
    deg = g.degree(v)
    if deg == 2:
        g.splice_out(v)
    elif deg == 1:
        (u,) = g.adj[v]
        g.remove_vertex(v)
        if u not in marked and u not in protected and g.degree(u) == 2:
            g.splice_out(u)
    elif deg == 0:
        # Defensive: an unmarked, disconnected representative carries no
        # path information.
        g.remove_vertex(v)
