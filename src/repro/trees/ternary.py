"""Dynamic ternarization: arbitrary-degree forests as bounded-degree forests.

RC trees require constant-degree inputs; the paper notes that "arbitrary
degree trees can easily be handled by converting them into equivalent bounded
degree trees ... dynamically at no extra cost" (Section 2.2).  We realise the
conversion with *vertex copies*: each original vertex ``v`` is a chain of
internal copies joined by **virtual edges** of weight ``-inf``.  Every copy
carries at most one real edge and at most two chain links, so internal degree
is at most 3.  Virtual edges never win a heaviest-edge comparison, and
compressed-path-tree construction contracts them away, so the ternarized
forest is query-equivalent to the original.

Freed real-edge slots are recycled through a per-vertex free list, so the
number of copies of ``v`` is bounded by its maximum concurrent degree.
"""

from __future__ import annotations

from dataclasses import dataclass

NEG_INF = float("-inf")


@dataclass(frozen=True)
class InternalLink:
    """An internal (bounded-degree) edge to add: ``a -- b`` with a weight.

    ``eid`` is the original edge id for real edges and a unique negative id
    for virtual chain links.
    """

    a: int
    b: int
    w: float
    eid: int


class TernaryForest:
    """Maps original-vertex edge operations to bounded-degree internal ops.

    Internal copy ids are allocated densely from ``0``; the *canonical* copy
    of original vertex ``v`` is its first copy.  The structure only manages
    the correspondence -- the internal forest itself lives in
    :class:`~repro.trees.rcforest.RCForest`.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self._canonical = list(range(n))  # head copy of each original vertex
        self._tail = list(range(n))  # last copy in each chain
        self._copy_owner = list(range(n))  # internal copy -> original vertex
        self._free_slots: list[list[int]] = [[v] for v in range(n)]
        self._edge_slot: dict[int, tuple[int, int]] = {}  # eid -> (copy_a, copy_b)
        self._next_virtual_eid = -1

    # -- introspection ----------------------------------------------------

    @property
    def num_copies(self) -> int:
        """Total internal copies allocated so far."""
        return len(self._copy_owner)

    def canonical(self, v: int) -> int:
        """The internal copy representing original vertex ``v``."""
        return self._canonical[v]

    def owner(self, copy: int) -> int:
        """The original vertex that internal copy ``copy`` belongs to."""
        return self._copy_owner[copy]

    @property
    def canonicals(self) -> list[int]:
        """Read-only index map: original vertex -> canonical copy (bulk
        form of :meth:`canonical` for hot paths)."""
        return self._canonical

    @property
    def owners(self) -> list[int]:
        """Read-only index map: internal copy -> original vertex (bulk
        form of :meth:`owner` for hot paths)."""
        return self._copy_owner

    def has_edge(self, eid: int) -> bool:
        """Whether real edge ``eid`` is live."""
        return eid in self._edge_slot

    @staticmethod
    def is_virtual_eid(eid: int) -> bool:
        """Whether ``eid`` names a virtual chain link (negative ids)."""
        return eid < 0

    # -- slot management ---------------------------------------------------

    def _take_slot(self, v: int, out_links: list[InternalLink]) -> int:
        """A copy of ``v`` with a free real-edge slot, growing the chain if
        needed (emitting the virtual link into ``out_links``)."""
        free = self._free_slots[v]
        if free:
            return free.pop()
        new_copy = len(self._copy_owner)
        self._copy_owner.append(v)
        tail = self._tail[v]
        self._tail[v] = new_copy
        veid = self._next_virtual_eid
        self._next_virtual_eid -= 1
        out_links.append(InternalLink(tail, new_copy, NEG_INF, veid))
        return new_copy

    # -- batch translation -------------------------------------------------

    def validate_batch(
        self,
        add: list[tuple[int, int, float, int]] = (),
        remove: list[int] = (),
    ) -> None:
        """Raise (without mutating anything) if the batch is malformed:
        unknown/duplicate removals, duplicate or reused insert ids,
        self-loops, or out-of-range endpoints.  Removed ids may be reused by
        inserts of the same batch."""
        removed: set[int] = set()
        for eid in remove:
            if eid in removed:
                raise KeyError(f"edge id {eid} removed twice in one batch")
            if eid not in self._edge_slot:
                raise KeyError(f"edge id {eid} is not present")
            removed.add(eid)
        seen: set[int] = set()
        for u, v, w, eid in add:
            if eid < 0:
                raise ValueError(f"real edge ids must be non-negative, got {eid}")
            if u == v:
                raise ValueError(f"self-loop on vertex {u} cannot join a forest")
            if eid in seen or (eid in self._edge_slot and eid not in removed):
                raise ValueError(f"duplicate edge id {eid}")
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"endpoint out of range: ({u}, {v})")
            seen.add(eid)

    def add_edges(
        self, edges: list[tuple[int, int, float, int]]
    ) -> list[InternalLink]:
        """Translate original edges ``(u, v, w, eid)`` into internal links.

        Returns the internal links to apply (virtual chain links first, then
        the real edges).  Rejects self-loops, duplicate eids within the
        batch, and eids already present -- validated up-front, so a raise
        leaves the structure untouched.
        """
        self.validate_batch(add=edges)
        virtuals: list[InternalLink] = []
        reals: list[InternalLink] = []
        for u, v, w, eid in edges:
            ca = self._take_slot(u, virtuals)
            cb = self._take_slot(v, virtuals)
            self._edge_slot[eid] = (ca, cb)
            reals.append(InternalLink(ca, cb, w, eid))
        return virtuals + reals

    def remove_edges(self, eids: list[int]) -> list[tuple[int, int, int]]:
        """Translate edge deletions into internal cuts ``(copy_a, copy_b, eid)``.

        Validated up-front (a raise leaves the structure untouched).  The
        freed slots are returned to their vertices' free lists.  Virtual
        chain links are *not* removed (empty copies are harmless degree <= 2
        vertices that the contraction compresses away); this keeps deletion
        O(1) per edge and space bounded by the high-water degree.
        """
        self.validate_batch(remove=list(eids))
        cuts: list[tuple[int, int, int]] = []
        for eid in eids:
            ca, cb = self._edge_slot.pop(eid)
            self._free_slots[self._copy_owner[ca]].append(ca)
            self._free_slots[self._copy_owner[cb]].append(cb)
            cuts.append((ca, cb, eid))
        return cuts

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Current internal endpoints of a live real edge."""
        return self._edge_slot[eid]
