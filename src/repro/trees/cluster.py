"""RC-tree cluster nodes.

A cluster is a connected subset of vertices and edges of the base forest
(Section 2.2).  Leaves of the RC tree are the base vertices and edges;
every composite cluster has exactly one *representative* vertex -- the
vertex whose contraction (rake / compress / finalize) formed it -- so
composite clusters are identified one-to-one with vertices.

Binary clusters are augmented with the heaviest edge on the *cluster path*
(the path between their two boundary vertices), stored as a
``(weight, edge id)`` pair so path maxima identify a physical edge; this is
the ``Weight`` primitive of Section 3.
"""

from __future__ import annotations

import enum
from typing import Optional


class ClusterKind(enum.Enum):
    """The five cluster kinds of an RC tree (Section 2.2)."""

    VERTEX = "vertex"  # base vertex leaf
    EDGE = "edge"  # base edge leaf (a binary cluster)
    UNARY = "unary"  # composite formed by a rake
    BINARY = "binary"  # composite formed by a compress
    NULLARY = "nullary"  # composite formed by a finalize (component root)


class ClusterNode:
    """One node of an RC tree.

    Attributes:
        kind: the cluster kind.
        rep: representative vertex (composites), base vertex id (vertex
            leaves), or ``-1`` (edge leaves).
        eid: base edge id (edge leaves only, else ``-1``).
        level: contraction round that formed the cluster (0 for leaves).
        parent: consuming cluster, or ``None`` at a root.
        children: child clusters (composites only; disjoint union equals
            the cluster contents).
        boundary: boundary vertices -- () nullary, (u,) unary, (u, w) binary.
        path_w / path_eid: heaviest edge on the cluster path (binary and
            edge clusters only).
    """

    __slots__ = (
        "kind",
        "rep",
        "eid",
        "level",
        "parent",
        "children",
        "boundary",
        "path_w",
        "path_eid",
        "path_sum",
        "path_count",
        "sub_verts",
        "sub_edges",
        "sub_sum",
        "maxd",
        "diam",
    )

    def __init__(
        self,
        kind: ClusterKind,
        rep: int = -1,
        eid: int = -1,
    ) -> None:
        self.kind = kind
        self.rep = rep
        self.eid = eid
        self.level = 0
        self.parent: Optional["ClusterNode"] = None
        self.children: list["ClusterNode"] = []
        self.boundary: tuple[int, ...] = ()
        # Cluster-path augmentation (binary/edge clusters): the heaviest
        # (weight, eid) on the boundary-to-boundary path, plus its total
        # real weight and real-edge count (virtual ternarization edges
        # contribute nothing to sums/counts).
        self.path_w: float = float("-inf")
        self.path_eid: int = -1
        self.path_sum: float = 0.0
        self.path_count: int = 0
        # Subtree (whole-cluster) augmentation: contained vertex leaves,
        # real edges, and total real weight.
        self.sub_verts: int = 0
        self.sub_edges: int = 0
        self.sub_sum: float = 0.0
        # Distance augmentation for diameter/eccentricity queries: per
        # boundary vertex (aligned with `boundary`), the max real-weight
        # distance to any vertex inside the cluster together with the
        # vertex achieving it; and the in-cluster diameter with its
        # endpoint pair.  -inf / -1 where the cluster contains no vertex
        # (edge leaves).
        self.maxd: tuple[tuple[float, int], ...] = ()
        self.diam: tuple[float, int, int] = (float("-inf"), -1, -1)

    # -- Section 3 primitives (all O(1)) -----------------------------------

    def boundary_vertices(self) -> tuple[int, ...]:
        """The ``Boundary`` primitive of Section 3."""
        return self.boundary

    def representative(self) -> int:
        """The ``Representative`` primitive of Section 3."""
        return self.rep

    def weight(self) -> tuple[float, int]:
        """Heaviest (weight, eid) on the path between the two boundaries."""
        if self.kind not in (ClusterKind.BINARY, ClusterKind.EDGE):
            raise ValueError(f"weight() is defined on binary clusters, not {self.kind}")
        return (self.path_w, self.path_eid)

    def is_composite(self) -> bool:
        """True for rake/compress/finalize clusters (non-leaves)."""
        return self.kind in (ClusterKind.UNARY, ClusterKind.BINARY, ClusterKind.NULLARY)

    def is_binary(self) -> bool:
        """True for clusters with two boundary vertices (a cluster path)."""
        return self.kind in (ClusterKind.BINARY, ClusterKind.EDGE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f"e{self.eid}" if self.kind is ClusterKind.EDGE else f"v{self.rep}"
        return (
            f"<{self.kind.value} {tag} lvl={self.level} bnd={self.boundary}"
            f" pm=({self.path_w}, {self.path_eid})>"
        )
