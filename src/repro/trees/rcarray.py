"""Array-backed RC forest: a NumPy structure-of-arrays contraction engine.

This is a faithful port of :class:`repro.trees.rcforest.RCForest` (the
object engine) to flat NumPy storage.  Both engines make the same coin
flips, run the same per-level decision rules, and maintain the same
leveled contraction and RC tree -- ``snapshot()`` of the two engines is
*equal* for the same (edge set, seed), and every operation charges the
same simulated work/span to the same :class:`~repro.runtime.CostModel`
phases.  What differs is the machine cost: the hot passes (per-level
decision sweeps, adjacency diff pushes, cluster aggregate rebuilds, CPT
expansion) run as vectorized array operations over int64/float64 columns
instead of per-node Python object traversals.

Layout
------

*Leveled contraction state* (one block per level, all rows indexed by
vertex id):

- ``deg``  -- int64 degree, ``-1`` for vertices absent from the level;
- ``nbr``  -- ``(capacity, width)`` int64 neighbour matrix; each row is
  sorted ascending and padded with a large sentinel, so ``row[:deg]`` is
  exactly the sorted neighbour set;
- ``tag/da/db`` -- the decision: ``-1`` none, ``0`` stay, ``1`` finalize,
  ``2`` rake (target ``da``), ``3`` compress (``da < db``).

*RC-tree node table* (one row per cluster node, grown by doubling):
kind/rep/eid/level/parent plus every augmentation of
:class:`~repro.trees.cluster.ClusterNode` flattened into parallel
columns (boundary as ``nb/b0/b1``, path max/sum/count, subtree counts,
per-boundary farthest-vertex pairs, diameter triple).  Children lists
stay as Python lists -- they are only walked by CPT expansion and
snapshots, never by the hot propagation loop.

Small frontiers take a scalar path (Python loops over the same arrays);
frontiers of at least ``DENSE_THRESHOLD`` vertices take the vectorized
path.  Both compute identical states and identical cost charges, which
the differential test suite (``tests/test_engine_differential.py``)
checks against the object engine.
"""

from __future__ import annotations

import heapq
from itertools import chain
from typing import Iterable

import numpy as np

from repro.runtime.cost import CostModel, log2ceil
from repro.runtime.hashing import HashBits
from repro.trees import batchquery
from repro.trees.engine import ComponentSummary
from repro.trees.ternary import InternalLink

_MAX_LEVELS = 4096  # hard safety cap; ~lg n levels are used in practice
_PAD = 1 << 62  # adjacency padding; sorts after every real vertex id
_NEG = float("-inf")

# Cluster kind codes, aligned with ClusterKind for snapshot rendering.
_K_VERTEX, _K_EDGE, _K_UNARY, _K_BINARY, _K_NULLARY = 0, 1, 2, 3, 4
_KIND_VALUE = ("vertex", "edge", "unary", "binary", "nullary")

# Decision tags (-1 = no decision recorded).
_T_STAY, _T_FINAL, _T_RAKE, _T_COMP = 0, 1, 2, 3

_U64 = np.uint64
_FNV = _U64(0x100000001B3)
_SM_GAMMA = _U64(0x9E3779B97F4A7C15)
_SM_M1 = _U64(0xBF58476D1CE4E5B9)
_SM_M2 = _U64(0x94D049BB133111EB)


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _lexmax2(w1, v1, w2, v2):
    """Vectorized ``max((w1, v1), (w2, v2))`` with Python tuple semantics
    (the first argument wins ties)."""
    t = (w1 > w2) | ((w1 == w2) & (v1 >= v2))
    return np.where(t, w1, w2), np.where(t, v1, v2)


def _lexmax3(w1, x1, y1, w2, x2, y2):
    """Vectorized first-wins max of ``(w, x, y)`` triples."""
    t = (w1 > w2) | ((w1 == w2) & ((x1 > x2) | ((x1 == x2) & (y1 >= y2))))
    return np.where(t, w1, w2), np.where(t, x1, x2), np.where(t, y1, y2)


class _ArrayAdapter:
    """Int-node-id adapter feeding :mod:`repro.trees.batchquery`'s scalar
    reference loops (the under-``DENSE_THRESHOLD`` path)."""

    __slots__ = ("f",)

    def __init__(self, f: "RCArrayForest") -> None:
        self.f = f

    def leaf(self, v):
        return int(self.f._vl[v])

    def parent(self, n):
        p = int(self.f._npar[n])
        return None if p == -1 else p

    def is_vertex(self, n):
        return self.f._nk[n] == _K_VERTEX

    def rep(self, n):
        return int(self.f._nrep[n])

    def b0(self, n):
        return int(self.f._nb0[n])

    def b1(self, n):
        return int(self.f._nb1[n])

    def nnb(self, n):
        return int(self.f._nnb[n])

    def e1(self, n):
        return int(self.f._ne1[n])

    def e2(self, n):
        return int(self.f._ne2[n])

    def pw(self, n):
        return float(self.f._npw[n])

    def pe(self, n):
        return int(self.f._npe[n])


class RCArrayForest:
    """Structure-of-arrays RC forest, API-compatible with ``RCForest``.

    Accepts the same constructor arguments and supports the same batch
    update / query / diagnostic surface; cluster handles are int node ids
    instead of ``ClusterNode`` objects (``root_key`` abstracts the
    difference for callers that only compare identities).
    """

    engine = "array"

    #: Frontier/bucket size at which level passes switch from the scalar
    #: loop to the vectorized path.  Both paths are state- and
    #: cost-identical; tests pin this to force either one.
    DENSE_THRESHOLD = 48

    def __init__(
        self,
        vertices: Iterable[int] = (),
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        compress_rule: str = "mr",
    ) -> None:
        if compress_rule not in ("mr", "ordered"):
            raise ValueError(
                f"compress_rule must be 'mr' or 'ordered', got {compress_rule!r}"
            )
        self.compress_rule = compress_rule
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._bits = HashBits(seed)
        self.seed = self._bits.seed
        self._seed64 = _U64(self.seed)

        self._cap = 64
        self._width = 4
        # Per-vertex tables.
        self._vl = np.full(self._cap, -1, np.int64)  # vertex leaf node id
        self._cp = np.full(self._cap, -1, np.int64)  # composite node id
        self._top = np.full(self._cap, -1, np.int64)  # contraction level
        # Reusable scratch for sorted-unique vertex-id merges (always all
        # False between uses); cheaper than np.unique's sort at our sizes.
        self._umask = np.zeros(self._cap, np.bool_)
        self._nreg = 0
        # Leveled contraction state.
        self._Ld = [np.full(self._cap, -1, np.int64)]
        self._Ln = [np.full((self._cap, self._width), _PAD, np.int64)]
        self._Lt = [np.full(self._cap, -1, np.int8)]
        self._La = [np.full(self._cap, -1, np.int64)]
        self._Lb = [np.full(self._cap, -1, np.int64)]
        self._Lnlive = [0]
        self._Lndec = [0]
        # Trimmed level blocks are parked here for reuse: a trimmed level
        # is fully cleared (deg -1, nbr PAD, tag/da/db -1), so it can be
        # re-attached without refilling as long as its shape still matches.
        self._Lspare: list[tuple] = []
        # RC-tree node table (SoA).
        self._ncap = 0
        self._nn = 0
        self._alloc_nodes(256)
        self._nkids: list[list[int] | None] = []
        # Indexes (level-tagged, mirroring the object engine).
        self.eleaf: dict[int, int] = {}
        # Keyed by the packed sorted endpoint pair ``(a << 32) | b``
        # (cheaper to hash than a tuple); values are ``(node, level)``.
        self._edge_cluster: dict[int, tuple[int, int]] = {}
        self._rakes_on: dict[int, dict[int, int]] = {}
        self._edge_endpoints: dict[int, tuple[int, int]] = {}
        self._edge_attrs: dict[int, tuple[float, int]] = {}
        self._pending_rebuild: set[int] = set()
        self._dbuckets: dict[int, set[int]] | None = None
        self.num_levels = 1

        init = [int(v) for v in vertices]
        for v in init:
            self._register(v)
        if init:
            self._propagate(set(init))

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------

    def _alloc_nodes(self, cap: int) -> None:
        def ext(old, fill, dt):
            arr = np.full(cap, fill, dt)
            if old is not None:
                arr[: len(old)] = old
            return arr

        g = self.__dict__.get
        self._nk = ext(g("_nk"), 0, np.int8)
        self._nrep = ext(g("_nrep"), -1, np.int64)
        self._neid = ext(g("_neid"), -1, np.int64)
        self._nlevel = ext(g("_nlevel"), 0, np.int64)
        self._npar = ext(g("_npar"), -1, np.int64)
        self._nnb = ext(g("_nnb"), 0, np.int8)
        self._nb0 = ext(g("_nb0"), -1, np.int64)
        self._nb1 = ext(g("_nb1"), -1, np.int64)
        self._npw = ext(g("_npw"), _NEG, np.float64)
        self._npe = ext(g("_npe"), -1, np.int64)
        self._nps = ext(g("_nps"), 0.0, np.float64)
        self._npc = ext(g("_npc"), 0, np.int64)
        self._nsv = ext(g("_nsv"), 0, np.int64)
        self._nse = ext(g("_nse"), 0, np.int64)
        self._nss = ext(g("_nss"), 0.0, np.float64)
        self._nnm = ext(g("_nnm"), 0, np.int8)
        self._n0w = ext(g("_n0w"), _NEG, np.float64)
        self._n0v = ext(g("_n0v"), -1, np.int64)
        self._n1w = ext(g("_n1w"), _NEG, np.float64)
        self._n1v = ext(g("_n1v"), -1, np.int64)
        self._ndw = ext(g("_ndw"), _NEG, np.float64)
        self._ndx = ext(g("_ndx"), -1, np.int64)
        self._ndy = ext(g("_ndy"), -1, np.int64)
        # Oriented binary children of composites (-1 when absent): _ne1
        # is the binary child adjacent to nb0, _ne2 the one adjacent to
        # nb1.  Consumed by the batch read kernels; deliberately NOT part
        # of the parent-visible signature or snapshots (node ids are
        # engine-internal).
        self._ne1 = ext(g("_ne1"), -1, np.int64)
        self._ne2 = ext(g("_ne2"), -1, np.int64)
        self._ncap = cap

    def _new_node(self, kind: int, rep: int = -1, eid: int = -1) -> int:
        n = self._nn
        if n >= self._ncap:
            self._alloc_nodes(max(2 * self._ncap, 256))
        # Rows are allocated with ClusterNode's defaults; only overrides
        # are written here.
        self._nk[n] = kind
        self._nrep[n] = rep
        self._neid[n] = eid
        self._nkids.append(None)
        self._nn = n + 1
        return n

    def _grow_cap(self, min_id: int) -> None:
        cap = max(2 * self._cap, min_id + 1)

        def ext(old, fill):
            arr = np.full(cap, fill, old.dtype)
            arr[: len(old)] = old
            return arr

        self._vl = ext(self._vl, -1)
        self._cp = ext(self._cp, -1)
        self._top = ext(self._top, -1)
        um = np.zeros(cap, np.bool_)
        um[: len(self._umask)] = self._umask
        self._umask = um
        for i in range(len(self._Ld)):
            self._Ld[i] = ext(self._Ld[i], -1)
            self._Lt[i] = ext(self._Lt[i], -1)
            self._La[i] = ext(self._La[i], -1)
            self._Lb[i] = ext(self._Lb[i], -1)
            nb = np.full((cap, self._width), _PAD, np.int64)
            nb[: self._cap] = self._Ln[i]
            self._Ln[i] = nb
        self._cap = cap

    def _ensure_width(self, w: int) -> None:
        if w <= self._width:
            return
        # Grow geometrically: every growth reallocates one adjacency block
        # per level (and invalidates the spare pool), so +2 steps are far
        # too frequent on workloads whose max degree creeps upward.
        width = max(w, 2 * self._width)
        for i in range(len(self._Ln)):
            nb = np.full((self._cap, width), _PAD, np.int64)
            nb[:, : self._width] = self._Ln[i]
            self._Ln[i] = nb
        self._width = width

    def _ensure_level(self, i: int) -> None:
        while len(self._Ld) <= i:
            while self._Lspare:
                d, n, t, a, b = self._Lspare.pop()
                if d.shape[0] == self._cap and n.shape == (
                    self._cap,
                    self._width,
                ):
                    self._Ld.append(d)
                    self._Ln.append(n)
                    self._Lt.append(t)
                    self._La.append(a)
                    self._Lb.append(b)
                    break
            else:
                self._Ld.append(np.full(self._cap, -1, np.int64))
                self._Ln.append(
                    np.full((self._cap, self._width), _PAD, np.int64)
                )
                self._Lt.append(np.full(self._cap, -1, np.int8))
                self._La.append(np.full(self._cap, -1, np.int64))
                self._Lb.append(np.full(self._cap, -1, np.int64))
            self._Lnlive.append(0)
            self._Lndec.append(0)

    # ------------------------------------------------------------------
    # Registration and basic accessors
    # ------------------------------------------------------------------

    def _register(self, v: int) -> None:
        if v >= self._cap:
            self._grow_cap(v)
        if self._vl[v] == -1:
            leaf = self._new_node(_K_VERTEX, rep=v)
            self._nsv[leaf] = 1
            self._ndw[leaf] = 0.0
            self._ndx[leaf] = v
            self._ndy[leaf] = v
            self._vl[v] = leaf
            self._Ld[0][v] = 0
            self._Lnlive[0] += 1
            self._rakes_on[v] = {}
            self._nreg += 1

    def ensure_vertex(self, v: int) -> bool:
        """Register ``v`` if new; returns True if it was added."""
        if 0 <= v < self._cap and self._vl[v] != -1:
            return False
        self._register(v)
        return True

    def _require_vertex(self, v: int) -> None:
        if not (0 <= v < self._cap) or self._vl[v] == -1:
            raise KeyError(v)

    @property
    def num_vertices(self) -> int:
        """Number of registered (internal) vertices."""
        return self._nreg

    @property
    def num_edges(self) -> int:
        """Number of live edges."""
        return len(self.eleaf)

    def has_edge(self, eid: int) -> bool:
        """Whether edge ``eid`` is live."""
        return eid in self.eleaf

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints of a live edge."""
        return self._edge_endpoints[eid]

    def edge_attrs(self, eid: int) -> tuple[float, int]:
        """(weight, eid) of a live edge."""
        return self._edge_attrs[eid]

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the base forest."""
        self._require_vertex(v)
        return int(self._Ld[0][v])

    def neighbors(self, v: int) -> set[int]:
        """Base-forest neighbours of ``v`` (a copy)."""
        d = self.degree(v)
        return set(self._Ln[0][v, :d].tolist())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def root_id(self, v: int) -> int:
        """Node id of the nullary root cluster of ``v``'s component."""
        self._require_vertex(v)
        node = int(self._vl[v])
        par = self._npar
        steps = 0
        p = int(par[node])
        while p != -1:
            node = p
            steps += 1
            p = int(par[node])
        self.cost.add(work=steps + 1, span=steps + 1)
        return node

    def root_key(self, v: int) -> int:
        """Engine-neutral identity of ``v``'s root cluster."""
        return self.root_id(v)

    def connected(self, u: int, v: int) -> bool:
        """Same-tree test via root clusters (O(lg n) w.h.p.)."""
        return self.root_id(u) == self.root_id(v)

    # -- batched reads (level-synchronous SoA sweeps) -------------------

    def batch_is_connected(self, pairs) -> list[bool]:
        """Same-tree test for a whole batch of pairs in one shared sweep.

        All distinct endpoints climb to their roots simultaneously;
        walks that merge share every remaining parent lookup, so ``l``
        queries cost ``O(l lg(1 + n/l))`` expected work at ``O(lg n)``
        span (phase ``bq-roots``) instead of ``l`` independent root
        walks.  Batches under ``DENSE_THRESHOLD`` run the scalar
        reference loop; both paths are answer- and cost-identical.

        >>> from repro.trees.rcarray import RCArrayForest
        >>> from repro.trees.ternary import InternalLink
        >>> f = RCArrayForest(range(4), seed=1)
        >>> f.batch_update(links=[InternalLink(0, 1, 5.0, 10),
        ...                       InternalLink(1, 2, 7.0, 11)])
        >>> f.batch_is_connected([(0, 2), (0, 3), (2, 2)])
        [True, False, True]
        """
        pairs = batchquery.normalize_pairs(pairs, self._require_vertex)
        if not pairs:
            return []
        if len(pairs) < self.DENSE_THRESHOLD:
            return batchquery.batch_is_connected(
                _ArrayAdapter(self), pairs, self.cost
            )
        l = len(pairs)
        with self.cost.phase("bq-roots", items=l):
            pa = np.asarray(pairs, np.int64)
            verts, inv = np.unique(pa.reshape(-1), return_inverse=True)
            root, _, work, rounds = self._roots_sweep(verts)
            self.cost.add(work=work + 3 * l, span=rounds + 2)
        r = root[inv].reshape(-1, 2)
        return (r[:, 0] == r[:, 1]).tolist()

    def batch_path_max(self, pairs) -> list[tuple[float, int] | None]:
        """Heaviest ``(w, eid)`` per tree path for a batch of pairs.

        ``None`` for ``u == v`` or disconnected pairs.  Two phases: the
        shared root walk of :meth:`batch_is_connected` (``bq-roots``,
        which also records leaf depths), then a depth-lockstep climb of
        every distinct connected pair carrying per-side boundary
        aggregates until the two sides meet at their cluster-tree LCA
        (``bq-paths``).  Scalar fallback under ``DENSE_THRESHOLD`` as
        elsewhere; answers match the per-query CPT path exactly.

        >>> from repro.trees.rcarray import RCArrayForest
        >>> from repro.trees.ternary import InternalLink
        >>> f = RCArrayForest(range(4), seed=1)
        >>> f.batch_update(links=[InternalLink(0, 1, 5.0, 10),
        ...                       InternalLink(1, 2, 7.0, 11)])
        >>> f.batch_path_max([(0, 2), (0, 1), (0, 3), (1, 1)])
        [(7.0, 11), (5.0, 10), None, None]
        """
        pairs = batchquery.normalize_pairs(pairs, self._require_vertex)
        if not pairs:
            return []
        if len(pairs) < self.DENSE_THRESHOLD:
            return batchquery.batch_path_max(
                _ArrayAdapter(self), pairs, self.cost
            )
        l = len(pairs)
        pa = np.asarray(pairs, np.int64)
        ne = pa[:, 0] != pa[:, 1]
        with self.cost.phase("bq-roots", items=l):
            verts, inv = np.unique(pa[ne].reshape(-1), return_inverse=True)
            root, depth, work, rounds = self._roots_sweep(verts)
            self.cost.add(work=work + 3 * l, span=rounds + 2)
        ans: list[tuple[float, int] | None] = [None] * l
        ridx = np.flatnonzero(ne)
        if ridx.size:
            rr = root[inv].reshape(-1, 2)
            conn = rr[:, 0] == rr[:, 1]
            ridx = ridx[conn]
        if ridx.size:
            u_, v_ = pa[ridx, 0], pa[ridx, 1]
            a_ = np.minimum(u_, v_)
            b_ = np.maximum(u_, v_)
            key = (a_ << 32) | b_
            _, uidx, kinv = np.unique(
                key, return_index=True, return_inverse=True
            )
            A, B = a_[uidx], b_[uidx]
            m = A.size
            da = depth[np.searchsorted(verts, A)].copy()
            db = depth[np.searchsorted(verts, B)].copy()
            with self.cost.phase("bq-paths", items=m):
                resw, rese, work, rounds = self._paths_sweep(
                    self._vl[A].copy(), self._vl[B].copy(), da, db
                )
                self.cost.add(work=m + work + l, span=rounds + 2)
            rw = resw[kinv].tolist()
            re = rese[kinv].tolist()
            for i, w_, e_ in zip(ridx.tolist(), rw, re):
                ans[i] = (w_, e_)
        else:
            with self.cost.phase("bq-paths", items=0):
                self.cost.add(work=l, span=2)
        return ans

    def _roots_sweep(self, verts):
        """Vectorized shared root walk over distinct vertex ids: returns
        ``(root, depth, work, rounds)`` aligned with ``verts`` (the
        charge formula lives in :mod:`repro.trees.batchquery`)."""
        cur = self._vl[verts].copy()
        root = np.full(verts.size, -1, np.int64)
        depth = np.zeros(verts.size, np.int64)
        act = np.arange(verts.size)
        npar = self._npar
        work = 0
        rounds = 0
        while act.size:
            rounds += 1
            un, uinv = np.unique(cur[act], return_inverse=True)
            work += un.size
            p = npar[un][uinv]
            done = p == -1
            di = act[done]
            root[di] = cur[di]
            depth[di] = rounds - 1
            live = ~done
            cur[act[live]] = p[live]
            act = act[live]
        return root, depth, work, rounds

    def _to_rep_vec(self, c, r, w0, e0, w1, e1):
        """Vectorized ``batchquery._to_rep``: per-side aggregate from the
        query vertex to ``r``, given current clusters ``c``."""
        isv = self._nk[c] == _K_VERTEX
        sel0 = self._nb0[c] == r
        w = np.where(isv, _NEG, np.where(sel0, w0, w1))
        e = np.where(isv, batchquery.EMPTY_E, np.where(sel0, e0, e1))
        return w, e

    def _advance_vec(self, cn, w0, e0, w1, e1, idx):
        """Vectorized ``batchquery._advance``: climb the rows ``idx`` of
        one side into their parents, rebasing boundary aggregates
        in-place."""
        nb0, nb1 = self._nb0, self._nb1
        npw, npe = self._npw, self._npe
        c = cn[idx]
        P = self._npar[c]
        r = self._nrep[P]
        arw, are = self._to_rep_vec(c, r, w0[idx], e0[idx], w1[idx], e1[idx])
        E1 = self._ne1[P]
        cw0, ce0 = _lexmax2(arw, are, npw[E1], npe[E1])
        ise1 = c == E1
        csel = nb0[c] == nb0[P]
        na0w = np.where(ise1, np.where(csel, w0[idx], w1[idx]), cw0)
        na0e = np.where(ise1, np.where(csel, e0[idx], e1[idx]), ce0)
        # ne2 is -1 on unary parents: the gather at row -1 is garbage but
        # every lane it feeds is masked off by ``hasb1`` below.
        hasb1 = self._nnb[P] == 2
        E2 = self._ne2[P]
        cw1, ce1 = _lexmax2(arw, are, npw[E2], npe[E2])
        ise2 = c == E2
        csel2 = nb0[c] == nb1[P]
        na1w = np.where(ise2, np.where(csel2, w0[idx], w1[idx]), cw1)
        na1e = np.where(ise2, np.where(csel2, e0[idx], e1[idx]), ce1)
        w0[idx] = na0w
        e0[idx] = na0e
        w1[idx] = np.where(hasb1, na1w, _NEG)
        e1[idx] = np.where(hasb1, na1e, batchquery.EMPTY_E)
        cn[idx] = P

    def _paths_sweep(self, can, cbn, da, db):
        """Vectorized depth-lockstep climb of distinct connected pairs;
        returns ``(resw, rese, work, rounds)``."""
        m = can.size
        EE = batchquery.EMPTY_E
        a0w = np.full(m, _NEG)
        a0e = np.full(m, EE, np.int64)
        a1w = np.full(m, _NEG)
        a1e = np.full(m, EE, np.int64)
        b0w = np.full(m, _NEG)
        b0e = np.full(m, EE, np.int64)
        b1w = np.full(m, _NEG)
        b1e = np.full(m, EE, np.int64)
        resw = np.empty(m)
        rese = np.empty(m, np.int64)
        act = np.arange(m)
        npar, nrep = self._npar, self._nrep
        work = 0
        rounds = 0
        while act.size:
            rounds += 1
            daA, dbA = da[act], db[act]
            eq = daA == dbA
            meet = eq & (npar[can[act]] == npar[cbn[act]])
            res = act[meet]
            if res.size:
                work += res.size
                r = nrep[npar[can[res]]]
                wA, eA = self._to_rep_vec(
                    can[res], r, a0w[res], a0e[res], a1w[res], a1e[res]
                )
                wB, eB = self._to_rep_vec(
                    cbn[res], r, b0w[res], b0e[res], b1w[res], b1e[res]
                )
                resw[res], rese[res] = _lexmax2(wA, eA, wB, eB)
            step = eq & ~meet
            adv_a = act[step | (daA > dbA)]
            adv_b = act[step | (dbA > daA)]
            if adv_a.size:
                work += adv_a.size
                self._advance_vec(can, a0w, a0e, a1w, a1e, adv_a)
                da[adv_a] -= 1
            if adv_b.size:
                work += adv_b.size
                self._advance_vec(cbn, b0w, b0e, b1w, b1e, adv_b)
                db[adv_b] -= 1
            act = act[~meet]
        return resw, rese, work, rounds

    def component_summary(self, v: int) -> ComponentSummary:
        """Aggregates of ``v``'s root cluster (O(lg n) root walk)."""
        r = self.root_id(v)
        return ComponentSummary(
            int(self._nsv[r]),
            int(self._nse[r]),
            float(self._nss[r]),
            (float(self._ndw[r]), int(self._ndx[r]), int(self._ndy[r])),
        )

    def rc_height(self, v: int) -> int:
        """Depth of vertex leaf ``v`` below its root (diagnostics)."""
        self._require_vertex(v)
        node = int(self._vl[v])
        par = self._npar
        h = 0
        p = int(par[node])
        while p != -1:
            node = p
            h += 1
            p = int(par[node])
        return h

    def level_statistics(self) -> list[int]:
        """Live vertex count per contraction level (diagnostics)."""
        return [n for n in self._Lnlive if n > 0]

    def roots(self) -> list[int]:
        """Node ids of all root clusters (diagnostics only)."""
        out = []
        for v in np.flatnonzero(self._cp != -1).tolist():
            n = int(self._cp[v])
            if self._npar[n] == -1 and self._nkids[n]:
                out.append(n)
        return out

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------

    def batch_update(
        self,
        links: list[InternalLink] | None = None,
        cuts: list[tuple[int, int, int]] | None = None,
    ) -> None:
        """Apply cuts then links in one change-propagation pass (same
        contract as ``RCForest.batch_update``)."""
        links = links or []
        cuts = cuts or []
        with self.cost.phase("rc-propagate", items=len(links) + len(cuts)):
            self._batch_update(links, cuts)

    def _batch_update(
        self, links: list[InternalLink], cuts: list[tuple[int, int, int]]
    ) -> None:
        dirty: set[int] = set()
        npar = self._npar
        nrep = self._nrep

        # Level-0 adjacency edits accumulate in per-vertex neighbour sets
        # and flush back to the sorted rows once per touched vertex -- also
        # on the error paths, which must leave exactly the object engine's
        # partially-applied adjacency state.
        cache: dict[int, set[int]] = {}
        # New edge-leaf column writes batch into one scatter (applied in
        # the ``finally`` so error paths keep object-engine parity: rows
        # for every processed link are written, later links never exist).
        lleaf: list[int] = []
        lla: list[int] = []
        llb: list[int] = []
        llw: list[float] = []
        lle: list[int] = []

        def nbrs(v: int) -> set[int]:
            s = cache.get(v)
            if s is None:
                d = int(self._Ld[0][v])
                s = set(self._Ln[0][v, :d].tolist()) if d > 0 else set()
                cache[v] = s
            return s

        try:
            for a, b, eid in cuts:
                leaf = self.eleaf.pop(eid, None)
                if leaf is None:
                    raise KeyError(f"edge {eid} is not in the forest")
                nbrs(a).discard(b)
                nbrs(b).discard(a)
                p = (a << 32) | b if a < b else (b << 32) | a
                entry = self._edge_cluster.get(p)
                if entry is not None and entry[0] == leaf:
                    del self._edge_cluster[p]
                pn = int(npar[leaf])
                if pn != -1:
                    self._mark_rebuild(int(nrep[pn]))
                    npar[leaf] = -1
                del self._edge_endpoints[eid]
                del self._edge_attrs[eid]
                dirty.add(a)
                dirty.add(b)

            if links:
                # Vectorized presence precheck: ``ensure_vertex`` is only
                # called for endpoints that might be new (same call order,
                # same error-path state as calling it per link).
                la_t, lb_t, lw_t, le_t = zip(
                    *((l.a, l.b, l.w, l.eid) for l in links)
                )
                vl = self._vl
                cap = self._cap
                laa = np.asarray(la_t, np.int64)
                lba = np.asarray(lb_t, np.int64)
                pa = np.zeros(laa.size, np.bool_)
                pb = np.zeros(lba.size, np.bool_)
                ina = (laa >= 0) & (laa < cap)
                inb = (lba >= 0) & (lba < cap)
                pa[ina] = vl[laa[ina]] != -1
                pb[inb] = vl[lba[inb]] != -1
                pa_t = pa.tolist()
                pb_t = pb.tolist()
            else:
                la_t = lb_t = lw_t = le_t = pa_t = pb_t = ()
            for a, b, w, eid, known_a, known_b in zip(
                la_t, lb_t, lw_t, le_t, pa_t, pb_t
            ):
                if not known_a and self.ensure_vertex(a):
                    dirty.add(a)
                if not known_b and self.ensure_vertex(b):
                    dirty.add(b)
                if eid in self.eleaf:
                    raise ValueError(f"edge id {eid} already present")
                if a == b or b in nbrs(a):
                    raise ValueError(
                        f"link ({a}, {b}) duplicates a forest edge"
                    )
                # Inline bump allocation (kind/eid columns are scattered
                # with the rest of the leaf row in the ``finally`` below).
                leaf = self._nn
                if leaf >= self._ncap:
                    self._alloc_nodes(max(2 * self._ncap, 256))
                self._nkids.append(None)
                self._nn = leaf + 1
                lleaf.append(leaf)
                lla.append(a)
                llb.append(b)
                llw.append(w)
                lle.append(eid)
                self.eleaf[eid] = leaf
                self._edge_cluster[(a << 32) | b if a < b else (b << 32) | a] = (
                    leaf,
                    0,
                )
                self._edge_endpoints[eid] = (a, b)
                self._edge_attrs[eid] = (w, eid)
                cache[a].add(b)
                nbrs(b).add(a)
                dirty.add(a)
                dirty.add(b)
        finally:
            if lleaf:
                lf = np.asarray(lleaf, np.int64)
                wv = np.asarray(llw)
                ea = np.asarray(lle, np.int64)
                self._nk[lf] = _K_EDGE
                self._neid[lf] = ea
                self._nnb[lf] = 2
                self._nb0[lf] = np.asarray(lla, np.int64)
                self._nb1[lf] = np.asarray(llb, np.int64)
                self._npw[lf] = wv
                self._npe[lf] = ea
                self._nnm[lf] = 2
                real = ea >= 0  # virtual ternarization links carry no length
                if real.any():
                    lr = lf[real]
                    wr = wv[real]
                    self._nps[lr] = wr
                    self._npc[lr] = 1
                    self._nse[lr] = 1
                    self._nss[lr] = wr
            if cache:
                # Vectorized flush: ragged-scatter the neighbour sets into
                # a padded matrix and row-sort it (_PAD sorts last, so each
                # row is the sorted members followed by padding -- exactly
                # the per-vertex ``sorted`` flush).
                wmax = max(map(len, cache.values()))
                if wmax > self._width:
                    self._ensure_width(wmax)
                nc = len(cache)
                cvs = np.fromiter(cache.keys(), np.int64, nc)
                dls = np.fromiter(map(len, cache.values()), np.int64, nc)
                total = int(dls.sum())
                mat = np.full((nc, self._width), _PAD, np.int64)
                if total:
                    flat = np.fromiter(
                        chain.from_iterable(cache.values()), np.int64, total
                    )
                    starts = np.cumsum(dls) - dls
                    ri = np.repeat(np.arange(nc), dls)
                    ci = np.arange(total) - np.repeat(starts, dls)
                    mat[ri, ci] = flat
                    mat.sort(axis=1)
                self._Ln[0][cvs] = mat
                self._Ld[0][cvs] = dls

        ell = len(links) + len(cuts)
        if ell:
            # Batch pre-processing (semisort of endpoints into the dirty set).
            self.cost.add(work=ell, span=log2ceil(max(ell, 2)))
        self._propagate(dirty)

    # ------------------------------------------------------------------
    # Change propagation
    # ------------------------------------------------------------------

    def _bits_vec(self, verts: np.ndarray, round_: int) -> np.ndarray:
        """Vectorized splitmix64 coin flips, exactly ``HashBits.bit``."""
        with np.errstate(over="ignore"):
            x = verts.astype(_U64) * _FNV + _U64(round_)
            x ^= self._seed64
            x += _SM_GAMMA
            x = (x ^ (x >> _U64(30))) * _SM_M1
            x = (x ^ (x >> _U64(27))) * _SM_M2
            x ^= x >> _U64(31)
        return (x & _U64(1)).astype(np.int8)

    def _unique_ids(self, parts) -> np.ndarray:
        """Sorted unique union of vertex-id arrays via the scratch mask
        (equivalent to ``np.unique(np.concatenate(parts))`` but without
        the sort; ids are < ``self._cap`` by construction)."""
        mask = self._umask
        for p in parts:
            mask[p] = True
        out = np.flatnonzero(mask)
        mask[out] = False
        return out

    def _mark_rebuild(self, v: int) -> None:
        self._pending_rebuild.add(v)

    def _propagate(self, dirty0: set[int]) -> None:
        frontier: set[int] | np.ndarray = dirty0
        i = 0
        tw = 0
        ts = 0
        dense_min = self.DENSE_THRESHOLD
        while len(frontier):
            if i >= _MAX_LEVELS:
                raise RuntimeError("contraction did not converge (cycle in input?)")
            self._ensure_level(i + 1)
            if len(frontier) >= dense_min:
                if isinstance(frontier, set):
                    frontier = np.fromiter(frontier, np.int64, len(frontier))
                frontier, nc, nt = self._level_dense(i, frontier)
            else:
                if not isinstance(frontier, set):
                    frontier = set(frontier.tolist())
                frontier, nc, nt = self._level_sparse(i, frontier)
            tw += nc + nt + 1
            ts += log2ceil(max(nc, 2))
            i += 1

        # Trim empty trailing levels so num_levels reflects the contraction.
        # The popped blocks are already fully cleared, so they are parked
        # for reuse instead of being freed and re-zeroed next propagation.
        while len(self._Ld) > 1 and self._Lnlive[-1] == 0 and self._Lndec[-1] == 0:
            self._Lspare.append(
                (
                    self._Ld.pop(),
                    self._Ln.pop(),
                    self._Lt.pop(),
                    self._La.pop(),
                    self._Lb.pop(),
                )
            )
            self._Lnlive.pop()
            self._Lndec.pop()
        self.num_levels = len(self._Ld)
        if tw or ts:
            self.cost.add(work=tw, span=ts)

        # With all levels settled, rebuild dirty clusters bottom-up.
        self._drain_rebuilds()

    # -- decision side effects (shared by both level paths) ---------------

    def _undo_decision(self, i: int, v: int, ot: int, oa: int, ob: int) -> None:
        if ot == _T_RAKE:
            d = self._rakes_on[oa]
            if d.get(v) == i:
                del d[v]
            self._mark_rebuild(oa)
        elif ot == _T_COMP:
            p = (oa << 32) | ob
            node = int(self._cp[v])
            entry = self._edge_cluster.get(p)
            if node != -1 and entry is not None and entry == (node, i):
                del self._edge_cluster[p]
                pn = int(self._npar[node])
                if pn != -1:
                    self._mark_rebuild(int(self._nrep[pn]))

    def _apply_decision(self, i: int, v: int, nt: int, na: int, nb: int) -> None:
        self._top[v] = i
        self._mark_rebuild(v)
        if nt == _T_RAKE:
            self._rakes_on[na][v] = i
            self._mark_rebuild(na)
        elif nt == _T_COMP:
            node = int(self._cp[v])
            if node == -1:
                node = self._new_node(_K_BINARY, rep=v)
                self._cp[v] = node
            p = (na << 32) | nb
            old = self._edge_cluster.get(p)
            if old is not None and old[0] != node:
                pn = int(self._npar[old[0]])
                if pn != -1:
                    self._mark_rebuild(int(self._nrep[pn]))
            self._edge_cluster[p] = (node, i)

    # -- scalar level pass -------------------------------------------------

    def _decide_scalar(self, i: int, v: int, d: int) -> tuple[int, int, int]:
        deg = self._Ld[i]
        row = self._Ln[i][v]
        if d == 0:
            return (_T_FINAL, -1, -1)
        if d == 1:
            u = int(row[0])
            if deg[u] == 1 and v > u:
                return (_T_STAY, -1, -1)  # two-vertex tree: smaller id rakes
            return (_T_RAKE, u, -1)
        if d == 2:
            u = int(row[0])
            w = int(row[1])
            if deg[u] < 2 or deg[w] < 2:
                return (_T_STAY, -1, -1)
            bit = self._bits.bit
            if bit(v, i) != 1:
                return (_T_STAY, -1, -1)
            if self.compress_rule == "mr":
                ok = bit(u, i) == 0 and bit(w, i) == 0
            else:
                ok = all(
                    bit(x, i) == 0 for x in (u, w) if x > v and deg[x] == 2
                )
            if ok:
                return (_T_COMP, u, w)
            return (_T_STAY, -1, -1)
        return (_T_STAY, -1, -1)

    def _level_sparse(self, i: int, frontier: set[int]):
        deg = self._Ld[i]
        nbr = self._Ln[i]
        tag = self._Lt[i]
        da = self._La[i]
        db = self._Lb[i]
        top = self._top

        cands: set[int] = set()
        for v in frontier:
            cands.add(v)
            d = int(deg[v])
            if d > 0:
                cands.update(nbr[v, :d].tolist())
        dec_changed: set[int] = set()
        for v in cands:
            ot = int(tag[v])
            d = int(deg[v])
            if d < 0:
                nt, na, nb = -1, -1, -1
            else:
                nt, na, nb = self._decide_scalar(i, v, d)
            if nt == ot and na == da[v] and nb == db[v]:
                continue
            if ot != -1:
                self._undo_decision(i, v, ot, int(da[v]), int(db[v]))
            else:
                self._Lndec[i] += 1
            if nt == -1:
                self._Lndec[i] -= 1
            tag[v] = nt
            da[v] = na
            db[v] = nb
            if nt >= _T_FINAL:
                self._apply_decision(i, v, nt, na, nb)
            else:
                # v no longer contracts here; a higher level will claim it.
                if top[v] == i:
                    top[v] = -1
            dec_changed.add(v)

        touch: set[int] = set()
        for v in frontier | dec_changed:
            touch.add(v)
            d = int(deg[v])
            if d < 0:
                continue
            for y in nbr[v, :d].tolist():
                ty = tag[y]
                if ty == _T_STAY:
                    touch.add(y)
                elif ty == _T_COMP:
                    ay = int(da[y])
                    touch.add(int(db[y]) if ay == v else ay)

        degN = self._Ld[i + 1]
        nbrN = self._Ln[i + 1]
        next_frontier: set[int] = set()
        for x in touch:
            d = int(deg[x])
            alive = d >= 0 and tag[x] == _T_STAY
            if alive:
                na_set: set[int] = set()
                for y in nbr[x, :d].tolist():
                    ty = tag[y]
                    if ty == _T_STAY:
                        na_set.add(y)
                    elif ty == _T_COMP:
                        ay = int(da[y])
                        na_set.add(int(db[y]) if ay == x else ay)
                dN = int(degN[x])
                same = dN == len(na_set) and all(
                    y in na_set for y in nbrN[x, :dN].tolist()
                )
                if not same:
                    srt = sorted(na_set)
                    row = nbrN[x]
                    row[: len(srt)] = srt
                    row[len(srt) :] = _PAD
                    if dN < 0:
                        self._Lnlive[i + 1] += 1
                    degN[x] = len(srt)
                    next_frontier.add(x)
            else:
                if degN[x] >= 0:
                    degN[x] = -1
                    nbrN[x] = _PAD
                    self._Lnlive[i + 1] -= 1
                    next_frontier.add(x)
        return next_frontier, len(cands), len(touch)

    # -- vectorized level pass ---------------------------------------------

    def _level_dense(self, i: int, F: np.ndarray):
        deg = self._Ld[i]
        nbr = self._Ln[i]
        tag = self._Lt[i]
        da = self._La[i]
        db = self._Lb[i]

        presF = deg[F] >= 0
        if presF.any():
            rows = nbr[F[presF]]
            cands = self._unique_ids((F, rows[rows < _PAD]))
        else:
            cands = self._unique_ids((F,))
        ncands = cands.size
        pres = deg[cands] >= 0
        PV = cands[pres]

        # -1 defaults only survive on absent candidates; present rows are
        # fully overwritten below, so scatter the default instead of
        # filling whole arrays.
        ntag = np.empty(ncands, np.int8)
        nda = np.empty(ncands, np.int64)
        ndb = np.empty(ncands, np.int64)
        absent = np.flatnonzero(~pres)
        if absent.size:
            ntag[absent] = -1
            nda[absent] = -1
            ndb[absent] = -1
        if PV.size:
            d = deg[PV]
            n0 = np.where(d >= 1, nbr[PV, 0], 0)
            n1 = np.where(d >= 2, nbr[PV, 1], 0)
            t = np.zeros(PV.size, np.int8)  # STAY by default
            a_ = np.full(PV.size, -1, np.int64)
            b_ = np.full(PV.size, -1, np.int64)
            t[d == 0] = _T_FINAL
            m1 = d == 1
            if m1.any():
                idx = np.flatnonzero(m1)
                u = n0[idx]
                rake = ~((deg[u] == 1) & (PV[idx] > u))
                ridx = idx[rake]
                t[ridx] = _T_RAKE
                a_[ridx] = u[rake]
            m2 = d == 2
            if m2.any():
                idx = np.flatnonzero(m2)
                v2 = PV[idx]
                u = n0[idx]
                w = n1[idx]
                elig = (deg[u] >= 2) & (deg[w] >= 2)
                elig &= self._bits_vec(v2, i) == 1
                if self.compress_rule == "mr":
                    ok = (self._bits_vec(u, i) == 0) & (
                        self._bits_vec(w, i) == 0
                    )
                else:
                    ok = (
                        ~((u > v2) & (deg[u] == 2))
                        | (self._bits_vec(u, i) == 0)
                    ) & (
                        ~((w > v2) & (deg[w] == 2))
                        | (self._bits_vec(w, i) == 0)
                    )
                comp = elig & ok
                cidx = idx[comp]
                t[cidx] = _T_COMP
                a_[cidx] = u[comp]
                b_[cidx] = w[comp]
            ntag[pres] = t
            nda[pres] = a_
            ndb[pres] = b_

        ot = tag[cands]
        oa = da[cands]
        ob = db[cands]
        ch = (ot != ntag) | (oa != nda) | (ob != ndb)
        changed = cands[ch]
        if changed.size:
            self._Lndec[i] += int(np.count_nonzero((ot == -1) & ch)) - int(
                np.count_nonzero((ntag == -1) & ch)
            )
            ntc = ntag[ch]
            contracting = changed[ntc >= _T_FINAL]
            if contracting.size:
                self._top[contracting] = i
                self._pending_rebuild.update(contracting.tolist())
            clearing = changed[ntc <= _T_STAY]
            if clearing.size:
                sel = clearing[self._top[clearing] == i]
                self._top[sel] = -1
            # Dict-index side effects (undo old / apply new) stay scalar.
            # Only RAKE/COMP transitions have any: restrict the loop to
            # those rows (STAY/FINAL/absent flips are pure tag scatters).
            otc = ot[ch]
            sfx = (otc >= _T_RAKE) | (ntc >= _T_RAKE)
            vs_l = changed[sfx].tolist()
            ot_l = otc[sfx].tolist()
            oa_l = oa[ch][sfx].tolist()
            ob_l = ob[ch][sfx].tolist()
            nt_l = ntc[sfx].tolist()
            na_l = nda[ch][sfx].tolist()
            nb_l = ndb[ch][sfx].tolist()
            marks = self._pending_rebuild
            ro = self._rakes_on
            ec = self._edge_cluster
            cp = self._cp
            npar = self._npar
            nrep = self._nrep
            for k, v in enumerate(vs_l):
                otk = ot_l[k]
                if otk == _T_RAKE:
                    tgt = oa_l[k]
                    dd = ro[tgt]
                    if dd.get(v) == i:
                        del dd[v]
                    marks.add(tgt)
                elif otk == _T_COMP:
                    p = (oa_l[k] << 32) | ob_l[k]
                    node = int(cp[v])
                    entry = ec.get(p)
                    if node != -1 and entry is not None and entry == (node, i):
                        del ec[p]
                        pn = int(npar[node])
                        if pn != -1:
                            marks.add(int(nrep[pn]))
                ntk = nt_l[k]
                if ntk == _T_RAKE:
                    tgt = na_l[k]
                    ro[tgt][v] = i
                    marks.add(tgt)
                elif ntk == _T_COMP:
                    node = int(cp[v])
                    if node == -1:
                        node = self._new_node(_K_BINARY, rep=v)
                        cp[v] = node
                        npar = self._npar  # _new_node may reallocate
                        nrep = self._nrep
                    p = (na_l[k] << 32) | nb_l[k]
                    old = ec.get(p)
                    if old is not None and old[0] != node:
                        pn = int(npar[old[0]])
                        if pn != -1:
                            marks.add(int(nrep[pn]))
                    ec[p] = (node, i)
            tag[changed] = ntc
            da[changed] = nda[ch]
            db[changed] = ndb[ch]

        # Push adjacency diffs to level i + 1.  ``F`` is always duplicate
        # free (a set image or a disjoint changed/removed concatenation),
        # so T0 can skip deduplication: downstream consumers either
        # tolerate repeats (gathers) or re-unique (touch).
        T0 = np.concatenate((F, changed)) if changed.size else F
        TP = T0[deg[T0] >= 0]
        if TP.size:
            rowsT = nbr[TP]
            valid = rowsT < _PAD
            safe = np.where(valid, rowsT, 0)
            tN = tag[safe]
            sN = valid & (tN == _T_STAY)
            cN = valid & (tN == _T_COMP)
            parts = [T0, rowsT[sN]]
            if cN.any():
                yc = safe[cN]
                ow = np.broadcast_to(TP[:, None], rowsT.shape)[cN]
                parts.append(np.where(da[yc] == ow, db[yc], da[yc]))
            touch = self._unique_ids(parts)
        else:
            touch = T0 if T0 is F else self._unique_ids((T0,))
        ntouch = touch.size

        degN = self._Ld[i + 1]
        nbrN = self._Ln[i + 1]
        aliveM = (deg[touch] >= 0) & (tag[touch] == _T_STAY)
        A = touch[aliveM]
        changedA = np.empty(0, np.int64)
        if A.size:
            rowsA = nbr[A]
            valid = rowsA < _PAD
            safe = np.where(valid, rowsA, 0)
            tA = tag[safe]
            ownersA = np.broadcast_to(A[:, None], rowsA.shape)
            partner = np.where(da[safe] == ownersA, db[safe], da[safe])
            img = np.where(
                tA == _T_STAY, safe, np.where(tA == _T_COMP, partner, _PAD)
            )
            img = np.where(valid, img, _PAD)
            img = np.sort(img, axis=1)
            ndeg = (img < _PAD).sum(axis=1)
            eq = (degN[A] == ndeg) & (nbrN[A] == img).all(axis=1)
            changedA = A[~eq]
            if changedA.size:
                newrows = img[~eq]
                self._Lnlive[i + 1] += int(np.count_nonzero(degN[changedA] < 0))
                degN[changedA] = ndeg[~eq]
                nbrN[changedA] = newrows
        dead = touch[~aliveM]
        removed = np.empty(0, np.int64)
        if dead.size:
            removed = dead[degN[dead] >= 0]
            if removed.size:
                degN[removed] = -1
                nbrN[removed] = _PAD
                self._Lnlive[i + 1] -= removed.size
        return np.concatenate((changedA, removed)), int(ncands), int(ntouch)

    # ------------------------------------------------------------------
    # Cluster rebuilds
    # ------------------------------------------------------------------

    def _drain_rebuilds(self) -> None:
        # The object engine drains a single heap of (top level, vertex),
        # deduplicating marks against in-heap entries; marks travel to the
        # contraction level of their target, which is never below the level
        # being processed (stale same-level parents are always already
        # marked, see tests).  We therefore process levels in ascending
        # order and, within a level, replicate the heap's execution
        # multiset exactly (:meth:`_process_level`).
        if not self._pending_rebuild:
            return
        top = self._top
        buckets: dict[int, set[int]] = {}
        for v in self._pending_rebuild:
            buckets.setdefault(int(top[v]), set()).add(v)
        self._pending_rebuild.clear()
        self._dbuckets = buckets
        work = 0
        try:
            while buckets:
                lvl = min(buckets)
                work += self._process_level(lvl, sorted(buckets.pop(lvl)))
        finally:
            self._dbuckets = None
        if work:
            self.cost.add(work=work)

    def _drain_release(self, w: int) -> None:
        """Route one rebuild mark raised while draining level ``_dlvl``.

        Future-level marks go to their bucket (sets dedup, matching the
        object engine's in-heap dedup).  Same-level marks follow the heap
        semantics: swallowed while the target is still pending, otherwise
        re-enqueued for (re-)execution after the marker.
        """
        t = int(self._top[w])
        if t != self._dlvl:
            self._dbuckets.setdefault(t, set()).add(w)
        elif w not in self._din_heap and w not in self._dremaining:
            heapq.heappush(self._dH, w)
            self._din_heap.add(w)

    def _process_level(self, lvl: int, B: list[int]) -> int:
        """Rebuild one level's pending set with the exact execution
        multiset of the object engine's heap drain.

        Same-level rebuilds only read strictly-lower-level cluster state,
        so they commute; and re-executing an already-rebuilt vertex is
        idempotent (same state, so its signature cannot change again) and
        reduces to charging ``len(children)``.  That makes the sequential
        heap replayable: run the batch, then release each rebuild's marks
        at its position in the sorted execution order.
        """
        self._dlvl = lvl
        H: list[int] = []
        in_heap: set[int] = set()
        self._dH = H
        self._din_heap = in_heap
        remaining = set(B)
        self._dremaining = remaining
        executed: set[int] = set()
        work = 0

        by_marker: dict[int, list[int]] | None = None
        if len(B) >= self.DENSE_THRESHOLD:
            pairs: list[tuple[int, int]] = []
            work += self._rebuild_dense(lvl, B, pairs)
            executed.update(B)
            by_marker = {}
            for m, t in pairs:
                by_marker.setdefault(m, []).append(t)

        si = 0
        nb = len(B)
        while si < nb or H:
            if H and (si >= nb or H[0] < B[si]):
                w = heapq.heappop(H)
                in_heap.discard(w)
                if w in executed:
                    # Idempotent re-execution: charge, no state change.
                    work += len(self._nkids[int(self._cp[w])])
                else:
                    executed.add(w)
                    work += self._rebuild_scalar(w)
            else:
                v = B[si]
                si += 1
                remaining.discard(v)
                if by_marker is None:
                    executed.add(v)
                    work += self._rebuild_scalar(v)
                else:
                    for t in by_marker.get(v, ()):
                        self._drain_release(t)
        return work

    def _node_sig(self, n: int) -> tuple:
        """The parent-visible signature (mirrors ``_aug_signature``)."""
        k = int(self._nk[n])
        nb = int(self._nnb[n])
        if nb == 0:
            bnd: tuple = ()
        elif nb == 1:
            bnd = (int(self._nb0[n]),)
        else:
            bnd = (int(self._nb0[n]), int(self._nb1[n]))
        nm = int(self._nnm[n])
        if nm == 0:
            maxd: tuple = ()
        elif nm == 1:
            maxd = ((float(self._n0w[n]), int(self._n0v[n])),)
        else:
            maxd = (
                (float(self._n0w[n]), int(self._n0v[n])),
                (float(self._n1w[n]), int(self._n1v[n])),
            )
        return (
            k,
            bnd,
            float(self._npw[n]),
            int(self._npe[n]),
            float(self._nps[n]),
            int(self._npc[n]),
            int(self._nsv[n]),
            int(self._nse[n]),
            float(self._nss[n]),
            maxd,
            (float(self._ndw[n]), int(self._ndx[n]), int(self._ndy[n])),
        )

    def _rake_fold(self, v: int, kids: list[int]):
        """Fold the rake group around ``v`` (same order/association as the
        object engine's ``_rebuild_comp`` loop)."""
        mw, mv = 0.0, v
        gdw, gdx, gdy = 0.0, v, v
        gv, ge, gs = 1, 0, 0.0
        ro = self._rakes_on[v]
        if ro:
            cp = self._cp
            for w in sorted(ro):
                r = int(cp[w])
                kids.append(r)
                mdw = float(self._n0w[r])
                mdv = int(self._n0v[r])
                rdw = float(self._ndw[r])
                rdx = int(self._ndx[r])
                rdy = int(self._ndy[r])
                if (rdw, rdx, rdy) > (gdw, gdx, gdy):
                    gdw, gdx, gdy = rdw, rdx, rdy
                cw = mw + mdw
                if (cw, mv, mdv) > (gdw, gdx, gdy):
                    gdw, gdx, gdy = cw, mv, mdv
                if (mdw, mdv) > (mw, mv):
                    mw, mv = mdw, mdv
                gv += int(self._nsv[r])
                ge += int(self._nse[r])
                gs = gs + float(self._nss[r])
        return mw, mv, gdw, gdx, gdy, gv, ge, gs

    def _rebuild_scalar(self, v: int) -> int:
        i = int(self._top[v])
        t = int(self._Lt[i][v])
        if t < _T_FINAL:  # pragma: no cover - defensive
            raise AssertionError(f"rebuild of non-contracting vertex {v}: {t}")
        node = int(self._cp[v])
        if node == -1:
            node = self._new_node(_K_BINARY, rep=v)
            self._cp[v] = node
        old_sig = self._node_sig(node)
        old_children = self._nkids[node]

        kids: list[int] = [int(self._vl[v])]
        mw, mv, gdw, gdx, gdy, gv, ge, gs = self._rake_fold(v, kids)

        if t == _T_RAKE:
            u = int(self._La[i][v])
            e = self._edge_cluster[(v << 32) | u if v < u else (u << 32) | v][0]
            kids.append(e)
            if int(self._nb0[e]) == u:
                euw, euv = float(self._n0w[e]), int(self._n0v[e])
                evw, evv = float(self._n1w[e]), int(self._n1v[e])
            else:
                euw, euv = float(self._n1w[e]), int(self._n1v[e])
                evw, evv = float(self._n0w[e]), int(self._n0v[e])
            eps = float(self._nps[e])
            cw = eps + mw
            if (euw, euv) >= (cw, mv):
                m0w, m0v = euw, euv
            else:
                m0w, m0v = cw, mv
            dw = float(self._ndw[e])
            dx = int(self._ndx[e])
            dy = int(self._ndy[e])
            if (gdw, gdx, gdy) > (dw, dx, dy):
                dw, dx, dy = gdw, gdx, gdy
            c3 = evw + mw
            if (c3, evv, mv) > (dw, dx, dy):
                dw, dx, dy = c3, evv, mv
            self._nk[node] = _K_UNARY
            self._nnb[node] = 1
            self._nb0[node] = u
            self._nb1[node] = -1
            self._ne1[node] = e
            self._ne2[node] = -1
            self._npw[node] = _NEG
            self._npe[node] = -1
            self._nps[node] = 0.0
            self._npc[node] = 0
            self._nnm[node] = 1
            self._n0w[node] = m0w
            self._n0v[node] = m0v
            self._n1w[node] = _NEG
            self._n1v[node] = -1
            self._ndw[node] = dw
            self._ndx[node] = dx
            self._ndy[node] = dy
            self._nsv[node] = gv + int(self._nsv[e])
            self._nse[node] = ge + int(self._nse[e])
            self._nss[node] = gs + float(self._nss[e])
        elif t == _T_COMP:
            u = int(self._La[i][v])
            w = int(self._Lb[i][v])
            e1 = self._edge_cluster[(u << 32) | v if u < v else (v << 32) | u][0]
            e2 = self._edge_cluster[(v << 32) | w if v < w else (w << 32) | v][0]
            kids.append(e1)
            kids.append(e2)
            if int(self._nb0[e1]) == u:
                e1uw, e1uv = float(self._n0w[e1]), int(self._n0v[e1])
                e1vw, e1vv = float(self._n1w[e1]), int(self._n1v[e1])
            else:
                e1uw, e1uv = float(self._n1w[e1]), int(self._n1v[e1])
                e1vw, e1vv = float(self._n0w[e1]), int(self._n0v[e1])
            if int(self._nb0[e2]) == w:
                e2ww, e2wv = float(self._n0w[e2]), int(self._n0v[e2])
                e2vw, e2vv = float(self._n1w[e2]), int(self._n1v[e2])
            else:
                e2ww, e2wv = float(self._n1w[e2]), int(self._n1v[e2])
                e2vw, e2vv = float(self._n0w[e2]), int(self._n0v[e2])
            p1w, p1e = float(self._npw[e1]), int(self._npe[e1])
            p2w, p2e = float(self._npw[e2]), int(self._npe[e2])
            p1s, p2s = float(self._nps[e1]), float(self._nps[e2])
            self._nk[node] = _K_BINARY
            self._nnb[node] = 2
            self._nb0[node] = u
            self._nb1[node] = w
            self._ne1[node] = e1
            self._ne2[node] = e2
            if (p1w, p1e) >= (p2w, p2e):
                self._npw[node] = p1w
                self._npe[node] = p1e
            else:
                self._npw[node] = p2w
                self._npe[node] = p2e
            self._nps[node] = p1s + p2s
            self._npc[node] = int(self._npc[e1]) + int(self._npc[e2])
            if (mw, mv) >= (e2vw, e2vv):
                f1w, f1v = mw, mv
            else:
                f1w, f1v = e2vw, e2vv
            if (mw, mv) >= (e1vw, e1vv):
                f2w, f2v = mw, mv
            else:
                f2w, f2v = e1vw, e1vv
            c1 = p1s + f1w
            if (e1uw, e1uv) >= (c1, f1v):
                m0w, m0v = e1uw, e1uv
            else:
                m0w, m0v = c1, f1v
            c2 = p2s + f2w
            if (e2ww, e2wv) >= (c2, f2v):
                m1w, m1v = e2ww, e2wv
            else:
                m1w, m1v = c2, f2v
            self._nnm[node] = 2
            self._n0w[node] = m0w
            self._n0v[node] = m0v
            self._n1w[node] = m1w
            self._n1v[node] = m1v
            dw = float(self._ndw[e1])
            dx = int(self._ndx[e1])
            dy = int(self._ndy[e1])
            for cand in (
                (float(self._ndw[e2]), int(self._ndx[e2]), int(self._ndy[e2])),
                (gdw, gdx, gdy),
                (e1vw + mw, e1vv, mv),
                (e2vw + mw, e2vv, mv),
                (e1vw + e2vw, e1vv, e2vv),
            ):
                if cand > (dw, dx, dy):
                    dw, dx, dy = cand
            self._ndw[node] = dw
            self._ndx[node] = dx
            self._ndy[node] = dy
            self._nsv[node] = (gv + int(self._nsv[e1])) + int(self._nsv[e2])
            self._nse[node] = (ge + int(self._nse[e1])) + int(self._nse[e2])
            self._nss[node] = (gs + float(self._nss[e1])) + float(self._nss[e2])
        else:  # finalize: the whole component has raked onto v
            self._nk[node] = _K_NULLARY
            self._nnb[node] = 0
            self._nb0[node] = -1
            self._nb1[node] = -1
            self._ne1[node] = -1
            self._ne2[node] = -1
            self._npw[node] = _NEG
            self._npe[node] = -1
            self._nps[node] = 0.0
            self._npc[node] = 0
            self._nnm[node] = 0
            self._n0w[node] = _NEG
            self._n0v[node] = -1
            self._n1w[node] = _NEG
            self._n1v[node] = -1
            self._ndw[node] = gdw
            self._ndx[node] = gdx
            self._ndy[node] = gdy
            self._nsv[node] = gv
            self._nse[node] = ge
            self._nss[node] = gs

        self._nlevel[node] = i
        npar = self._npar
        if old_children:
            for c in old_children:
                if c not in kids and npar[c] == node:
                    npar[c] = -1
        self._nkids[node] = kids
        for c in kids:
            npar[c] = node

        if self._node_sig(node) != old_sig:
            pn = int(npar[node])
            if pn != -1:
                self._drain_release(int(self._nrep[pn]))
        return len(kids)

    def _rebuild_dense(
        self, lvl: int, vs: list[int], pairs: list[tuple[int, int]]
    ) -> int:
        cp = self._cp
        ec = self._edge_cluster
        va = np.asarray(vs, np.int64)
        n = va.size
        tags = self._Lt[lvl][va]
        dal = self._La[lvl][va]
        dbl = self._Lb[lvl][va]
        vleafs = self._vl[va].tolist()

        # Batch-allocate composite nodes for vertices that lack one.  Node
        # ids are purely internal (queries and snapshots only see reps,
        # eids and aggregate values), so block allocation is free to pick
        # different ids than per-row ``_new_node`` calls would.
        cpa = cp[va]
        miss = np.flatnonzero(cpa == -1)
        if miss.size:
            base = self._nn
            need = base + miss.size
            while need > self._ncap:
                self._alloc_nodes(max(2 * self._ncap, 256))
            newids = np.arange(base, need, dtype=np.int64)
            self._nk[newids] = _K_BINARY
            self._nrep[newids] = va[miss]
            self._nkids.extend([None] * miss.size)
            self._nn = need
            cpa[miss] = newids
            cp[va[miss]] = newids
        nodes = cpa
        nl0 = nodes.tolist()

        e1 = np.zeros(n, np.int64)
        e2 = np.zeros(n, np.int64)
        mw = np.zeros(n)
        mv = va.copy()
        gdw = np.zeros(n)
        gdx = va.copy()
        gdy = va.copy()
        gv = np.ones(n, np.int64)
        ge = np.zeros(n, np.int64)
        gs = np.zeros(n)
        ro = self._rakes_on
        nkids = self._nkids
        olds: list[list[int] | None] = [nkids[x] for x in nl0]
        kids_all: list[list[int]] = [[vf] for vf in vleafs]
        # One- and two-raker groups (the overwhelmingly common cases) fold
        # vectorized below; larger groups replay the object engine's loop.
        single_k: list[int] = []
        single_rw: list[int] = []
        dbl_k: list[int] = []
        dbl_rw1: list[int] = []
        dbl_rw2: list[int] = []
        multi_k: list[int] = []
        for k, v in enumerate(vs):
            rv = ro[v]
            if rv:
                nr = len(rv)
                if nr == 1:
                    (rw,) = rv
                    single_k.append(k)
                    single_rw.append(rw)
                elif nr == 2:
                    rw1, rw2 = sorted(rv)
                    dbl_k.append(k)
                    dbl_rw1.append(rw1)
                    dbl_rw2.append(rw2)
                else:
                    multi_k.append(k)
        if single_k:
            for k, r in zip(single_k, cp[np.asarray(single_rw, np.int64)].tolist()):
                kids_all[k].append(r)
        sr2a = sr2b = None
        if dbl_k:
            sr2a = cp[np.asarray(dbl_rw1, np.int64)]
            sr2b = cp[np.asarray(dbl_rw2, np.int64)]
            for k, ra, rb in zip(dbl_k, sr2a.tolist(), sr2b.tolist()):
                kids = kids_all[k]
                kids.append(ra)
                kids.append(rb)
        for k in multi_k:
            (
                mw[k],
                mv[k],
                gdw[k],
                gdx[k],
                gdy[k],
                gv[k],
                ge[k],
                gs[k],
            ) = self._rake_fold(vs[k], kids_all[k])
        ec_get = ec.__getitem__
        rka = np.flatnonzero(tags == _T_RAKE)
        if rka.size:
            vR = va[rka]
            uR = dal[rka]
            pk = np.where(vR < uR, (vR << 32) | uR, (uR << 32) | vR)
            eks = [t[0] for t in map(ec_get, pk.tolist())]
            for k, ek in zip(rka.tolist(), eks):
                kids_all[k].append(ek)
            e1[rka] = eks
        cka = np.flatnonzero(tags == _T_COMP)
        if cka.size:
            vC = va[cka]
            uC0 = dal[cka]
            wC0 = dbl[cka]
            pk1 = np.where(uC0 < vC, (uC0 << 32) | vC, (vC << 32) | uC0)
            pk2 = np.where(vC < wC0, (vC << 32) | wC0, (wC0 << 32) | vC)
            ek1s = [t[0] for t in map(ec_get, pk1.tolist())]
            ek2s = [t[0] for t in map(ec_get, pk2.tolist())]
            for k, eka, ekb in zip(cka.tolist(), ek1s, ek2s):
                kids = kids_all[k]
                kids.append(eka)
                kids.append(ekb)
            e1[cka] = ek1s
            e2[cka] = ek2s
        lens = list(map(len, kids_all))
        flat_kids = list(chain.from_iterable(kids_all))
        work = len(flat_kids)

        def fold_step(m1, m2, g1, g2, g3, sr):
            # One vectorized ``_rake_fold`` iteration: same comparisons,
            # same first-wins tie handling, same float association.
            mdw = self._n0w[sr]
            mdv = self._n0v[sr]
            g1, g2, g3 = _lexmax3(
                g1, g2, g3, self._ndw[sr], self._ndx[sr], self._ndy[sr]
            )
            g1, g2, g3 = _lexmax3(g1, g2, g3, m1 + mdw, m2, mdv)
            m1, m2 = _lexmax2(m1, m2, mdw, mdv)
            return m1, m2, g1, g2, g3

        if single_k:
            sk = np.asarray(single_k, np.intp)
            sr = cp[np.asarray(single_rw, np.int64)]
            vsk = va[sk]
            zero = np.zeros(sk.size)
            m1, m2, g1, g2, g3 = fold_step(zero, vsk, zero, vsk, vsk, sr)
            mw[sk] = m1
            mv[sk] = m2
            gdw[sk] = g1
            gdx[sk] = g2
            gdy[sk] = g3
            gv[sk] = 1 + self._nsv[sr]
            ge[sk] = self._nse[sr]
            gs[sk] = 0.0 + self._nss[sr]
        if dbl_k:
            dk = np.asarray(dbl_k, np.intp)
            vdk = va[dk]
            zero = np.zeros(dk.size)
            m1, m2, g1, g2, g3 = fold_step(zero, vdk, zero, vdk, vdk, sr2a)
            m1, m2, g1, g2, g3 = fold_step(m1, m2, g1, g2, g3, sr2b)
            mw[dk] = m1
            mv[dk] = m2
            gdw[dk] = g1
            gdx[dk] = g2
            gdy[dk] = g3
            gv[dk] = (1 + self._nsv[sr2a]) + self._nsv[sr2b]
            ge[dk] = self._nse[sr2a] + self._nse[sr2b]
            gs[dk] = (0.0 + self._nss[sr2a]) + self._nss[sr2b]

        # Old parent-visible signature columns (gathered after all node
        # allocations so array references are stable).
        o_k = self._nk[nodes]
        o_nb = self._nnb[nodes]
        o_b0 = self._nb0[nodes]
        o_b1 = self._nb1[nodes]
        o_pw = self._npw[nodes]
        o_pe = self._npe[nodes]
        o_ps = self._nps[nodes]
        o_pc = self._npc[nodes]
        o_sv = self._nsv[nodes]
        o_se = self._nse[nodes]
        o_ss = self._nss[nodes]
        o_nm = self._nnm[nodes]
        o_0w = self._n0w[nodes]
        o_0v = self._n0v[nodes]
        o_1w = self._n1w[nodes]
        o_1v = self._n1v[nodes]
        o_dw = self._ndw[nodes]
        o_dx = self._ndx[nodes]
        o_dy = self._ndy[nodes]

        # Columns whose defaults only matter for FINAL (and partly RAKE)
        # rows are allocated uninitialised; the tag branches below write
        # every row they own, and the defaults are scattered onto the
        # small FINAL/RAKE index sets instead of filling whole arrays.
        n_kind = np.empty(n, np.int8)
        n_nb = np.zeros(n, np.int8)
        n_b0 = np.empty(n, np.int64)
        n_b1 = np.empty(n, np.int64)
        n_pw = np.empty(n)
        n_pe = np.empty(n, np.int64)
        n_ps = np.zeros(n)
        n_pc = np.zeros(n, np.int64)
        n_sv = gv.copy()
        n_se = ge.copy()
        n_ss = gs.copy()
        n_nm = np.zeros(n, np.int8)
        n_0w = np.empty(n)
        n_0v = np.empty(n, np.int64)
        n_1w = np.empty(n)
        n_1v = np.empty(n, np.int64)
        n_dw = gdw.copy()
        n_dx = gdx.copy()
        n_dy = gdy.copy()
        # Oriented binary children (not parent-visible: excluded from the
        # `changed` signature comparison below).
        n_e1 = np.full(n, -1, np.int64)
        n_e2 = np.full(n, -1, np.int64)

        fin = np.flatnonzero(tags == _T_FINAL)
        if fin.size:
            n_kind[fin] = _K_NULLARY
            n_b0[fin] = -1
            n_b1[fin] = -1
            n_pw[fin] = _NEG
            n_pe[fin] = -1
            n_0w[fin] = _NEG
            n_0v[fin] = -1
            n_1w[fin] = _NEG
            n_1v[fin] = -1

        idx = np.flatnonzero(tags == _T_RAKE)
        if idx.size:
            eR = e1[idx]
            uR = dal[idx]
            iu0 = self._nb0[eR] == uR
            euw = np.where(iu0, self._n0w[eR], self._n1w[eR])
            euv = np.where(iu0, self._n0v[eR], self._n1v[eR])
            evw = np.where(iu0, self._n1w[eR], self._n0w[eR])
            evv = np.where(iu0, self._n1v[eR], self._n0v[eR])
            mwR = mw[idx]
            mvR = mv[idx]
            m0w_, m0v_ = _lexmax2(euw, euv, self._nps[eR] + mwR, mvR)
            dw_, dx_, dy_ = _lexmax3(
                self._ndw[eR], self._ndx[eR], self._ndy[eR],
                gdw[idx], gdx[idx], gdy[idx],
            )
            dw_, dx_, dy_ = _lexmax3(dw_, dx_, dy_, evw + mwR, evv, mvR)
            n_kind[idx] = _K_UNARY
            n_nb[idx] = 1
            n_b0[idx] = uR
            n_b1[idx] = -1
            n_e1[idx] = eR
            n_pw[idx] = _NEG
            n_pe[idx] = -1
            n_1w[idx] = _NEG
            n_1v[idx] = -1
            n_nm[idx] = 1
            n_0w[idx] = m0w_
            n_0v[idx] = m0v_
            n_dw[idx] = dw_
            n_dx[idx] = dx_
            n_dy[idx] = dy_
            n_sv[idx] = gv[idx] + self._nsv[eR]
            n_se[idx] = ge[idx] + self._nse[eR]
            n_ss[idx] = gs[idx] + self._nss[eR]

        idx = np.flatnonzero(tags == _T_COMP)
        if idx.size:
            eA = e1[idx]
            eB = e2[idx]
            uC = dal[idx]
            wC = dbl[idx]
            i1u0 = self._nb0[eA] == uC
            e1uw = np.where(i1u0, self._n0w[eA], self._n1w[eA])
            e1uv = np.where(i1u0, self._n0v[eA], self._n1v[eA])
            e1vw = np.where(i1u0, self._n1w[eA], self._n0w[eA])
            e1vv = np.where(i1u0, self._n1v[eA], self._n0v[eA])
            i2w0 = self._nb0[eB] == wC
            e2ww = np.where(i2w0, self._n0w[eB], self._n1w[eB])
            e2wv = np.where(i2w0, self._n0v[eB], self._n1v[eB])
            e2vw = np.where(i2w0, self._n1w[eB], self._n0w[eB])
            e2vv = np.where(i2w0, self._n1v[eB], self._n0v[eB])
            p1w = self._npw[eA]
            p1e = self._npe[eA]
            p2w = self._npw[eB]
            p2e = self._npe[eB]
            take1 = (p1w > p2w) | ((p1w == p2w) & (p1e >= p2e))
            p1s = self._nps[eA]
            p2s = self._nps[eB]
            mwC = mw[idx]
            mvC = mv[idx]
            f1w, f1v = _lexmax2(mwC, mvC, e2vw, e2vv)
            f2w, f2v = _lexmax2(mwC, mvC, e1vw, e1vv)
            m0w_, m0v_ = _lexmax2(e1uw, e1uv, p1s + f1w, f1v)
            m1w_, m1v_ = _lexmax2(e2ww, e2wv, p2s + f2w, f2v)
            dw_, dx_, dy_ = _lexmax3(
                self._ndw[eA], self._ndx[eA], self._ndy[eA],
                self._ndw[eB], self._ndx[eB], self._ndy[eB],
            )
            dw_, dx_, dy_ = _lexmax3(
                dw_, dx_, dy_, gdw[idx], gdx[idx], gdy[idx]
            )
            dw_, dx_, dy_ = _lexmax3(dw_, dx_, dy_, e1vw + mwC, e1vv, mvC)
            dw_, dx_, dy_ = _lexmax3(dw_, dx_, dy_, e2vw + mwC, e2vv, mvC)
            dw_, dx_, dy_ = _lexmax3(dw_, dx_, dy_, e1vw + e2vw, e1vv, e2vv)
            n_kind[idx] = _K_BINARY
            n_nb[idx] = 2
            n_b0[idx] = uC
            n_b1[idx] = wC
            n_e1[idx] = eA
            n_e2[idx] = eB
            n_pw[idx] = np.where(take1, p1w, p2w)
            n_pe[idx] = np.where(take1, p1e, p2e)
            n_ps[idx] = p1s + p2s
            n_pc[idx] = self._npc[eA] + self._npc[eB]
            n_nm[idx] = 2
            n_0w[idx] = m0w_
            n_0v[idx] = m0v_
            n_1w[idx] = m1w_
            n_1v[idx] = m1v_
            n_dw[idx] = dw_
            n_dx[idx] = dx_
            n_dy[idx] = dy_
            n_sv[idx] = (gv[idx] + self._nsv[eA]) + self._nsv[eB]
            n_se[idx] = (ge[idx] + self._nse[eA]) + self._nse[eB]
            n_ss[idx] = (gs[idx] + self._nss[eA]) + self._nss[eB]

        # Scatter the new rows.
        self._nk[nodes] = n_kind
        self._nnb[nodes] = n_nb
        self._nb0[nodes] = n_b0
        self._nb1[nodes] = n_b1
        self._npw[nodes] = n_pw
        self._npe[nodes] = n_pe
        self._nps[nodes] = n_ps
        self._npc[nodes] = n_pc
        self._nsv[nodes] = n_sv
        self._nse[nodes] = n_se
        self._nss[nodes] = n_ss
        self._nnm[nodes] = n_nm
        self._n0w[nodes] = n_0w
        self._n0v[nodes] = n_0v
        self._n1w[nodes] = n_1w
        self._n1v[nodes] = n_1v
        self._ndw[nodes] = n_dw
        self._ndx[nodes] = n_dx
        self._ndy[nodes] = n_dy
        self._ne1[nodes] = n_e1
        self._ne2[nodes] = n_e2
        self._nlevel[nodes] = lvl

        # Children bookkeeping: guarded resets for dropped children first,
        # then parent pointers for the new lists.  Clearing every old child
        # whose parent pointer still names its rebuilt node and then
        # re-scattering the new lists is order-equivalent to the object
        # engine's per-vertex interleaving (kept children are restored by
        # the scatter; children owned by other nodes fail the guard).
        npar = self._npar
        fo: list[int] = []
        fown: list[int] = []
        for node_id, old in zip(nl0, olds):
            if old:
                fo.extend(old)
                fown.extend([node_id] * len(old))
        if fo:
            foa = np.asarray(fo, np.int64)
            sel = npar[foa] == np.asarray(fown, np.int64)
            npar[foa[sel]] = -1
        for node_id, kids in zip(nl0, kids_all):
            nkids[node_id] = kids
        flat = np.asarray(flat_kids, np.int64)
        npar[flat] = np.repeat(nodes, np.asarray(lens, np.int64))

        changed = (
            (o_k != n_kind)
            | (o_nb != n_nb)
            | (o_b0 != n_b0)
            | (o_b1 != n_b1)
            | (o_pw != n_pw)
            | (o_pe != n_pe)
            | (o_ps != n_ps)
            | (o_pc != n_pc)
            | (o_sv != n_sv)
            | (o_se != n_se)
            | (o_ss != n_ss)
            | (o_nm != n_nm)
            | (o_0w != n_0w)
            | (o_0v != n_0v)
            | (o_1w != n_1w)
            | (o_1v != n_1v)
            | (o_dw != n_dw)
            | (o_dx != n_dx)
            | (o_dy != n_dy)
        )
        ci = np.flatnonzero(changed)
        if ci.size:
            pn = npar[nodes[ci]]
            sel = pn != -1
            markers = va[ci[sel]].tolist()
            targets = self._nrep[pn[sel]].tolist()
            top = self._top
            buckets = self._dbuckets
            for m, t in zip(markers, targets):
                tl = int(top[t])
                if tl != lvl:
                    buckets.setdefault(tl, set()).add(t)
                else:
                    pairs.append((m, t))
        return work

    # ------------------------------------------------------------------
    # Compressed path trees (Algorithm 1 on the array state)
    # ------------------------------------------------------------------

    def compressed_path_trees(self, marked, cost: CostModel | None = None):
        """Compressed path trees of every component containing a marked
        vertex; identical output, phases, and charges as running
        :func:`repro.trees.cpt.compressed_path_trees` on the object engine.
        """
        from repro.trees.cpt import CompressedPathTree, PathAggregate

        marked_set = {int(v) for v in marked}
        for v in marked_set:
            if not (0 <= v < self._cap) or self._vl[v] == -1:
                raise KeyError(f"marked vertex {v} is not in the forest")

        charge = cost if cost is not None else CostModel(enabled=False)
        npar = self._npar

        # Mark phase: early-stopping upward walks (Lemma 3.3 path sharing).
        # ``ddist`` memoises each marked cluster's distance to its root, so
        # the expand recursion depth (the span charge) falls out of the
        # walks and the expand DFS needs no post-order depth stack.
        with charge.phase("cpt-mark") as ph:
            # Level-synchronised BFS up from the marked leaves.  The scalar
            # walk's per-leaf early stop becomes a frontier filter against
            # the visited mask, so the marked set, ``touched``, and the
            # root list come out identical; the span term (the deepest
            # marked leaf's distance to its root) falls out of a separate
            # unfiltered sweep, which terminates one round after the
            # deepest walk reaches its root.
            vl = self._vl
            ma = np.fromiter(marked_set, np.int64, len(marked_set))
            leaves = np.unique(vl[ma]) if ma.size else ma
            cur = leaves
            rounds = 0
            while cur.size:
                cur = npar[cur]
                cur = cur[cur != -1]
                rounds += 1
            max_chain = rounds - 1
            inm = np.zeros(self._nn, np.bool_)
            mc_parts: list[np.ndarray] = []
            root_parts: list[np.ndarray] = []
            cur = leaves
            while cur.size:
                inm[cur] = True
                mc_parts.append(cur)
                p = npar[cur]
                root_parts.append(cur[p == -1])
                p = p[p != -1]
                if p.size:
                    p = np.unique(p)
                    p = p[~inm[p]]
                cur = p
            mc_all = (
                np.concatenate(mc_parts) if mc_parts else leaves
            )
            touched = int(mc_all.size)
            roots = (
                np.concatenate(root_parts).tolist() if root_parts else []
            )
            charge.add(
                work=touched + max(len(marked_set), 1),
                span=log2ceil(max(self.num_vertices, 2)),
            )
            ph.count(touched)

        with charge.phase("cpt-expand") as ph:
            # The builder graph is a dict-of-dicts with plain-tuple
            # ``(max_w, max_eid, total, count)`` annotations -- the same
            # surgery sequence as ``cpt._GraphBuilder``/``cpt._prune``
            # (identical final graph and float association), minus the
            # object allocation.
            adj: dict[int, dict[int, tuple]] = {v: {} for v in marked_set}

            # Vectorised prune classification: every marked cluster gets a
            # dispatch code in a bytearray over node ids (0 means unmarked,
            # a U op).  1 is a marked VERTEX leaf (the builder's add_vertex
            # is a no-op: its rep is always in ``marked_set``); 2 is a
            # composite whose prune is a no-op (rep marked or boundary-
            # protected); 3 is a composite whose prune runs with the rep
            # and protection recorded in ``pmap``.
            codes_b = bytearray(self._nn)
            pmap: dict[int, tuple] = {}
            if touched:
                mca = mc_all
                kindm = self._nk[mca]
                repm = self._nrep[mca]
                b0m = self._nb0[mca]
                b1m = self._nb1[mca]
                mb = np.zeros(self._cap, np.bool_)
                mb[np.fromiter(marked_set, np.int64, len(marked_set))] = (
                    True
                )
                # Absent boundaries are -1 and reps are >= 0, so the
                # protection test needs no arity guard.
                keep = ~(
                    (kindm == _K_VERTEX)
                    | mb[repm]
                    | (repm == b0m)
                    | (repm == b1m)
                )
                cview = np.frombuffer(codes_b, np.uint8)
                cview[mca] = np.where(
                    kindm == _K_VERTEX, 1, np.where(keep, 3, 2)
                ).astype(np.uint8)
                ki = np.flatnonzero(keep)
                # ``pmap`` maps a P node to an index into the flat
                # rep/boundary columns.  Absent boundaries are -1 and real
                # vertices are >= 0, so protection ("u in prot") is just
                # two int compares against b0/b1 -- no tuples built.
                pmap = dict(zip(mca[ki].tolist(), range(ki.size)))
                p_rep = repm[ki].tolist()
                p_b0 = b0m[ki].tolist()
                p_b1 = b1m[ki].tolist()
            kids = self._nkids

            # Iterative post-order replay of ``cpt._expand``: pre-visits
            # emit U ops (j >= 0, indexing ``unmarked``), post-visits emit
            # the surviving P op (~node < 0, keying ``pmap``).  Recursion
            # depth was already charged via the mark walks.
            ops: list[int] = []
            unmarked: list[int] = []
            expand_count = 0
            ops_append = ops.append
            unm_append = unmarked.append
            for root in roots:
                stack: list[int] = [root]
                pop = stack.pop
                push = stack.append
                extend = stack.extend
                count = 0
                while stack:
                    e = pop()
                    if e < 0:
                        ops_append(e)
                        continue
                    count += 1
                    c = codes_b[e]
                    if c == 0:
                        ops_append(len(unmarked))
                        unm_append(e)
                    elif c >= 2:
                        if c == 3:
                            push(~e)
                        ch = kids[e]
                        if ch:
                            extend(reversed(ch))
                expand_count += count

            if unmarked:
                ua = np.asarray(unmarked, np.int64)
                # nnb == 2 implies kind is EDGE or BINARY (the only
                # two-boundary clusters), so no kind gather is needed.
                u_nb = self._nnb[ua].tolist()
                u_b0 = self._nb0[ua].tolist()
                u_b1 = self._nb1[ua].tolist()
                u_agg = list(
                    zip(
                        self._npw[ua].tolist(),
                        self._npe[ua].tolist(),
                        self._nps[ua].tolist(),
                        self._npc[ua].tolist(),
                    )
                )

            def splice(x: int) -> None:
                (a, wa), (b, wb) = adj.pop(x).items()
                del adj[a][x]
                del adj[b][x]
                if wa[0] > wb[0] or (wa[0] == wb[0] and wa[1] >= wb[1]):
                    agg = (wa[0], wa[1], wa[2] + wb[2], wa[3] + wb[3])
                else:
                    agg = (wb[0], wb[1], wa[2] + wb[2], wa[3] + wb[3])
                adj[a][b] = agg
                adj[b][a] = agg

            adj_get = adj.get
            for op in ops:
                if op >= 0:
                    b = u_nb[op]
                    if b == 2:
                        b0 = u_b0[op]
                        b1 = u_b1[op]
                        da = adj_get(b0)
                        if da is None:
                            da = adj[b0] = {}
                        db = adj_get(b1)
                        if db is None:
                            db = adj[b1] = {}
                        agg = u_agg[op]
                        da[b1] = agg
                        db[b0] = agg
                    elif b == 1:
                        b0 = u_b0[op]
                        if b0 not in adj:
                            adj[b0] = {}
                else:  # the Prune primitive (pre-filtered: v unmarked,
                    # unprotected)
                    j = pmap[~op]
                    v = p_rep[j]
                    nbv = adj[v]
                    deg = len(nbv)
                    if deg == 2:
                        splice(v)
                    elif deg == 1:
                        (u,) = nbv
                        del adj[u][v]
                        del adj[v]
                        if (
                            u not in marked_set
                            and u != p_b0[j]
                            and u != p_b1[j]
                            and len(adj[u]) == 2
                        ):
                            splice(u)
                    elif deg == 0:
                        del adj[v]
            # ``max_chain + 2`` is exactly the old recursion-depth-stack
            # maximum plus one: the deepest expand call sits one past the
            # longest leaf-to-root chain among the marked walks.
            charge.add(work=expand_count, span=max_chain + 2)
            ph.count(expand_count)

        vertices = sorted(adj)
        edges = []
        aggs = []
        pa_new = PathAggregate.__new__
        for a in vertices:
            for b, t in adj[a].items():
                if a < b:
                    edges.append((a, b, t[0], t[1]))
                    # The frozen dataclass routes __init__ through four
                    # object.__setattr__ calls; writing the instance dict
                    # directly builds an identical object much faster.
                    pa = pa_new(PathAggregate)
                    pa.__dict__.update(
                        max_w=t[0], max_eid=t[1], total=t[2], count=t[3]
                    )
                    aggs.append(pa)
        return CompressedPathTree(
            vertices=vertices, edges=edges, aggregates=aggs, marked=marked_set
        )

    # ------------------------------------------------------------------
    # Diagnostics / test oracles
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Canonical contraction snapshot, equal to the object engine's
        ``snapshot()`` for the same (edge set, seed)."""
        levels = []
        for i in range(len(self._Ld)):
            if self._Lnlive[i] == 0 and self._Lndec[i] == 0:
                continue
            deg = self._Ld[i]
            nbr = self._Ln[i]
            tag = self._Lt[i]
            da = self._La[i]
            db = self._Lb[i]
            pv = np.flatnonzero(deg >= 0)
            adj = {
                v: tuple(nbr[v, :d].tolist())
                for v, d in zip(pv.tolist(), deg[pv].tolist())
            }
            dv = np.flatnonzero(tag != -1)
            dec = {}
            for v, t, a, b in zip(
                dv.tolist(), tag[dv].tolist(), da[dv].tolist(), db[dv].tolist()
            ):
                if t == _T_STAY:
                    dec[v] = ("S",)
                elif t == _T_FINAL:
                    dec[v] = ("F",)
                elif t == _T_RAKE:
                    dec[v] = ("R", a)
                else:
                    dec[v] = ("C", a, b)
            levels.append((i, adj, dec))
        clusters = {}
        cands = np.flatnonzero(self._cp != -1)
        cands = cands[self._top[cands] != -1]
        for v in cands.tolist():
            n = int(self._cp[v])
            kid_tags = []
            for c in self._nkids[n] or ():
                ck = int(self._nk[c])
                if ck == _K_VERTEX:
                    kid_tags.append(("v", int(self._nrep[c])))
                elif ck == _K_EDGE:
                    kid_tags.append(("e", int(self._neid[c])))
                else:
                    kid_tags.append(("c", int(self._nrep[c])))
            sig = self._node_sig(n)
            clusters[v] = (
                _KIND_VALUE[sig[0]],
                int(self._nlevel[n]),
                sig[1],
                (sig[2], sig[3]),
                (sig[4], sig[5]),
                (sig[6], sig[7], sig[8]),
                (sig[9], sig[10]),
                tuple(sorted(kid_tags)),
            )
        return {"levels": levels, "clusters": clusters}

    def rebuilt_copy(self) -> "RCArrayForest":
        """A fresh forest with the same seed and live edges (rebuild oracle)."""
        other = RCArrayForest(
            vertices=np.flatnonzero(self._vl != -1).tolist(),
            seed=self.seed,
            compress_rule=self.compress_rule,
        )
        links = [
            InternalLink(a, b, self._edge_attrs[eid][0], eid)
            for eid, (a, b) in self._edge_endpoints.items()
        ]
        other.batch_update(links=links)
        return other

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on failure."""
        registered = np.flatnonzero(self._vl != -1).tolist()
        deg0 = self._Ld[0]
        nbr0 = self._Ln[0]
        degree_seen = {v: 0 for v in registered}
        for eid, (a, b) in self._edge_endpoints.items():
            ra = nbr0[a, : int(deg0[a])].tolist()
            rb = nbr0[b, : int(deg0[b])].tolist()
            assert b in ra and a in rb, f"edge {eid} missing in adj0"
            degree_seen[a] += 1
            degree_seen[b] += 1
        for v in registered:
            assert int(deg0[v]) == degree_seen[v], f"stray adjacency at {v}"

        # Every vertex contracts exactly once, consistently with decisions.
        for v in registered:
            i = int(self._top[v])
            assert i != -1, f"vertex {v} never contracts"
            t = int(self._Lt[i][v])
            assert t >= _T_FINAL, (v, t)
            for j in range(i):
                tj = int(self._Lt[j][v])
                if tj != -1:
                    assert tj == _T_STAY

        # Cluster tree: children partition, parent pointers, path maxima.
        for v in registered:
            n = int(self._cp[v])
            if n == -1 or self._top[v] == -1:
                continue
            kids = self._nkids[n] or []
            for c in kids:
                assert int(self._npar[c]) == n, f"broken parent under comp[{v}]"
            kinds = [int(self._nk[c]) for c in kids]
            assert kinds.count(_K_VERTEX) == 1
            assert int(self._nsv[n]) == sum(int(self._nsv[c]) for c in kids)
            assert int(self._nse[n]) == sum(int(self._nse[c]) for c in kids)
            assert (
                abs(float(self._nss[n]) - sum(float(self._nss[c]) for c in kids))
                < 1e-9
            )
            if int(self._nk[n]) == _K_BINARY:
                bins = [c for c in kids if int(self._nk[c]) in (_K_EDGE, _K_BINARY)]
                assert len(bins) == 2
                expect = max(
                    (float(self._npw[c]), int(self._npe[c])) for c in bins
                )
                assert (float(self._npw[n]), int(self._npe[n])) == expect
                assert int(self._npc[n]) == sum(int(self._npc[c]) for c in bins)

        # Roots are nullary.
        for v in registered:
            root = self.root_id(v)
            assert int(self._nk[root]) == _K_NULLARY, f"root of {v} not nullary"
