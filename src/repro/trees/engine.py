"""Engine selection seam for the RC-tree layer.

Two interchangeable contraction engines implement the Miller-Reif
rake/compress forest:

- ``"object"`` -- :class:`repro.trees.rcforest.RCForest`, the executable
  reference model (per-node Python objects, one ``ClusterNode`` per
  cluster).
- ``"array"`` -- :class:`repro.trees.rcarray.RCArrayForest`, a NumPy
  structure-of-arrays port that makes the same coin flips, produces the
  same contraction (``snapshot()``-identical), and charges the same
  simulated work/span to the same phases, but runs the hot level passes
  as vectorized array sweeps.

Selection precedence, weakest to strongest:

1. the package default (``DEFAULT_ENGINE``),
2. the ``REPRO_ENGINE`` environment variable,
3. an explicit ``engine=...`` argument anywhere in the stack
   (:func:`make_rc_forest`, ``DynamicForest``, ``BatchIncrementalMSF``,
   the sliding-window structures).

``resolve_engine(None)`` applies 1-2; passing a concrete name applies 3.
"""

from __future__ import annotations

import os
from typing import NamedTuple

ENGINES = ("object", "array")
DEFAULT_ENGINE = "array"
ENV_VAR = "REPRO_ENGINE"


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an engine name: explicit arg > ``$REPRO_ENGINE`` > default."""
    if engine is None:
        engine = os.environ.get(ENV_VAR) or DEFAULT_ENGINE
    engine = engine.lower()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown RC-tree engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


def make_rc_forest(engine: str | None = None, **kwargs):
    """Construct the selected engine's forest (shared constructor args)."""
    name = resolve_engine(engine)
    if name == "array":
        from repro.trees.rcarray import RCArrayForest

        return RCArrayForest(**kwargs)
    from repro.trees.rcforest import RCForest

    return RCForest(**kwargs)


class ComponentSummary(NamedTuple):
    """Root-cluster aggregates, engine-neutral (used by DynamicForest)."""

    sub_verts: int
    sub_edges: int
    sub_sum: float
    diam: tuple[float, int, int]
