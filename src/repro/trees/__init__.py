"""Batch-dynamic trees: ternarization, rake-compress contraction, RC trees.

This package implements the dynamic-trees substrate of Acar, Anderson,
Blelloch, Dhulipala and Westrick [2] that the paper builds on (Section 2.2):

- :mod:`repro.trees.ternary` -- dynamic conversion of an arbitrary-degree
  forest into an equivalent bounded-degree (<= 3) forest, using vertex
  copies joined by weight ``-inf`` virtual edges.
- :mod:`repro.trees.cluster` -- RC-tree cluster nodes (vertex/edge leaves,
  unary = rake, binary = compress, nullary = root) with heaviest-edge
  path augmentation.
- :mod:`repro.trees.rcforest` -- the leveled Miller-Reif contraction
  maintained under batch link/cut by change propagation, exposing the RC
  tree primitives of Section 3 (Boundary / Children / Representative /
  Weight).
- :mod:`repro.trees.rcarray` -- a NumPy structure-of-arrays port of the
  same contraction (identical coin flips, snapshots and cost charges)
  whose level passes run as vectorized array sweeps; selected via
  :mod:`repro.trees.engine` (``engine="array"`` is the default,
  overridable with ``$REPRO_ENGINE``).
- :mod:`repro.trees.cpt` -- the compressed path tree (Section 3,
  Algorithm 1), re-exported by :mod:`repro.core` as the paper's key
  ingredient.
- :class:`repro.trees.forest.DynamicForest` -- the user-facing weighted
  dynamic forest over original vertex ids.
"""

from repro.trees.cluster import ClusterNode, ClusterKind
from repro.trees.ternary import TernaryForest
from repro.trees.rcforest import RCForest
from repro.trees.rcarray import RCArrayForest
from repro.trees.engine import (
    ComponentSummary,
    DEFAULT_ENGINE,
    ENGINES,
    make_rc_forest,
    resolve_engine,
)
from repro.trees.forest import DynamicForest
from repro.trees.cpt import CompressedPathTree, PathAggregate, compressed_path_trees

__all__ = [
    "ClusterNode",
    "ClusterKind",
    "TernaryForest",
    "RCForest",
    "RCArrayForest",
    "ComponentSummary",
    "DEFAULT_ENGINE",
    "ENGINES",
    "make_rc_forest",
    "resolve_engine",
    "DynamicForest",
    "CompressedPathTree",
    "PathAggregate",
    "compressed_path_trees",
]
