"""Batch-dynamic rake-compress forests via parallel change propagation.

This module maintains a Miller-Reif tree contraction of a bounded-degree
forest, level by level, together with the corresponding RC tree (one
composite cluster per vertex), under batches of edge insertions (links) and
deletions (cuts).  It is the Python realisation of Acar, Anderson, Blelloch,
Dhulipala and Westrick [2], the substrate Theorem 1.1 builds on:

- build: ``O(n)`` expected work, ``O(lg^2 n)`` span w.h.p.;
- batch update of ``l`` edges: ``O(l lg(1 + n/l))`` expected work and
  ``O(lg^2 n)`` span w.h.p.

**Contraction rules.**  At round ``i`` a live vertex ``v`` with degree ``d``:

- ``d = 0``: *finalizes* (becomes the root cluster of its component);
- ``d = 1`` with neighbour ``u``: *rakes* into ``u`` -- except in a
  two-vertex tree (``deg(u) = 1``), where only the smaller id rakes;
- ``d = 2`` with neighbours ``u, w``: *compresses* iff both neighbours have
  degree >= 2 and the coins say ``heads(v)``, ``tails(u)``, ``tails(w)``;
- otherwise *stays*.

Coins are a pure function of ``(seed, vertex, round)``
(:class:`~repro.runtime.HashBits`), so the **entire leveled state is a pure
function of the edge set and the seed**.  Change propagation exploits this:
a batch update marks the endpoints dirty at level 0 and re-runs the decision
rule only where inputs changed, pushing adjacency diffs upward level by
level.  The test suite asserts the resulting state is bit-identical to a
from-scratch rebuild.

**Clusters.**  Every composite cluster is identified with its representative
vertex: ``comp[v]`` is formed when ``v`` contracts and contains the vertex
leaf of ``v``, the edge clusters its contraction consumed, and the unary
clusters of vertices that previously raked into ``v``.  Binary clusters are
augmented with the heaviest ``(weight, edge id)`` on their cluster path.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from repro.runtime.cost import CostModel, log2ceil
from repro.runtime.hashing import HashBits
from repro.trees import batchquery
from repro.trees.cluster import ClusterKind, ClusterNode
from repro.trees.ternary import InternalLink

# Decision tags.
_STAY = ("S",)
_FINAL = ("F",)

_MAX_LEVELS = 4096  # hard safety cap; ~lg n levels are used in practice


def _pair(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


class _ObjectAdapter:
    """``ClusterNode``-handle adapter feeding the shared batch read
    kernels of :mod:`repro.trees.batchquery`."""

    __slots__ = ("f",)

    def __init__(self, f: "RCForest") -> None:
        self.f = f

    def leaf(self, v):
        return self.f.vleaf[v]

    def parent(self, n):
        return n.parent

    def is_vertex(self, n):
        return n.kind is ClusterKind.VERTEX

    def rep(self, n):
        return n.rep

    def b0(self, n):
        return n.boundary[0]

    def b1(self, n):
        return n.boundary[1]

    def nnb(self, n):
        return len(n.boundary)

    def _bin_child(self, P, b):
        # The binary child adjacent to boundary vertex ``b`` of P.  The
        # other binary child's boundary is {rep(P), other-b}, so the
        # match is unambiguous (the array engine stores this as _ne1/_ne2).
        for c in P.children:
            if c.is_binary() and b in c.boundary:
                return c
        raise AssertionError(
            f"no binary child adjacent to {b} under {P!r}"
        )  # pragma: no cover - structural invariant

    def e1(self, P):
        return self._bin_child(P, P.boundary[0])

    def e2(self, P):
        return self._bin_child(P, P.boundary[1])

    def pw(self, n):
        return n.path_w

    def pe(self, n):
        return n.path_eid


def _aug_signature(node: ClusterNode) -> tuple:
    """Everything a parent cluster reads from a child: boundary-visible
    shape plus every augmented value.  A change here must propagate."""
    return (
        node.kind,
        node.boundary,
        node.path_w,
        node.path_eid,
        node.path_sum,
        node.path_count,
        node.sub_verts,
        node.sub_edges,
        node.sub_sum,
        node.maxd,
        node.diam,
    )


class RCForest:
    """A batch-dynamic RC forest over internal (bounded-degree) vertex ids.

    Vertices are registered with :meth:`ensure_vertex` (ids need not be
    contiguous); edges are identified by the ``eid`` of their
    :class:`~repro.trees.ternary.InternalLink`.  All updates go through
    :meth:`batch_update`, which applies cuts and links in one change
    propagation pass.
    """

    engine = "object"

    def __init__(
        self,
        vertices: Iterable[int] = (),
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        compress_rule: str = "mr",
    ) -> None:
        if compress_rule not in ("mr", "ordered"):
            raise ValueError(
                f"compress_rule must be 'mr' or 'ordered', got {compress_rule!r}"
            )
        self.compress_rule = compress_rule
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._bits = HashBits(seed)
        self._adj: list[dict[int, set[int]]] = [{}]
        self._dec: list[dict[int, tuple]] = [{}]
        self._top: dict[int, int] = {}  # vertex -> level at which it contracts
        self.vleaf: dict[int, ClusterNode] = {}
        self.eleaf: dict[int, ClusterNode] = {}
        self.comp: dict[int, ClusterNode] = {}
        # Both indices are tagged with the contraction level that created
        # the entry: change propagation may apply a relation at one level
        # and undo the stale copy of the same relation at another, and the
        # level tag keeps those from cancelling each other.
        self._edge_cluster: dict[tuple[int, int], tuple[ClusterNode, int]] = {}
        self._rakes_on: dict[int, dict[int, int]] = {}
        self._edge_endpoints: dict[int, tuple[int, int]] = {}
        self._edge_attrs: dict[int, tuple[float, int]] = {}
        self._pending_rebuild: set[int] = set()
        self.num_levels = 1

        init = [v for v in vertices]
        for v in init:
            self._register(v)
        if init:
            self._propagate(set(init))

    # ------------------------------------------------------------------
    # Registration and basic accessors
    # ------------------------------------------------------------------

    def _register(self, v: int) -> None:
        if v not in self.vleaf:
            leaf = ClusterNode(ClusterKind.VERTEX, rep=v)
            leaf.sub_verts = 1
            leaf.diam = (0.0, v, v)
            self.vleaf[v] = leaf
            self._adj[0][v] = set()
            self._rakes_on[v] = {}

    def ensure_vertex(self, v: int) -> bool:
        """Register ``v`` if new; returns True if it was added.

        New vertices become live at level 0 and are finalized by the next
        propagation (callers pass them in the dirty set of the batch that
        introduces them).
        """
        if v in self.vleaf:
            return False
        self._register(v)
        return True

    @property
    def num_vertices(self) -> int:
        """Number of registered (internal) vertices."""
        return len(self.vleaf)

    @property
    def num_edges(self) -> int:
        """Number of live edges."""
        return len(self.eleaf)

    def has_edge(self, eid: int) -> bool:
        """Whether edge ``eid`` is live."""
        return eid in self.eleaf

    def edge_endpoints(self, eid: int) -> tuple[int, int]:
        """Endpoints of a live edge."""
        return self._edge_endpoints[eid]

    def edge_attrs(self, eid: int) -> tuple[float, int]:
        """(weight, eid) of a live edge."""
        return self._edge_attrs[eid]

    def degree(self, v: int) -> int:
        """Degree of ``v`` in the base forest."""
        return len(self._adj[0][v])

    def neighbors(self, v: int) -> set[int]:
        """Base-forest neighbours of ``v`` (a copy)."""
        return set(self._adj[0][v])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def root_cluster(self, v: int) -> ClusterNode:
        """The nullary root cluster of ``v``'s component (O(lg n) w.h.p.)."""
        node: ClusterNode = self.vleaf[v]
        steps = 0
        while node.parent is not None:
            node = node.parent
            steps += 1
        self.cost.add(work=steps + 1, span=steps + 1)
        return node

    def root_key(self, v: int) -> int:
        """Engine-neutral identity of ``v``'s root cluster (comparable
        across calls on the same engine instance, like ``RCArrayForest``'s
        node ids)."""
        return id(self.root_cluster(v))

    def connected(self, u: int, v: int) -> bool:
        """Same-tree test via root clusters (O(lg n) w.h.p.)."""
        return self.root_cluster(u) is self.root_cluster(v)

    # -- batched reads (loop-based reference implementation) ------------

    def batch_is_connected(self, pairs) -> list[bool]:
        """Same-tree test for a batch of pairs off one shared root walk.

        Loop-based reference for ``RCArrayForest.batch_is_connected``:
        identical answers and identical ``bq-roots`` work/span charges,
        one dict-driven level at a time instead of NumPy gathers.

        >>> from repro.trees.rcforest import RCForest
        >>> from repro.trees.ternary import InternalLink
        >>> f = RCForest(range(4), seed=1)
        >>> f.batch_update(links=[InternalLink(0, 1, 5.0, 10),
        ...                       InternalLink(1, 2, 7.0, 11)])
        >>> f.batch_is_connected([(0, 2), (0, 3), (2, 2)])
        [True, False, True]
        """
        pairs = batchquery.normalize_pairs(pairs, self._require_vertex)
        if not pairs:
            return []
        return batchquery.batch_is_connected(
            _ObjectAdapter(self), pairs, self.cost
        )

    def batch_path_max(self, pairs) -> list[tuple[float, int] | None]:
        """Heaviest ``(w, eid)`` per tree path for a batch of pairs;
        ``None`` for ``u == v`` or disconnected pairs.

        Loop-based reference for ``RCArrayForest.batch_path_max``
        (phases ``bq-roots`` then ``bq-paths``; see
        :mod:`repro.trees.batchquery` for the climb and its cost
        contract).

        >>> from repro.trees.rcforest import RCForest
        >>> from repro.trees.ternary import InternalLink
        >>> f = RCForest(range(4), seed=1)
        >>> f.batch_update(links=[InternalLink(0, 1, 5.0, 10),
        ...                       InternalLink(1, 2, 7.0, 11)])
        >>> f.batch_path_max([(0, 2), (0, 1), (0, 3), (1, 1)])
        [(7.0, 11), (5.0, 10), None, None]
        """
        pairs = batchquery.normalize_pairs(pairs, self._require_vertex)
        if not pairs:
            return []
        return batchquery.batch_path_max(
            _ObjectAdapter(self), pairs, self.cost
        )

    def _require_vertex(self, v: int) -> None:
        if v not in self.vleaf:
            raise KeyError(v)

    def component_summary(self, v: int):
        """Root-cluster aggregates of ``v``'s component, engine-neutral."""
        from repro.trees.engine import ComponentSummary

        root = self.root_cluster(v)
        return ComponentSummary(
            root.sub_verts, root.sub_edges, root.sub_sum, root.diam
        )

    def compressed_path_trees(self, marked, cost: CostModel | None = None):
        """Compressed path trees over ``marked`` (Algorithm 1); same
        signature as ``RCArrayForest.compressed_path_trees``."""
        from repro.trees.cpt import compressed_path_trees

        return compressed_path_trees(self, marked, cost=cost)

    def rc_height(self, v: int) -> int:
        """Depth of vertex leaf ``v`` below its root (diagnostics)."""
        node: ClusterNode = self.vleaf[v]
        h = 0
        while node.parent is not None:
            node = node.parent
            h += 1
        return h

    def level_statistics(self) -> list[int]:
        """Live vertex count per contraction level (diagnostics).

        Miller-Reif guarantees a geometrically decreasing sequence in
        expectation, hence O(lg n) levels w.h.p. -- the property the span
        bounds of Theorems 1.1/3.2 rest on.
        """
        return [len(adj) for adj in self._adj if adj]

    def roots(self) -> list[ClusterNode]:
        """All root clusters (one per component; O(n) -- diagnostics only)."""
        return [c for c in self.comp.values() if c.parent is None and c.children]

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------

    def batch_update(
        self,
        links: list[InternalLink] | None = None,
        cuts: list[tuple[int, int, int]] | None = None,
    ) -> None:
        """Apply edge deletions (``cuts``: ``(a, b, eid)``) and insertions
        (``links``) in one change-propagation pass.

        Cuts are applied before links, so a batch may remove an edge between
        a vertex pair and re-link the pair.  Linking two already-connected
        vertices would create a cycle and raises ``ValueError`` (checked
        cheaply at level 0 only for edges joining the same endpoints; global
        acyclicity is the caller's contract, asserted in debug helpers).
        """
        links = links or []
        cuts = cuts or []
        with self.cost.phase("rc-propagate", items=len(links) + len(cuts)):
            self._batch_update(links, cuts)

    def _batch_update(
        self, links: list[InternalLink], cuts: list[tuple[int, int, int]]
    ) -> None:
        dirty: set[int] = set()
        adj0 = self._adj[0]

        for a, b, eid in cuts:
            leaf = self.eleaf.pop(eid, None)
            if leaf is None:
                raise KeyError(f"edge {eid} is not in the forest")
            adj0[a].discard(b)
            adj0[b].discard(a)
            p = _pair(a, b)
            entry = self._edge_cluster.get(p)
            if entry is not None and entry[0] is leaf:
                del self._edge_cluster[p]
            if leaf.parent is not None:
                self._mark_rebuild(leaf.parent.rep)
                leaf.parent = None
            del self._edge_endpoints[eid]
            del self._edge_attrs[eid]
            dirty.add(a)
            dirty.add(b)

        for link in links:
            a, b, eid = link.a, link.b, link.eid
            if self.ensure_vertex(a):
                dirty.add(a)
            if self.ensure_vertex(b):
                dirty.add(b)
            if eid in self.eleaf:
                raise ValueError(f"edge id {eid} already present")
            if a == b or b in adj0[a]:
                raise ValueError(f"link ({a}, {b}) duplicates a forest edge")
            leaf = ClusterNode(ClusterKind.EDGE, eid=eid)
            leaf.boundary = (a, b)
            leaf.path_w = link.w
            leaf.path_eid = eid
            leaf.maxd = ((float("-inf"), -1), (float("-inf"), -1))
            if eid >= 0:  # virtual ternarization links carry no real length
                leaf.path_sum = link.w
                leaf.path_count = 1
                leaf.sub_edges = 1
                leaf.sub_sum = link.w
            self.eleaf[eid] = leaf
            self._edge_cluster[_pair(a, b)] = (leaf, 0)
            self._edge_endpoints[eid] = (a, b)
            self._edge_attrs[eid] = (link.w, eid)
            adj0[a].add(b)
            adj0[b].add(a)
            dirty.add(a)
            dirty.add(b)

        ell = len(links) + len(cuts)
        if ell:
            # Batch pre-processing (semisort of endpoints into the dirty set).
            self.cost.add(work=ell, span=log2ceil(max(ell, 2)))
        self._propagate(dirty)

    # ------------------------------------------------------------------
    # Change propagation
    # ------------------------------------------------------------------

    def _decide(self, i: int, v: int) -> tuple:
        adj = self._adj[i]
        nbrs = adj[v]
        d = len(nbrs)
        if d == 0:
            return _FINAL
        if d == 1:
            (u,) = nbrs
            if len(adj[u]) == 1 and v > u:
                return _STAY  # two-vertex tree: the smaller id rakes
            return ("R", u)
        if d == 2:
            u, w = sorted(nbrs)
            if len(adj[u]) < 2 or len(adj[w]) < 2:
                return _STAY  # a raking leaf consumes one of v's edges
            if self._bits.bit(v, i) != 1:
                return _STAY
            if self.compress_rule == "mr":
                # Miller-Reif: both neighbours must flip tails.
                ok = self._bits.bit(u, i) == 0 and self._bits.bit(w, i) == 0
            else:
                # Ordered rule: only *larger-id* degree-2 neighbours must
                # flip tails.  Adjacent compressions still cannot happen
                # (for adjacent eligible v < x, v requires H(x) = 0 while x
                # requires H(x) = 1), but a chain vertex now compresses
                # with probability ~2.25x higher, shortening contractions.
                ok = all(
                    self._bits.bit(x, i) == 0
                    for x in (u, w)
                    if x > v and len(adj[x]) == 2
                )
            if ok:
                return ("C", u, w)
            return _STAY
        return _STAY

    def _mark_rebuild(self, v: int) -> None:
        self._pending_rebuild.add(v)

    def _undo_decision(self, i: int, v: int, od: tuple) -> None:
        """Remove the index side effects of an old decision."""
        if od[0] == "R":
            target = od[1]
            if self._rakes_on[target].get(v) == i:
                del self._rakes_on[target][v]
            self._mark_rebuild(target)
        elif od[0] == "C":
            p = _pair(od[1], od[2])
            node = self.comp.get(v)
            entry = self._edge_cluster.get(p)
            if node is not None and entry is not None and entry == (node, i):
                del self._edge_cluster[p]
                if node.parent is not None:
                    self._mark_rebuild(node.parent.rep)

    def _apply_decision(self, i: int, v: int, nd: tuple) -> None:
        """Install the index side effects of a new decision."""
        if nd[0] in ("R", "C", "F"):
            self._top[v] = i
            self._mark_rebuild(v)
        if nd[0] == "R":
            target = nd[1]
            self._rakes_on[target][v] = i
            self._mark_rebuild(target)
        elif nd[0] == "C":
            node = self.comp.get(v)
            if node is None:
                node = ClusterNode(ClusterKind.BINARY, rep=v)
                self.comp[v] = node
            p = _pair(nd[1], nd[2])
            old = self._edge_cluster.get(p)
            if old is not None and old[0] is not node and old[0].parent is not None:
                self._mark_rebuild(old[0].parent.rep)
            self._edge_cluster[p] = (node, i)

    def _next_adj(self, i: int, x: int) -> set[int]:
        """Adjacency of a surviving vertex ``x`` at level ``i + 1``."""
        dec = self._dec[i]
        out: set[int] = set()
        for y in self._adj[i][x]:
            dy = dec[y]
            tag = dy[0]
            if tag == "S":
                out.add(y)
            elif tag == "C":
                out.add(dy[2] if dy[1] == x else dy[1])
            # "R" into x: y disappears.  ("R" elsewhere / "F" impossible
            # for a neighbour of x.)
        return out

    def _propagate(self, dirty0: set[int]) -> None:
        # Note: self._pending_rebuild may already hold marks recorded by
        # batch_update while applying cuts/links; they must survive into the
        # rebuild drain below.
        frontier = dirty0
        i = 0
        while frontier:
            if i >= _MAX_LEVELS:
                raise RuntimeError("contraction did not converge (cycle in input?)")
            if i + 1 >= len(self._adj):
                self._adj.append({})
                self._dec.append({})
            adj_i = self._adj[i]
            dec_i = self._dec[i]

            # 1. Recompute decisions where inputs may have changed.
            cands: set[int] = set()
            for v in frontier:
                cands.add(v)
                if v in adj_i:
                    cands.update(adj_i[v])
            dec_changed: set[int] = set()
            for v in cands:
                od = dec_i.get(v)
                nd = self._decide(i, v) if v in adj_i else None
                if nd == od:
                    continue
                if od is not None:
                    self._undo_decision(i, v, od)
                if nd is None:
                    del dec_i[v]
                else:
                    dec_i[v] = nd
                    self._apply_decision(i, v, nd)
                if nd is None or nd == _STAY:
                    # v no longer contracts here; a higher level will claim it.
                    if self._top.get(v) == i:
                        del self._top[v]
                dec_changed.add(v)

            # 2. Push adjacency diffs to level i + 1.
            touch: set[int] = set()
            for v in frontier | dec_changed:
                touch.add(v)
                if v not in adj_i:
                    continue
                for y in adj_i[v]:
                    dy = dec_i[y]
                    if dy[0] == "S":
                        touch.add(y)
                    elif dy[0] == "C":
                        touch.add(dy[2] if dy[1] == v else dy[1])
            adj_next = self._adj[i + 1]
            next_frontier: set[int] = set()
            for x in touch:
                alive = x in adj_i and dec_i.get(x) == _STAY
                if alive:
                    na = self._next_adj(i, x)
                    if adj_next.get(x) != na:
                        adj_next[x] = na
                        next_frontier.add(x)
                else:
                    if x in adj_next:
                        del adj_next[x]
                        next_frontier.add(x)

            self.cost.add(
                work=len(cands) + len(touch) + 1,
                span=log2ceil(max(len(cands), 2)),
            )
            frontier = next_frontier
            i += 1

        # Trim empty trailing levels so num_levels reflects the contraction.
        while len(self._adj) > 1 and not self._adj[-1] and not self._dec[-1]:
            self._adj.pop()
            self._dec.pop()
        self.num_levels = len(self._adj)

        # With all levels settled, every vertex has a contraction level;
        # rebuild dirty clusters bottom-up (children strictly below parents).
        heap = [(self._top[v], v) for v in self._pending_rebuild]
        in_heap = set(self._pending_rebuild)
        self._pending_rebuild.clear()
        heapq.heapify(heap)
        while heap:
            _, v = heapq.heappop(heap)
            in_heap.discard(v)
            self._rebuild_comp(v)
            for w in self._pending_rebuild:
                if w not in in_heap:
                    in_heap.add(w)
                    heapq.heappush(heap, (self._top[w], w))
            self._pending_rebuild.clear()

    def _rebuild_comp(self, v: int) -> None:
        i = self._top[v]
        d = self._dec[i][v]
        if d[0] not in ("R", "C", "F"):  # pragma: no cover - defensive
            raise AssertionError(f"rebuild of non-contracting vertex {v}: {d}")
        node = self.comp.get(v)
        if node is None:
            node = ClusterNode(ClusterKind.BINARY, rep=v)
            self.comp[v] = node
        old_sig = _aug_signature(node)
        old_children = node.children

        # The rake group around v: the vertex leaf (distance 0 from v) plus
        # every unary cluster previously raked onto v.  All members attach
        # at v, so pairwise distances factor through v.
        children: list[ClusterNode] = [self.vleaf[v]]
        m_v = (0.0, v)  # farthest (distance, vertex) from v within the group
        gdiam = (0.0, v, v)  # in-group diameter with endpoints
        g_verts, g_edges, g_sum = 1, 0, 0.0
        for w in sorted(self._rakes_on[v]):
            r = self.comp[w]
            children.append(r)
            md = r.maxd[0]
            gdiam = max(gdiam, r.diam, (m_v[0] + md[0], m_v[1], md[1]))
            m_v = max(m_v, md)
            g_verts += r.sub_verts
            g_edges += r.sub_edges
            g_sum += r.sub_sum

        if d[0] == "R":
            u = d[1]
            e = self._edge_cluster[_pair(v, u)][0]
            consumed = [e]
            iu = e.boundary.index(u)
            iv = 1 - iu
            node.kind = ClusterKind.UNARY
            node.boundary = (u,)
            node.path_w, node.path_eid = float("-inf"), -1
            node.path_sum, node.path_count = 0.0, 0
            node.maxd = (
                max(e.maxd[iu], (e.path_sum + m_v[0], m_v[1])),
            )
            node.diam = max(
                e.diam,
                gdiam,
                (e.maxd[iv][0] + m_v[0], e.maxd[iv][1], m_v[1]),
            )
            node.sub_verts = g_verts + e.sub_verts
            node.sub_edges = g_edges + e.sub_edges
            node.sub_sum = g_sum + e.sub_sum
        elif d[0] == "C":
            u, w = d[1], d[2]
            e1 = self._edge_cluster[_pair(u, v)][0]
            e2 = self._edge_cluster[_pair(v, w)][0]
            consumed = [e1, e2]
            i1u = e1.boundary.index(u)
            i1v = 1 - i1u
            i2w = e2.boundary.index(w)
            i2v = 1 - i2w
            node.kind = ClusterKind.BINARY
            node.boundary = (u, w)
            if (e1.path_w, e1.path_eid) >= (e2.path_w, e2.path_eid):
                node.path_w, node.path_eid = e1.path_w, e1.path_eid
            else:
                node.path_w, node.path_eid = e2.path_w, e2.path_eid
            node.path_sum = e1.path_sum + e2.path_sum
            node.path_count = e1.path_count + e2.path_count
            from_v1 = max(m_v, e2.maxd[i2v])
            from_v2 = max(m_v, e1.maxd[i1v])
            node.maxd = (
                max(e1.maxd[i1u], (e1.path_sum + from_v1[0], from_v1[1])),
                max(e2.maxd[i2w], (e2.path_sum + from_v2[0], from_v2[1])),
            )
            node.diam = max(
                e1.diam,
                e2.diam,
                gdiam,
                (e1.maxd[i1v][0] + m_v[0], e1.maxd[i1v][1], m_v[1]),
                (e2.maxd[i2v][0] + m_v[0], e2.maxd[i2v][1], m_v[1]),
                (
                    e1.maxd[i1v][0] + e2.maxd[i2v][0],
                    e1.maxd[i1v][1],
                    e2.maxd[i2v][1],
                ),
            )
            node.sub_verts = g_verts + e1.sub_verts + e2.sub_verts
            node.sub_edges = g_edges + e1.sub_edges + e2.sub_edges
            node.sub_sum = g_sum + e1.sub_sum + e2.sub_sum
        else:  # finalize: the whole component has raked onto v
            consumed = []
            node.kind = ClusterKind.NULLARY
            node.boundary = ()
            node.path_w, node.path_eid = float("-inf"), -1
            node.path_sum, node.path_count = 0.0, 0
            node.maxd = ()
            node.diam = gdiam
            node.sub_verts = g_verts
            node.sub_edges = g_edges
            node.sub_sum = g_sum
        children.extend(consumed)
        node.level = i
        node.children = children
        for c in old_children:
            if c.parent is node and c not in children:
                c.parent = None
        for c in children:
            c.parent = node

        self.cost.add(work=len(children))
        if _aug_signature(node) != old_sig:
            if node.parent is not None:
                self._mark_rebuild(node.parent.rep)

    # ------------------------------------------------------------------
    # Diagnostics / test oracles
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A canonical, comparable snapshot of the full contraction state.

        Two forests with the same seed and the same live edge set must have
        equal snapshots regardless of the update history -- the key property
        the test suite checks (propagation is equivalent to rebuild).
        """
        levels = []
        for i in range(len(self._adj)):
            if not self._adj[i] and not self._dec[i]:
                continue
            levels.append(
                (
                    i,
                    {v: tuple(sorted(s)) for v, s in self._adj[i].items()},
                    dict(self._dec[i]),
                )
            )
        clusters = {}
        for v, node in self.comp.items():
            if v not in self._top:
                continue
            kids = []
            for c in node.children:
                if c.kind is ClusterKind.VERTEX:
                    kids.append(("v", c.rep))
                elif c.kind is ClusterKind.EDGE:
                    kids.append(("e", c.eid))
                else:
                    kids.append(("c", c.rep))
            clusters[v] = (
                node.kind.value,
                node.level,
                node.boundary,
                (node.path_w, node.path_eid),
                (node.path_sum, node.path_count),
                (node.sub_verts, node.sub_edges, node.sub_sum),
                (node.maxd, node.diam),
                tuple(sorted(kids)),
            )
        return {"levels": levels, "clusters": clusters}

    def rebuilt_copy(self) -> "RCForest":
        """A fresh forest with the same seed and live edges (rebuild oracle)."""
        other = RCForest(
            vertices=list(self.vleaf),
            seed=self._bits.seed,
            compress_rule=self.compress_rule,
        )
        links = [
            InternalLink(a, b, self._edge_attrs[eid][0], eid)
            for eid, (a, b) in self._edge_endpoints.items()
        ]
        other.batch_update(links=links)
        return other

    def check_invariants(self) -> None:
        """Validate structural invariants; raises AssertionError on failure."""
        # Level-0 adjacency is symmetric and matches the edge set.
        adj0 = self._adj[0]
        degree_seen = {v: 0 for v in adj0}
        for eid, (a, b) in self._edge_endpoints.items():
            assert b in adj0[a] and a in adj0[b], f"edge {eid} missing in adj0"
            degree_seen[a] += 1
            degree_seen[b] += 1
        # (Degree boundedness is the ternary layer's invariant, checked by
        # DynamicForest; the contraction itself is degree-agnostic.)
        for v, nbrs in adj0.items():
            assert len(nbrs) == degree_seen[v], f"stray adjacency at {v}"

        # Every vertex contracts exactly once, consistently with decisions.
        for v in self.vleaf:
            assert v in self._top, f"vertex {v} never contracts"
            i = self._top[v]
            d = self._dec[i][v]
            assert d[0] in ("R", "C", "F"), (v, d)
            for j in range(i):
                if v in self._dec[j]:
                    assert self._dec[j][v] == _STAY

        # Cluster tree: children partition, parent pointers, path maxima.
        for v, node in self.comp.items():
            if v not in self._top:
                continue
            for c in node.children:
                assert c.parent is node, f"broken parent under comp[{v}]"
            kinds = [c.kind for c in node.children]
            assert kinds.count(ClusterKind.VERTEX) == 1
            assert node.sub_verts == sum(c.sub_verts for c in node.children)
            assert node.sub_edges == sum(c.sub_edges for c in node.children)
            assert abs(node.sub_sum - sum(c.sub_sum for c in node.children)) < 1e-9
            if node.kind is ClusterKind.BINARY:
                bins = [c for c in node.children if c.is_binary()]
                assert len(bins) == 2
                expect = max((c.path_w, c.path_eid) for c in bins)
                assert (node.path_w, node.path_eid) == expect
                assert node.path_count == sum(c.path_count for c in bins)

        # Roots are nullary.
        for v in self.vleaf:
            root = self.root_cluster(v)
            assert root.kind is ClusterKind.NULLARY, f"root of {v} not nullary"
