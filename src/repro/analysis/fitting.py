"""Least-squares fits of measured work/span against the paper's bounds.

Reproducing a theory paper means checking the *shape* of each bound: we
measure work ``y_i`` at parameters ``x_i``, fit the single constant ``c`` in
``y ~ c * f(x)`` for the claimed ``f``, and report the relative residual.
A good fit (low residual) for the claimed model, and a visibly worse fit
for the naive alternatives (e.g. ``l * lg n`` or ``n`` instead of
``l * lg(1 + n/l)``), is the reproduction criterion in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

# The bound shapes appearing in Table 1 / Theorems 1.1, 3.2, 4.2.
BOUND_MODELS: dict[str, Callable[..., float]] = {
    "l*lg(1+n/l)": lambda ell, n: ell * math.log2(1.0 + n / ell),
    "l*lg(n)": lambda ell, n: ell * math.log2(max(n, 2)),
    "l": lambda ell, n: float(ell),
    "n": lambda ell, n: float(n),
    "l*alpha(n)": lambda ell, n: ell * _alpha(n),
    "lg^2(n)": lambda ell, n: math.log2(max(n, 2)) ** 2,
}


def _alpha(n: float) -> float:
    """A practical stand-in for the inverse Ackermann function."""
    if n < 5:
        return 1.0
    if n < 2**4:
        return 2.0
    if n < 2**16:
        return 3.0
    return 4.0


def fit_constant(
    xs: Sequence[tuple],
    ys: Sequence[float],
    model: Callable[..., float],
) -> float:
    """Best least-squares ``c`` for ``y ~ c * model(*x)``."""
    f = np.array([model(*x) for x in xs], dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    denom = float(f @ f)
    if denom == 0:
        raise ValueError("model is identically zero on the sample")
    return float((f @ y) / denom)


def goodness_of_fit(
    xs: Sequence[tuple],
    ys: Sequence[float],
    model: Callable[..., float],
) -> tuple[float, float]:
    """Fit ``c`` and return ``(c, relative RMS residual)``.

    The residual is ``||y - c f|| / ||y||``; 0 is a perfect fit, and values
    near 1 mean the model explains nothing.
    """
    c = fit_constant(xs, ys, model)
    f = np.array([model(*x) for x in xs], dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    norm = float(np.linalg.norm(y))
    if norm == 0:
        return c, 0.0
    return c, float(np.linalg.norm(y - c * f) / norm)


def best_model(
    xs: Sequence[tuple], ys: Sequence[float], names: Sequence[str] | None = None
) -> tuple[str, float, float]:
    """The BOUND_MODELS entry with the lowest relative residual."""
    names = list(names) if names is not None else list(BOUND_MODELS)
    scored = []
    for name in names:
        c, resid = goodness_of_fit(xs, ys, BOUND_MODELS[name])
        scored.append((resid, name, c))
    resid, name, c = min(scored)
    return name, c, resid
