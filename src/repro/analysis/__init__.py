"""Analysis helpers: fitting measured work to the paper's bounds, and
paper-style table rendering for the benchmark harness."""

from repro.analysis.fitting import (
    BOUND_MODELS,
    fit_constant,
    goodness_of_fit,
)
from repro.analysis.tables import format_table

__all__ = ["fit_constant", "goodness_of_fit", "BOUND_MODELS", "format_table"]
