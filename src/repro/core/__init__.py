"""The paper's primary contribution.

- :func:`compressed_path_tree` / :class:`CompressedPathTree` -- Section 3:
  the summary tree of all pairwise heaviest-edge queries between marked
  vertices (re-exported from :mod:`repro.trees.cpt`, where it lives next to
  the RC-tree machinery it traverses).
- :class:`BatchIncrementalMSF` -- Section 4, Algorithm 2: the first
  work-efficient parallel batch-incremental minimum spanning forest,
  inserting ``l`` edges in ``O(l lg(1 + n/l))`` expected work and
  ``O(lg^2 n)`` span w.h.p. (Theorem 1.1).
- :class:`SequentialIncrementalMSF` -- the classical one-edge-at-a-time
  dynamic-trees algorithm [47], the baseline Algorithm 2 is work-efficient
  against.
"""

from repro.trees.cpt import CompressedPathTree, compressed_path_trees
from repro.core.batch_msf import BatchIncrementalMSF, InsertReport
from repro.core.sequential_msf import SequentialIncrementalMSF


def compressed_path_tree(forest, marked):
    """Compressed path tree of a :class:`~repro.trees.DynamicForest`.

    Convenience alias for ``forest.compressed_path_tree(marked)``.
    """
    return forest.compressed_path_tree(marked)


__all__ = [
    "BatchIncrementalMSF",
    "SequentialIncrementalMSF",
    "InsertReport",
    "CompressedPathTree",
    "compressed_path_tree",
    "compressed_path_trees",
]
