"""Sequential incremental MSF: the classical one-at-a-time algorithm.

Insertion of an edge ``e = (u, v)``: if ``u`` and ``v`` are in different
trees, link; otherwise find the heaviest edge on the tree path ``u--v``
(dynamic-trees path query [47]) and, if it is heavier than ``e``, swap.
``O(lg n)`` per edge -- the baseline Theorem 1.1 is work-efficient against,
and the l = 1 degenerate case of Algorithm 2.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.batch_msf import InsertReport
from repro.runtime.cost import CostModel
from repro.trees.forest import DynamicForest


class SequentialIncrementalMSF:
    """Incremental MSF processing edges one at a time (baseline).

    Exposes the same query interface and report semantics as
    :class:`~repro.core.BatchIncrementalMSF`; ``batch_insert`` simply loops,
    so its work is ``O(l lg n)`` and its span equals its work.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        engine: str | None = None,
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self.forest = DynamicForest(n, seed=seed, cost=self.cost, engine=engine)
        self.engine = self.forest.engine
        self._next_eid = 0
        self._seen_eids: set[int] = set()

    def insert(
        self, u: int, v: int, w: float, eid: int | None = None
    ) -> InsertReport:
        """Insert one edge; returns a report with at most one swap."""
        if eid is None:
            eid = self._next_eid
            self._next_eid += 1
        else:
            if eid < 0:
                raise ValueError(f"edge ids must be non-negative, got {eid}")
            if eid in self._seen_eids:
                raise ValueError(f"edge id {eid} was already inserted")
            self._next_eid = max(self._next_eid, eid + 1)
        self._seen_eids.add(eid)
        u, v, w = int(u), int(v), float(w)
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"endpoint out of range: ({u}, {v})")
        report = InsertReport()
        if u == v:
            report.rejected.append((u, v, w, eid))
            return report

        heaviest = self.forest.path_max(u, v)
        if heaviest is None and not self.forest.connected(u, v):
            self.forest.batch_link([(u, v, w, eid)])
            report.inserted.append((u, v, w, eid))
        elif heaviest is not None and (w, eid) < heaviest:
            old_w, old_eid = heaviest
            ou, ov, _ = self.forest.edge_info(old_eid)
            self.forest.batch_update(
                links=[(u, v, w, eid)], cut_eids=[old_eid]
            )
            report.inserted.append((u, v, w, eid))
            report.evicted.append((ou, ov, old_w, old_eid))
        else:
            report.rejected.append((u, v, w, eid))
        return report

    def batch_insert(self, edges: Iterable[Sequence]) -> InsertReport:
        """Insert edges one at a time (for interface parity with Alg. 2)."""
        out = InsertReport()
        for row in edges:
            r = self.insert(*row)
            out.inserted.extend(r.inserted)
            out.evicted.extend(r.evicted)
            out.rejected.extend(r.rejected)
        # An edge inserted earlier in the loop and evicted later in the same
        # call is neither inserted nor evicted from the caller's view.
        swapped = {e[3] for e in out.inserted} & {e[3] for e in out.evicted}
        if swapped:
            out.rejected.extend(e for e in out.inserted if e[3] in swapped)
            out.inserted = [e for e in out.inserted if e[3] not in swapped]
            out.evicted = [e for e in out.evicted if e[3] not in swapped]
        return out

    # -- queries (same surface as BatchIncrementalMSF) ---------------------

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are connected; O(lg n) w.h.p."""
        return self.forest.connected(u, v)

    def heaviest_edge(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest (weight, eid) on the MSF path; O(lg n) w.h.p."""
        return self.forest.path_max(u, v)

    def msf_edges(self) -> list[tuple[int, int, float, int]]:
        """The current MSF edge set (O(n))."""
        return self.forest.edges()

    def total_weight(self) -> float:
        """Total MSF weight (O(n))."""
        return sum(w for _, _, w, _ in self.forest.edges())

    @property
    def num_components(self) -> int:
        """Number of connected components (isolated vertices count)."""
        return self.forest.num_components

    @property
    def num_msf_edges(self) -> int:
        """Number of edges currently in the MSF."""
        return self.forest.num_edges
