"""Parallel batch-incremental minimum spanning forests (Section 4, Algorithm 2).

``BatchInsert(E+)``:

1. collect the distinct endpoints ``K`` of the batch (semisort);
2. build the compressed path trees ``C`` of the current MSF w.r.t. ``K``
   (Section 3) -- ``C`` summarises every cycle the new edges could close;
3. compute the MSF ``M`` of the O(l)-size graph ``C + E+`` with a linear
   work kernel (KKT, standing in for Cole-Klein-Tarjan);
4. delete from the maintained forest the base edges behind ``E(C) \\ E(M)``
   and insert ``E(M) ∩ E+`` (Theorem 4.1 proves the result is the MSF of
   ``G + E+``).

Total: ``O(l lg(1 + n/l))`` expected work, ``O(lg^2 n)`` span w.h.p.
(Theorem 4.2).  Weight ties break by edge id -- lower (older) id wins -- so
the maintained MSF is unique and insertion order cannot flip ties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.msf.graph import EdgeArray
from repro.msf.filter_kruskal import filter_kruskal_msf
from repro.msf.kkt import kkt_msf
from repro.msf.kruskal import kruskal_msf
from repro.msf.boruvka import boruvka_msf
from repro.msf.prim import prim_msf
from repro.obs.metrics import get_metrics
from repro.primitives.semisort import dedup_ints
from repro.runtime.cost import CostModel
from repro.trees.forest import DynamicForest

_KERNELS: dict[str, Callable] = {
    "kkt": kkt_msf,
    "kruskal": kruskal_msf,
    "filter-kruskal": filter_kruskal_msf,
    "boruvka": boruvka_msf,
    "prim": prim_msf,
}


@dataclass
class InsertReport:
    """Outcome of one ``BatchInsert``.

    Attributes:
        inserted: new edges that entered the MSF, as ``(u, v, w, eid)``.
        evicted: previously-held MSF edges displaced by the batch.
        rejected: new edges that did not enter (heaviest on some cycle).

    ``evicted + rejected`` is exactly the "replaced" edge set that the
    k-certificate construction of Section 5.4 cascades into the next forest.
    """

    inserted: list[tuple[int, int, float, int]] = field(default_factory=list)
    evicted: list[tuple[int, int, float, int]] = field(default_factory=list)
    rejected: list[tuple[int, int, float, int]] = field(default_factory=list)

    @property
    def replaced(self) -> list[tuple[int, int, float, int]]:
        """Evicted plus rejected: the k-certificate cascade set (Section 5.4)."""
        return self.evicted + self.rejected


class BatchIncrementalMSF:
    """Work-efficient batch-incremental MSF over vertices ``0..n-1``.

    Args:
        n: number of vertices.
        seed: seed for the randomized tree contraction underneath.
        cost: shared :class:`CostModel`; a fresh enabled one by default.
        kernel: static MSF kernel for the per-batch local graph -- one of
            ``"kkt"`` (default; expected linear work), ``"kruskal"``,
            ``"boruvka"``, ``"prim"``, or any callable with the same
            signature.
        engine: RC-tree engine for the underlying dynamic forest --
            ``"object"`` or ``"array"``; ``None`` defers to
            ``$REPRO_ENGINE`` and then the package default
            (:mod:`repro.trees.engine`).

    Edge ids: callers may pass explicit non-negative ids (must be unique
    over the structure's lifetime); otherwise ids are assigned from an
    increasing counter, which makes *older edges win weight ties* -- the
    convention the sliding-window layer relies on.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0x5EED,
        cost: CostModel | None = None,
        kernel: str | Callable = "kkt",
        compress_rule: str = "mr",
        engine: str | None = None,
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        # The empty-forest build is charged to its own phase so that every
        # unit of work on this model is attributed to a named phase (the
        # observability layer's sum-to-total invariant; docs/observability.md).
        with self.cost.phase("init", items=n):
            self.forest = DynamicForest(
                n,
                seed=seed,
                cost=self.cost,
                compress_rule=compress_rule,
                engine=engine,
            )
        self.engine = self.forest.engine
        if callable(kernel):
            self._kernel = kernel
        else:
            try:
                self._kernel = _KERNELS[kernel]
            except KeyError:
                raise ValueError(
                    f"unknown kernel {kernel!r}; pick from {sorted(_KERNELS)}"
                ) from None
        self._next_eid = 0
        self._seen_eids: set[int] = set()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _normalize(
        self, edges: Iterable[Sequence]
    ) -> tuple[list[tuple[int, int, float, int]], list[tuple[int, int, float, int]]]:
        batch: list[tuple[int, int, float, int]] = []
        rejected: list[tuple[int, int, float, int]] = []
        for row in edges:
            if len(row) == 3:
                u, v, w = row
                eid = self._next_eid
                self._next_eid += 1
            elif len(row) == 4:
                u, v, w, eid = row
                if eid < 0:
                    raise ValueError(f"edge ids must be non-negative, got {eid}")
                if eid in self._seen_eids:
                    raise ValueError(f"edge id {eid} was already inserted")
                self._next_eid = max(self._next_eid, eid + 1)
            else:
                raise ValueError("edges must be (u, v, w) or (u, v, w, eid)")
            u, v, w, eid = int(u), int(v), float(w), int(eid)
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise ValueError(f"endpoint out of range: ({u}, {v})")
            self._seen_eids.add(eid)
            if u == v:
                rejected.append((u, v, w, eid))  # self-loop: never in an MSF
            else:
                batch.append((u, v, w, eid))
        return batch, rejected

    def batch_insert(self, edges: Iterable[Sequence]) -> InsertReport:
        """Insert a batch of edges ``(u, v, w [, eid])``; returns the report.

        ``O(l lg(1 + n/l))`` expected work, ``O(lg^2 n)`` span w.h.p.
        """
        # Algorithm 2's four stages each run under a named phase span, so a
        # trace attributes every unit of the O(l lg(1 + n/l)) work to the
        # stage that charged it (see docs/observability.md).
        metrics = get_metrics()

        # Line 2: K <- endpoints of E+ (semisort/dedup).
        with self.cost.phase("semisort") as ph:
            batch, pre_rejected = self._normalize(edges)
            report = InsertReport(rejected=pre_rejected)
            ph.count(len(batch))
            if not batch:
                return report
            endpoints = np.fromiter(
                (x for u, v, _, _ in batch for x in (u, v)),
                dtype=np.int64,
                count=2 * len(batch),
            )
            marks = dedup_ints(endpoints, cost=self.cost)
        metrics.counter("batch_msf.batches").inc()
        metrics.histogram("batch_msf.batch_size").observe(len(batch))

        # Line 3: compressed path trees w.r.t. K.
        with self.cost.phase("cpt-build") as ph:
            cpt = self.forest.compressed_path_tree(marks.tolist())
            ph.count(cpt.num_vertices)

        # Line 4: MSF of C ∪ E+ on a dense local vertex relabeling.
        with self.cost.phase("msf-kernel") as ph:
            local_of = {v: i for i, v in enumerate(cpt.vertices)}
            rows = [
                (local_of[a], local_of[b], w, eid) for a, b, w, eid in cpt.edges
            ] + [(local_of[u], local_of[v], w, eid) for u, v, w, eid in batch]
            local = EdgeArray.from_tuples(len(local_of), rows)
            chosen = set(local.eid[self._kernel(local, cost=self.cost)].tolist())
            ph.count(len(rows))

        # Lines 5-6: RC.BatchDelete(E(C) \ E(M)); RC.BatchInsert(E(M) ∩ E+),
        # applied in one propagation pass over the dynamic forest.
        with self.cost.phase("forest-splice") as ph:
            cut_eids = [eid for _, _, _, eid in cpt.edges if eid not in chosen]
            links = [e for e in batch if e[3] in chosen]
            for eid in cut_eids:
                u, v, w = self.forest.edge_info(eid)
                report.evicted.append((u, v, w, eid))
            report.inserted.extend(links)
            report.rejected.extend(e for e in batch if e[3] not in chosen)
            self.forest.batch_update(links=links, cut_eids=cut_eids)
            ph.count(len(links) + len(cut_eids))
        metrics.counter("batch_msf.inserted").inc(len(report.inserted))
        metrics.counter("batch_msf.evicted").inc(len(report.evicted))
        return report

    def forget_edges(self, eids: Sequence[int]) -> None:
        """Cut MSF edges without replacement.

        This is *not* a general dynamic deletion -- it is the eager-expiry
        primitive of the sliding-window layer (Theorem 5.2), valid there
        because the recent-edge property guarantees any replacement edge
        would already have been kept in the forest.
        """
        eids = list(eids)
        with self.cost.phase("forest-splice", items=len(eids)):
            self.forest.batch_cut(eids)
        get_metrics().counter("batch_msf.expired").inc(len(eids))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def connected(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are connected; O(lg n) w.h.p."""
        return self.forest.connected(u, v)

    def heaviest_edge(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest ``(weight, eid)`` on the MSF path ``u--v`` (O(lg n))."""
        return self.forest.path_max(u, v)

    def batch_heaviest_edges(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[tuple[float, int] | None]:
        """Heaviest ``(weight, eid)`` per queried path in one shared sweep.

        This is where Theorem 3.2 pays off on the read path: ``l`` path
        queries share one ``O(l lg(1 + n/l))`` expected-work traversal
        (the forest's ``batch-query`` sweep -- all endpoints climb the RC
        tree together, merging walks at common ancestors) instead of
        ``l`` independent ``O(lg n)`` two-vertex CPT builds.  Entries are
        ``None`` for disconnected pairs and for ``u == v``.
        """
        pairs = [(int(u), int(v)) for u, v in pairs]
        if not pairs:
            return []
        out = self.forest.batch_path_max(pairs)
        get_metrics().counter("batch_msf.path_queries").inc(len(pairs))
        return out

    def batch_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Connectivity per queried pair in one shared root-walk sweep
        (``O(l lg(1 + n/l))`` expected work for ``l`` pairs; see
        :meth:`batch_heaviest_edges`)."""
        pairs = [(int(u), int(v)) for u, v in pairs]
        if not pairs:
            return []
        out = self.forest.batch_connected(pairs)
        get_metrics().counter("batch_msf.path_queries").inc(len(pairs))
        return out

    def msf_edges(self) -> list[tuple[int, int, float, int]]:
        """The current MSF edge set (O(n))."""
        return self.forest.edges()

    def has_edge(self, eid: int) -> bool:
        """Whether ``eid`` is currently an MSF edge."""
        return self.forest.has_edge(eid)

    def total_weight(self) -> float:
        """Total MSF weight (O(n); maintained structures keep it exact)."""
        return sum(w for _, _, w, _ in self.forest.edges())

    @property
    def num_components(self) -> int:
        """Number of connected components (isolated vertices count)."""
        return self.forest.num_components

    @property
    def num_msf_edges(self) -> int:
        """Number of edges currently in the MSF."""
        return self.forest.num_edges
