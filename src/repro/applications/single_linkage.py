"""Incremental single-linkage clustering.

Single-linkage agglomerative clustering over a dissimilarity graph is
determined by its minimum spanning forest: two points belong to the same
cluster at threshold ``theta`` iff the heaviest edge on their MSF path is
at most ``theta``, and the dendrogram's merge heights are exactly the MSF
edge weights.  Maintaining the MSF with Algorithm 2 therefore gives
*batch-incremental* single-linkage: new similarity measurements arrive in
batches of ``l`` at ``O(l lg(1 + n/l))`` expected work, and all queries run
in ``O(lg n)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.batch_msf import BatchIncrementalMSF
from repro.orderedset.treap import Treap
from repro.runtime.cost import CostModel


class SingleLinkageClustering:
    """Single-linkage clustering over ``n`` points under batch edge arrival.

    Edges are dissimilarities ``(u, v, d)`` with ``d >= 0``; lower means
    more similar.  Next to the MSF, an ordered set of MSF edge weights
    supports O(lg n) cluster counting at any threshold.
    """

    def __init__(
        self, n: int, seed: int = 0x5EED, cost: CostModel | None = None
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self._msf = BatchIncrementalMSF(n, seed=seed, cost=self.cost)
        self._heights = Treap(cost=self.cost)  # (weight, eid) -> None

    def batch_insert(self, edges: Iterable[Sequence]) -> None:
        """Insert dissimilarity edges ``(u, v, d)``;
        ``O(l lg(1 + n/l))`` expected work."""
        edges = list(edges)
        for u, v, d in edges:
            if d < 0:
                raise ValueError(f"dissimilarities must be non-negative, got {d}")
        report = self._msf.batch_insert(edges)
        self._heights.insert_many(((w, eid), None) for _, _, w, eid in report.inserted)
        self._heights.delete_many((w, eid) for _, _, w, eid in report.evicted)

    # -- queries -----------------------------------------------------------

    def merge_distance(self, u: int, v: int) -> float:
        """The threshold at which ``u`` and ``v`` first share a cluster
        (``inf`` if currently in different components); O(lg n)."""
        if u == v:
            return 0.0
        heaviest = self._msf.heaviest_edge(u, v)
        return math.inf if heaviest is None else heaviest[0]

    def same_cluster(self, u: int, v: int, theta: float) -> bool:
        """Whether ``u`` and ``v`` are single-linkage-merged at ``theta``."""
        return self.merge_distance(u, v) <= theta

    def num_clusters(self, theta: float) -> int:
        """Number of clusters at threshold ``theta``; O(lg n).

        Each MSF edge of weight <= theta merges two clusters, so the count
        is ``n`` minus the number of such edges (an order-statistic query
        on the weight treap).
        """
        return self.n - self._heights.rank((theta, math.inf))

    def merge_heights(self) -> list[float]:
        """The dendrogram's merge heights in increasing order (O(n))."""
        return [w for (w, _), _ in self._heights.items()]

    def clusters(self, theta: float) -> list[list[int]]:
        """The full partition at ``theta`` (O(n alpha(n)) -- listing is
        inherently linear)."""
        parent = list(range(self.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v, w, _ in self._msf.msf_edges():
            if w <= theta:
                ru, rv = find(u), find(v)
                if ru != rv:
                    parent[ru] = rv
        groups: dict[int, list[int]] = {}
        for x in range(self.n):
            groups.setdefault(find(x), []).append(x)
        return sorted(groups.values())

    @property
    def num_components(self) -> int:
        """Clusters at threshold infinity."""
        return self._msf.num_components
