"""Minimax (bottleneck) and maximin (widest) path queries under batch
edge insertion.

Textbook facts driving both structures:

- The *minimax* path value between ``u`` and ``v`` (minimize, over all
  paths, the maximum edge weight) equals the heaviest edge on their
  **minimum** spanning tree path.
- Dually, the *maximin* / widest-path value (maximize the minimum edge --
  e.g. the best guaranteed bandwidth of a route) equals the lightest edge
  on their **maximum** spanning tree path, which we maintain by negating
  weights in a second batch-incremental MSF.

Both therefore inherit Theorem 1.1's bounds: batches of ``l`` edges in
``O(l lg(1 + n/l))`` expected work, queries in ``O(lg n)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.batch_msf import BatchIncrementalMSF
from repro.runtime.cost import CostModel


class BottleneckPaths:
    """Minimax path values over a growing graph.

    ``bottleneck(u, v)`` is the smallest ``B`` such that ``u`` and ``v``
    are connected using only edges of weight <= ``B`` -- the quantity that
    matters when edge weight is a cost ceiling (max grade on a route, max
    latency of a hop, ...).
    """

    def __init__(
        self, n: int, seed: int = 0x5EED, cost: CostModel | None = None
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self._msf = BatchIncrementalMSF(n, seed=seed, cost=self.cost)

    def batch_insert(self, edges: Iterable[Sequence]) -> None:
        """Insert edges ``(u, v, w)``; ``O(l lg(1 + n/l))`` expected work."""
        self._msf.batch_insert(edges)

    def bottleneck(self, u: int, v: int) -> tuple[float, int] | None:
        """The minimax value and the edge realising it, or ``None`` if
        disconnected (``(-inf, -1)`` for ``u == v``); O(lg n)."""
        if u == v:
            return (float("-inf"), -1)
        return self._msf.heaviest_edge(u, v)

    def reachable_within(self, u: int, v: int, bound: float) -> bool:
        """Whether a ``u``-``v`` path exists with every edge <= ``bound``."""
        b = self.bottleneck(u, v)
        return b is not None and b[0] <= bound

    @property
    def num_components(self) -> int:
        """Connected components of the inserted graph."""
        return self._msf.num_components


class WidestPaths:
    """Maximin (widest) path values: the best guaranteed capacity of any
    route between two vertices.

    Maintained as a minimum spanning forest over negated capacities (a
    maximum spanning forest of the capacities), so the widest-path value is
    the negated heaviest edge on the stored path.
    """

    def __init__(
        self, n: int, seed: int = 0x5EED, cost: CostModel | None = None
    ) -> None:
        self.n = n
        self.cost = cost if cost is not None else CostModel()
        self._msf = BatchIncrementalMSF(n, seed=seed, cost=self.cost)

    def batch_insert(self, edges: Iterable[Sequence]) -> None:
        """Insert capacity edges ``(u, v, capacity)``."""
        rows = []
        for row in edges:
            if len(row) == 3:
                u, v, c = row
                rows.append((u, v, -float(c)))
            else:
                u, v, c, eid = row
                rows.append((u, v, -float(c), eid))
        self._msf.batch_insert(rows)

    def widest_path(self, u: int, v: int) -> tuple[float, int] | None:
        """The maximin capacity and the edge realising it, or ``None`` if
        disconnected (``(inf, -1)`` for ``u == v``); O(lg n)."""
        if u == v:
            return (float("inf"), -1)
        heaviest = self._msf.heaviest_edge(u, v)
        if heaviest is None:
            return None
        neg_c, eid = heaviest
        return (-neg_c, eid)

    def supports_demand(self, u: int, v: int, demand: float) -> bool:
        """Whether some route carries at least ``demand`` end to end."""
        w = self.widest_path(u, v)
        return w is not None and w[0] >= demand

    @property
    def num_components(self) -> int:
        """Connected components of the inserted graph."""
        return self._msf.num_components
