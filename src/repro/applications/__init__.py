"""Applications of the batch-incremental MSF beyond Section 5.

The paper's conclusion invites "other applications of our batch-incremental
MST algorithm, or possibly even the compressed path tree by itself"; this
package provides two classical ones that fall out directly:

- :class:`SingleLinkageClustering` -- incremental single-linkage (the
  dendrogram *is* the MSF): batch-insert similarity edges, then query
  cluster membership, merge distances and cluster counts at any threshold
  in O(lg n).
- :class:`BottleneckPaths` / :class:`WidestPaths` -- minimax and maximin
  path queries under batch edge insertion, via the textbook fact that the
  minimax path value between two vertices equals the heaviest edge on
  their minimum-spanning-tree path (and dually for widest paths on the
  maximum spanning tree).
"""

from repro.applications.single_linkage import SingleLinkageClustering
from repro.applications.paths import BottleneckPaths, WidestPaths

__all__ = ["SingleLinkageClustering", "BottleneckPaths", "WidestPaths"]
