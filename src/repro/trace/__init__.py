"""Trace capture and deterministic replay for the streaming service.

The subsystem that turns benchmarks from one-off numbers into
replayable regression gates (ROADMAP item 4):

- :mod:`repro.trace.record` -- the versioned, CRC-checked JSONL trace
  format (the WAL's crash contract applied to workloads);
- :mod:`repro.trace.recorder` -- the live capture hook
  ``ServiceConfig(recorder=...)`` / ``QueryService(recorder=...)``
  attach to a running pipeline;
- :mod:`repro.trace.replay` -- the deterministic replayer driving any
  service configuration through a recorded workload at 1x/Nx speed
  under seeded virtual time, with byte-identity oracles;
- :mod:`repro.trace.control` -- the adaptive-ops loop (flush deadline
  and replication budget tuned from observed p99s) whose decisions are
  themselves trace events.

``scripts/gate.py`` builds the CI regression gates on top; the format
and contracts are documented in ``docs/tracing.md``.
"""

from repro.trace.control import (
    AdaptiveController,
    ControlConfig,
    Decision,
    ScriptedController,
)
from repro.trace.record import (
    TRACE_SCHEMA,
    TraceCorruption,
    TraceEvent,
    TraceWriter,
    decode_event,
    encode_event,
    ops_from_json,
    ops_to_json,
    read_trace,
    trace_summary,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import (
    ReplayConfig,
    ReplayResult,
    TraceReplayer,
    VirtualClock,
    factory_from_meta,
    replay_trace,
    state_fingerprint,
    trace_oracle,
)

__all__ = [
    "TRACE_SCHEMA",
    "AdaptiveController",
    "ControlConfig",
    "Decision",
    "ReplayConfig",
    "ReplayResult",
    "ScriptedController",
    "TraceCorruption",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "TraceWriter",
    "VirtualClock",
    "decode_event",
    "encode_event",
    "factory_from_meta",
    "ops_from_json",
    "ops_to_json",
    "read_trace",
    "replay_trace",
    "state_fingerprint",
    "trace_oracle",
    "trace_summary",
]
