"""Adaptive ops: tune service knobs from replayed (or live) load.

The service's knobs -- flush deadline, follower replication budget --
have been static since they existed; this module closes the loop.
:class:`AdaptiveController` watches per-round wall latency and follower
lag during a run and nudges two knobs toward their SLO targets:

- **flush interval** (the micro-batching deadline): when round p99
  latency is over target, shrink the deadline so batches flush sooner
  and each commit is cheaper; when comfortably under, grow it to win
  back batching efficiency.  Multiplicative-decrease / additive-ish
  increase, clamped to a configured band.
- **replication budget** (records a follower may catch up per tick):
  when observed lag p99 exceeds target, grow the budget; when lag stays
  at zero, shrink it to stop stealing cycles from the primary.

Every decision is appended to :attr:`AdaptiveController.decisions` and,
when a recorder is attached, written to the trace as a ``control``
event -- so a tuning run's knob trajectory is itself a durable,
replayable artifact.  :class:`ScriptedController` is the replay side:
built from a recorded trace's control events, it re-applies each
decision at the same event sequence number, making an adaptive run
deterministic after the fact.

Decisions fire on a fixed cadence (every ``window`` observed rounds),
using the p99 of the window just closed, so the controller's behaviour
is a pure function of the observation sequence -- no wall clocks, no
randomness -- which is what makes the scripted replay exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.trace.record import TraceEvent


def p99(samples: Sequence[float]) -> float:
    """The p99 of ``samples`` (nearest-rank; 0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(0.99 * len(ordered))))
    return ordered[rank]


@dataclass(frozen=True)
class ControlConfig:
    """Targets and bounds for the adaptive loop.

    ``window`` rounds are observed between decisions; latency targets
    are milliseconds of per-round wall time, lag targets are rounds of
    follower staleness.  The min/max pairs clamp each knob.
    """

    window: int = 16
    target_p99_ms: float = 5.0
    min_flush_interval: float = 0.001
    max_flush_interval: float = 0.25
    target_lag_p99: float = 4.0
    min_budget: int = 8
    max_budget: int = 4096


@dataclass(frozen=True)
class Decision:
    """One knob change: what moved, to what, and the observation why."""

    seq: int
    knob: str
    value: float
    observed: float
    reason: str


class AdaptiveController:
    """Closed-loop tuner for flush deadline and replication budget.

    Drive it with :meth:`observe_round` (per committed round) and
    :meth:`observe_lag` (per replication tick), then call
    :meth:`on_event` with the current trace sequence number; every
    ``window`` rounds it emits zero or more :class:`Decision`\\ s and
    updates :attr:`flush_interval` / :attr:`budget` in place.  The
    caller applies those attributes to the live config.
    """

    def __init__(
        self,
        config: ControlConfig | None = None,
        flush_interval: float = 0.05,
        budget: int = 64,
        recorder=None,
    ) -> None:
        self.config = config or ControlConfig()
        self.flush_interval = float(flush_interval)
        self.budget = int(budget)
        self.decisions: list[Decision] = []
        self._recorder = recorder
        self._round_ms: list[float] = []
        self._lag: list[float] = []
        self._rounds_seen = 0

    def observe_round(self, wall_ms: float) -> None:
        """Feed one committed round's wall latency in milliseconds."""
        self._round_ms.append(float(wall_ms))
        self._rounds_seen += 1

    def observe_lag(self, lag_rounds: float) -> None:
        """Feed one follower-lag sample (rounds behind the primary)."""
        self._lag.append(float(lag_rounds))

    def _decide(self, seq: int, knob: str, value: float, observed: float, reason: str) -> None:
        decision = Decision(
            seq=seq, knob=knob, value=value, observed=observed, reason=reason
        )
        self.decisions.append(decision)
        if self._recorder is not None:
            self._recorder.record_control(
                knob, value, reason=reason, observed=observed, at=seq
            )

    def on_event(self, seq: int) -> list[Decision]:
        """Run the decision cadence; returns the decisions just made.

        Call after each processed trace event with its ``seq``.  Fires
        only when a full observation window of rounds has accumulated
        since the last firing.
        """
        cfg = self.config
        if self._rounds_seen < cfg.window:
            return []
        before = len(self.decisions)

        lat = p99(self._round_ms)
        if lat > cfg.target_p99_ms:
            proposed = max(cfg.min_flush_interval, self.flush_interval * 0.5)
            if proposed != self.flush_interval:
                self.flush_interval = proposed
                self._decide(
                    seq,
                    "flush_interval",
                    proposed,
                    lat,
                    f"round p99 {lat:.2f}ms over target "
                    f"{cfg.target_p99_ms:.2f}ms: flush sooner",
                )
        elif lat < cfg.target_p99_ms * 0.5:
            proposed = min(cfg.max_flush_interval, self.flush_interval * 1.25)
            if proposed != self.flush_interval:
                self.flush_interval = proposed
                self._decide(
                    seq,
                    "flush_interval",
                    proposed,
                    lat,
                    f"round p99 {lat:.2f}ms well under target: "
                    "batch longer",
                )

        if self._lag:
            lag = p99(self._lag)
            if lag > cfg.target_lag_p99:
                proposed_b = min(cfg.max_budget, max(self.budget * 2, 1))
                if proposed_b != self.budget:
                    self.budget = proposed_b
                    self._decide(
                        seq,
                        "budget",
                        float(proposed_b),
                        lag,
                        f"lag p99 {lag:.1f} rounds over target "
                        f"{cfg.target_lag_p99:.1f}: grow catch-up budget",
                    )
            elif lag == 0.0:
                proposed_b = max(cfg.min_budget, self.budget // 2)
                if proposed_b != self.budget:
                    self.budget = proposed_b
                    self._decide(
                        seq,
                        "budget",
                        float(proposed_b),
                        lag,
                        "followers fully caught up: shrink budget",
                    )

        self._round_ms.clear()
        self._lag.clear()
        self._rounds_seen = 0
        return self.decisions[before:]


class ScriptedController:
    """Replays a recorded controller's decisions at the same seqs.

    Built from a trace's ``control`` events, it exposes the same
    ``flush_interval`` / ``budget`` attributes and ``observe_*`` /
    ``on_event`` surface as :class:`AdaptiveController`, but ignores
    observations entirely: at each :meth:`on_event` it applies exactly
    the knob values the original run recorded at or before that
    sequence number.  This is what makes an adaptive tuning run
    reproducible -- replay the trace with the scripted controller and
    the knob trajectory is identical by construction.
    """

    def __init__(
        self,
        events: Sequence[TraceEvent],
        flush_interval: float = 0.05,
        budget: int = 64,
    ) -> None:
        self.flush_interval = float(flush_interval)
        self.budget = int(budget)
        self.decisions: list[Decision] = []
        self._script: list[Decision] = [
            Decision(
                seq=int(ev.body.get("at", ev.seq)),
                knob=str(ev.body["knob"]),
                value=float(ev.body["value"]),
                observed=float(ev.body.get("observed", 0.0)),
                reason=str(ev.body.get("reason", "")),
            )
            for ev in events
            if ev.kind == "control"
        ]
        self._cursor = 0

    def observe_round(self, wall_ms: float) -> None:  # noqa: ARG002
        """Ignored: the script already knows every decision."""

    def observe_lag(self, lag_rounds: float) -> None:  # noqa: ARG002
        """Ignored: the script already knows every decision."""

    def on_event(self, seq: int) -> list[Decision]:
        """Apply every scripted decision recorded at or before ``seq``."""
        applied: list[Decision] = []
        while (
            self._cursor < len(self._script)
            and self._script[self._cursor].seq <= seq
        ):
            d = self._script[self._cursor]
            if d.knob == "flush_interval":
                self.flush_interval = d.value
            elif d.knob == "budget":
                self.budget = int(d.value)
            self.decisions.append(d)
            applied.append(d)
            self._cursor += 1
        return applied
