"""Live trace capture: the hook object services call into.

:class:`TraceRecorder` is what gets attached to a running pipeline --
``ServiceConfig(recorder=...)`` records every committed ingest round
from inside :meth:`StreamService._commit`, and
``QueryService(recorder=...)`` records every answered read batch -- and
it turns those callbacks into durable trace events via
:class:`repro.trace.record.TraceWriter`.

Design constraints, in order:

- **Capture must not perturb the recorded system.**  The recorder holds
  its own file and its own lock; a record call is one JSON encode and
  one buffered append, no fsync by default (a trace is a measurement
  artifact, not the durability story -- the WAL is).  Pass
  ``fsync=True`` when a trace must survive the chaos driver's simulated
  crashes (the torn tail is repaired on reopen either way).
- **Timestamps are relative and monotonic.**  The recorder stamps each
  event with integer microseconds since its own construction, from an
  injectable ``clock`` (default ``time.monotonic``), so traces are
  location-independent and tests can drive virtual time.
- **Duck typing, no import cycle.**  ``repro.service`` must not import
  ``repro.trace`` (traces sit *above* the service, like chaos does), so
  ``ServiceConfig.recorder`` is typed ``Any`` and the service calls
  ``recorder.record_round(...)`` / ``recorder.record_read(...)``
  blindly.  Anything with those methods records; this class is the one
  that writes trace files.

The chaos composition rule: the recorder hook lives in the *commit*
path only (after the WAL append succeeds), never in recovery replay, so
a trace captured under a chaos schedule of primary kills contains each
surviving round exactly once -- the crashed attempt's round was never
durable, and the retried round records once on the new primary.  That
is what makes a chaos-recorded trace replayable against the fault-free
oracle (see ``tests/test_trace_replay.py``).
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Callable, Sequence

from repro.obs.metrics import get_metrics
from repro.service.storage import StorageIO
from repro.service.wal import Op
from repro.trace.record import TraceEvent, TraceWriter, ops_to_json


class TraceRecorder:
    """Thread-safe trace capture into one ``.trace.jsonl`` file.

    Parameters
    ----------
    path:
        Trace file to create or resume (torn tail repaired on open).
    meta:
        Header metadata for a fresh trace -- record whatever is needed
        to rebuild the recording config (structure factory, ``n``,
        seed, engine); the replayer and gate read it back.
    clock:
        Zero-argument callable returning seconds (monotonic).  Events
        are stamped ``int((clock() - t0) * 1e6)`` microseconds.
    fsync:
        Fsync every event (crash-durable capture, e.g. under chaos).
    io:
        :class:`~repro.service.storage.StorageIO` seam for fault tests.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        meta: dict | None = None,
        clock: Callable[[], float] = time.monotonic,
        fsync: bool = False,
        io: StorageIO | None = None,
    ) -> None:
        self._writer = TraceWriter(path, meta=meta, fsync=fsync, io=io)
        self._clock = clock
        self._t0 = clock()
        self._lock = threading.Lock()

    @property
    def path(self) -> pathlib.Path:
        """Where the trace is being written."""
        return self._writer.path

    @property
    def meta(self) -> dict:
        """The trace header metadata (shared with the file)."""
        return self._writer.meta

    @property
    def events_recorded(self) -> int:
        """Events durable in the trace so far (including resumed ones)."""
        return self._writer.next_seq

    def _now_us(self) -> int:
        return int((self._clock() - self._t0) * 1e6)

    def _append(self, kind: str, body: dict) -> TraceEvent:
        with self._lock:
            ev = self._writer.append(self._now_us(), kind, body)
        get_metrics().counter("trace.events_recorded").inc()
        return ev

    def record_round(self, lsn: int, ops: Sequence[Op]) -> TraceEvent:
        """Record one committed ingest round (the service commit hook).

        ``lsn`` is the WAL position the round committed as; ``ops`` is
        the flushed op list in WAL order.  Called by
        :meth:`StreamService._commit` after the append succeeds.
        """
        return self._append(
            "write", {"lsn": int(lsn), "ops": ops_to_json(ops)}
        )

    def record_read(
        self,
        queries: Sequence,
        at_least: int | None = None,
        max_staleness: int | None = None,
    ) -> TraceEvent:
        """Record one answered query batch (the QueryService hook).

        ``queries`` is the batch as ``(kind, args...)`` tuples;
        ``at_least`` / ``max_staleness`` are the consistency bounds the
        caller requested, so the replayer reissues the read with the
        same semantics.
        """
        body: dict = {"queries": [list(q) for q in queries]}
        if at_least is not None:
            body["at_least"] = int(at_least)
        if max_staleness is not None:
            body["max_staleness"] = int(max_staleness)
        return self._append("read", body)

    def record_control(
        self,
        knob: str,
        value: float,
        reason: str = "",
        observed: float | None = None,
        at: int | None = None,
    ) -> TraceEvent:
        """Record one adaptive-controller decision (knob, new value, why).

        ``at`` anchors the decision to the workload-trace event sequence
        number that triggered it, so a tuning run recorded into a *side*
        trace still replays decision-for-decision via
        :class:`repro.trace.control.ScriptedController` (which reads
        ``body["at"]``, falling back to the control event's own seq when
        decisions were recorded inline with the workload).
        """
        body: dict = {"knob": knob, "value": value, "reason": reason}
        if observed is not None:
            body["observed"] = observed
        if at is not None:
            body["at"] = int(at)
        return self._append("control", body)

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        with self._lock:
            self._writer.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
