"""The trace format: a versioned, CRC-checked JSONL event log.

A *trace* is the workload twin of the WAL: where the WAL records what the
service **committed**, a trace records what clients **asked for** -- write
rounds with their arrival timestamps, read batches with their consistency
levels, and (for tuning runs) the adaptive controller's knob decisions --
so a benchmark or soak can be replayed, at any speed, against any
:class:`~repro.service.service.ServiceConfig`, instead of re-rolling a
synthetic generator and hoping it exercises the same code paths.

The on-disk format follows the WAL's crash contract exactly (one JSON
record per line, a schema header, CRC32 over the canonical body, torn
tail repaired on open):

    {"trace": "repro.trace/v1", "meta": {...}}
    {"seq": 0, "t_us": 0, "kind": "write", "body": {...}, "crc": ...}
    {"seq": 1, "t_us": 5000, "kind": "read", "body": {...}, "crc": ...}

Event kinds:

- ``write``: one committed ingest round -- ``body["ops"]`` is the WAL op
  list (``["i", edges]`` / ``["e", delta]``) and ``body["lsn"]`` the LSN
  it committed as on the recording service;
- ``read``: one answered query batch -- ``body["queries"]`` plus the
  requested consistency (``at_least`` token / ``max_staleness`` bound);
- ``control``: one adaptive-ops decision -- ``body["knob"]``,
  ``body["value"]``, the triggering observation, and a human reason, so
  a tuning run is reproducible from its own trace
  (:class:`repro.trace.control.ScriptedController` replays them).

Timestamps are integer **microseconds since the trace started**
(``t_us``), monotone non-decreasing; the replayer divides them by the
replay speed to get virtual arrival times.  All durable bytes route
through the :class:`~repro.service.storage.StorageIO` seam, so the trace
writer is testable under :class:`~repro.chaos.faults.FaultyIO` like every
other durable component.

Crash semantics (mirroring ``repro.service.wal``):

- an event is durable once its line, trailing newline included, is on
  disk;
- a final line missing its newline is a *torn tail* from a crash
  mid-append: :class:`TraceWriter` repairs it on open by truncating back
  to the last durable event, and :func:`read_trace` silently stops
  before it;
- a bad record anywhere before the tail raises :class:`TraceCorruption`.
"""

from __future__ import annotations

import json
import pathlib
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.service.storage import REAL_IO, StorageIO
from repro.service.wal import OP_EXPIRE, OP_INSERT, Op

TRACE_SCHEMA = "repro.trace/v1"

#: Event kinds a v1 trace may contain.
EVENT_KINDS = ("write", "read", "control")


class TraceCorruption(RuntimeError):
    """A non-tail trace record failed to decode: the file was damaged."""


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: a sequence number, arrival time, kind, and body."""

    seq: int
    t_us: int
    kind: str
    body: dict = field(default_factory=dict)


def ops_to_json(ops: Sequence[Op]) -> list[list]:
    """WAL ops as the JSON shape traces and the WAL share."""
    out: list[list] = []
    for kind, payload in ops:
        if kind == OP_INSERT:
            out.append([kind, [list(e) for e in payload]])
        elif kind == OP_EXPIRE:
            out.append([kind, int(payload)])
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return out


def ops_from_json(ops_json: Sequence) -> tuple[Op, ...]:
    """The inverse of :func:`ops_to_json` (tuples, ready for apply_ops)."""
    ops: list[Op] = []
    for entry in ops_json:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise ValueError(f"malformed trace op {entry!r}")
        kind, payload = entry
        if kind == OP_INSERT:
            ops.append((OP_INSERT, tuple(tuple(e) for e in payload)))
        elif kind == OP_EXPIRE:
            ops.append((OP_EXPIRE, int(payload)))
        else:
            raise ValueError(f"unknown op kind {kind!r}")
    return tuple(ops)


def _canonical(seq: int, t_us: int, kind: str, body: dict) -> str:
    return json.dumps(
        [seq, t_us, kind, body], separators=(",", ":"), sort_keys=True
    )


def encode_event(event: TraceEvent) -> str:
    """One trace line (no trailing newline) for ``event``."""
    if event.kind not in EVENT_KINDS:
        raise ValueError(f"unknown trace event kind {event.kind!r}")
    crc = zlib.crc32(
        _canonical(event.seq, event.t_us, event.kind, event.body).encode()
    )
    return json.dumps(
        {
            "seq": event.seq,
            "t_us": event.t_us,
            "kind": event.kind,
            "body": event.body,
            "crc": crc,
        },
        separators=(",", ":"),
        sort_keys=True,
    )


def decode_event(line: str) -> TraceEvent | None:
    """Parse one trace line; ``None`` when it is torn or corrupt."""
    try:
        doc = json.loads(line)
        seq = doc["seq"]
        t_us = doc["t_us"]
        kind = doc["kind"]
        body = doc["body"]
        crc = doc["crc"]
    except (ValueError, KeyError, TypeError):
        return None
    if kind not in EVENT_KINDS or not isinstance(body, dict):
        return None
    if zlib.crc32(_canonical(seq, t_us, kind, body).encode()) != crc:
        return None
    return TraceEvent(seq=int(seq), t_us=int(t_us), kind=kind, body=body)


def _parse_header(line: bytes) -> dict | None:
    """The trace meta dict, or ``None`` when the header is invalid."""
    try:
        header = json.loads(line)
    except ValueError:
        return None
    if not isinstance(header, dict) or header.get("trace") != TRACE_SCHEMA:
        return None
    meta = header.get("meta", {})
    return meta if isinstance(meta, dict) else None


def read_trace(
    path: str | pathlib.Path, io: StorageIO | None = None
) -> tuple[dict, list[TraceEvent]]:
    """Every durable event of the trace at ``path``, with its meta dict.

    A torn tail (crash mid-append) is ignored, exactly as the WAL reader
    does; a corrupt record *before* the tail, a bad header, a ``seq``
    gap, or a timestamp that goes backwards raises
    :class:`TraceCorruption` -- those mean the file was edited, not torn.
    """
    meta, events, _ = _scan(pathlib.Path(path), io or REAL_IO)
    return meta, events


def _scan(
    path: pathlib.Path, io: StorageIO
) -> tuple[dict, list[TraceEvent], int]:
    """``(meta, events, good_bytes)`` of the durable prefix at ``path``."""
    if not path.exists():
        return {}, [], 0
    raw = io.read_bytes(path)
    events: list[TraceEvent] = []
    meta: dict | None = None
    good = 0
    for line in raw.split(b"\n"):
        end = good + len(line) + 1
        if not line:
            good = min(end, len(raw))
            continue
        if end > len(raw):
            break  # torn tail: the append that wrote it never finished
        if meta is None:
            meta = _parse_header(line)
            if meta is None:
                raise TraceCorruption(f"{path}: missing or bad trace header")
            good = end
            continue
        ev = decode_event(line.decode("utf-8", errors="replace"))
        if ev is None:
            raise TraceCorruption(
                f"{path}: corrupt record after {len(events)} good events"
            )
        if ev.seq != len(events):
            raise TraceCorruption(
                f"{path}: seq gap, expected {len(events)} got {ev.seq}"
            )
        if events and ev.t_us < events[-1].t_us:
            raise TraceCorruption(
                f"{path}: time went backwards at seq {ev.seq} "
                f"({events[-1].t_us} -> {ev.t_us})"
            )
        events.append(ev)
        good = end
    return meta or {}, events, min(good, len(raw))


class TraceWriter:
    """Appendable trace handle with the WAL's torn-tail repair on open.

    Opening an existing trace scans it, truncates a torn tail back to the
    last durable event, and resumes the ``seq`` sequence; opening a fresh
    path writes the schema header with ``meta``.  ``append`` follows the
    WAL append contract: on any failure (transient error, torn write,
    failed fsync) the file is truncated back to the durable prefix before
    the exception propagates, so a retry appends onto a clean tail.

    Not thread-safe by itself; :class:`repro.trace.recorder.TraceRecorder`
    adds the lock (and the clock).
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        meta: dict | None = None,
        fsync: bool = False,
        io: StorageIO | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._io = io or REAL_IO
        found_meta, events, good = _scan(self.path, self._io)
        if self.path.exists() and good < self.path.stat().st_size:
            with self.path.open("r+b") as f:
                self._io.truncate(f, good)
                if fsync:
                    self._io.fsync(f)
        self.meta = found_meta if events or good else dict(meta or {})
        self._next_seq = len(events)
        self._last_t_us = events[-1].t_us if events else 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = self.path.open("ab")
        self._good = 0 if fresh else good
        if fresh:
            header = (
                json.dumps(
                    {"trace": TRACE_SCHEMA, "meta": self.meta},
                    separators=(",", ":"),
                    sort_keys=True,
                )
                + "\n"
            ).encode("utf-8")
            try:
                self._io.append(self._f, header)
                if fsync:
                    self._io.fsync(self._f)
                    self._io.fsync_dir(self.path.parent)
            except Exception:
                # A torn header self-repairs on the next open (no newline-
                # terminated header -> truncate to zero, rewrite).
                self._f.close()
                raise
            self._good = len(header)

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will carry."""
        return self._next_seq

    @property
    def bytes_written(self) -> int:
        """Durable size of the trace file in bytes."""
        return self._good if not self._f.closed else self.path.stat().st_size

    def append(self, t_us: int, kind: str, body: dict) -> TraceEvent:
        """Append one event; returns it once the line is durable.

        ``t_us`` is clamped monotone (arrival times never go backwards);
        on any write failure the file is repaired back to the durable
        prefix before the exception propagates.
        """
        if self._f.closed:
            raise ValueError("trace writer is closed")
        ev = TraceEvent(
            seq=self._next_seq,
            t_us=max(int(t_us), self._last_t_us),
            kind=kind,
            body=body,
        )
        line = (encode_event(ev) + "\n").encode("utf-8")
        try:
            self._io.append(self._f, line)
            if self.fsync:
                self._io.fsync(self._f)
        except Exception:
            self._io.truncate(self._f, self._good)
            raise
        self._good += len(line)
        self._next_seq += 1
        self._last_t_us = ev.t_us
        return ev

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._f.closed:
            self._f.flush()
            self._f.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def trace_summary(path: str | pathlib.Path) -> dict:
    """One-glance stats of a trace file (event counts per kind, span).

    Returns zeros for a missing or empty trace; raises
    :class:`TraceCorruption` for a damaged one, like :func:`read_trace`.
    """
    meta, events = read_trace(path)
    counts = {k: 0 for k in EVENT_KINDS}
    ops = 0
    for ev in events:
        counts[ev.kind] += 1
        if ev.kind == "write":
            for kind, payload in ops_from_json(ev.body.get("ops", [])):
                ops += len(payload) if kind == OP_INSERT else 1
    return {
        "events": len(events),
        "kinds": counts,
        "items": ops,
        "duration_us": events[-1].t_us if events else 0,
        "meta": meta,
    }
