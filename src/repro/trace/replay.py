"""Deterministic trace replay against any service configuration.

:class:`TraceReplayer` takes a recorded trace (see
:mod:`repro.trace.record`) and drives a fresh
:class:`~repro.replication.replicated.ReplicatedService` -- any engine,
flush deadline, follower count, retry policy -- through exactly the
recorded workload: every write event commits as a round, every read
event re-issues its query batch with the recorded consistency bounds,
and arrival timestamps advance a seeded :class:`VirtualClock` at
``speed``\\ x real time.  No background threads, no wall-clock sleeps:
replication is ticked per event (like the chaos driver), so two replays
of one trace do the same work in the same order.

The determinism contract, and who checks it:

- **Trace oracle** (:func:`trace_oracle`): the recorded ops applied, in
  order, to a fresh structure -- pure state, no service.  In the default
  ``preserve_rounds`` mode the replayer commits each write event as one
  round with its recorded op structure intact, so the final served state
  must fingerprint byte-identical to this oracle (the structures are
  deterministic given the op sequence).  This holds *even when a chaos
  schedule fires during replay*: a primary kill's crashed round was
  never durable and is recommitted on the new primary.
- **WAL oracle** (:func:`~repro.chaos.schedule.replay_oracle`): the
  replay's own write-ahead log replayed fault-free.  Checked whenever
  the full chain is retained; with ``preserve_rounds=False`` (the
  replayer re-batches ops under the target config's flush policy, so
  round boundaries differ from the recording) this is the only
  byte-identity claim made.

:func:`state_fingerprint` is the comparison key: logical state (window
size, component count, forest edge set) plus the RC-tree's byte-level
snapshot, the same shape the chaos suite asserts convergence with.

An attached controller (:class:`repro.trace.control.AdaptiveController`
live, or :class:`~repro.trace.control.ScriptedController` replaying a
recorded tuning run) observes per-round latency and follower lag and
adjusts the virtual flush deadline and the per-tick replication budget
as the replay progresses.
"""

from __future__ import annotations

import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.chaos.schedule import ChaosDriver, ChaosSchedule, replay_oracle
from repro.obs.metrics import get_metrics
from repro.replication.replicated import ReplicatedService
from repro.service.query import QueryService
from repro.service.service import ServiceConfig, apply_ops
from repro.service.wal import WalTruncated
from repro.trace.record import TraceEvent, ops_from_json, read_trace


class VirtualClock:
    """Seeded virtual time for replay: recorded microseconds, scaled.

    ``advance_to(t_us)`` moves virtual now to the event's recorded
    arrival time divided by ``speed`` (``speed=2.0`` replays twice as
    fast), plus an optional deterministic jitter of up to ``jitter_us``
    drawn from the seeded generator -- the knob for "same trace, slightly
    perturbed arrivals" sensitivity runs.  Never sleeps; the replayer is
    deterministic precisely because time is data here, not a scheduler.
    """

    def __init__(
        self, speed: float = 1.0, seed: int = 0, jitter_us: int = 0
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be > 0")
        self.speed = float(speed)
        self.jitter_us = int(jitter_us)
        self._rng = random.Random(seed)
        self._now_us = 0

    @property
    def now_us(self) -> int:
        """Virtual microseconds since the replay started."""
        return self._now_us

    def now(self) -> float:
        """Virtual seconds (the shape a recorder ``clock`` wants)."""
        return self._now_us / 1e6

    def advance_to(self, t_us: int) -> int:
        """Move virtual time to the recorded instant ``t_us`` (scaled)."""
        target = int(t_us / self.speed)
        if self.jitter_us:
            target += self._rng.randint(0, self.jitter_us)
        self._now_us = max(self._now_us, target)
        return self._now_us


@dataclass
class ReplayConfig:
    """How to replay a trace (what service to drive, and how fast).

    Attributes:
        engine: RC-tree engine override handed to the factory (``None``:
            the factory's own default).
        followers: read replicas to attach (0: reads hit the primary,
            which is what makes work/span round-trip comparisons exact).
        service: the primary's :class:`ServiceConfig` (``None``: a
            replay-friendly default with snapshots *disabled* so the
            full WAL chain is retained for the byte-identity check).
        speed: virtual-time multiplier (2.0 = replay twice as fast).
        seed: seeds the virtual clock's jitter stream.
        jitter_us: max deterministic arrival jitter per event (0: exact
            recorded arrivals).
        preserve_rounds: commit each recorded write event as one round
            with its op structure intact (the byte-identity mode).
            ``False`` re-batches ops under the target config's flush
            policy -- round boundaries then differ from the recording,
            and determinism is asserted against the replay's own WAL
            only.
        replication_budget: max rounds a follower ships per tick
            (``None``: unbounded; a controller's ``budget`` overrides).
        on_lag: the :class:`~repro.service.query.QueryService` lag
            policy for replayed reads (default ``"catch_up"``, the
            deterministic one).
    """

    engine: str | None = None
    followers: int = 0
    service: ServiceConfig | None = None
    speed: float = 1.0
    seed: int = 0
    jitter_us: int = 0
    preserve_rounds: bool = True
    replication_budget: int | None = None
    on_lag: str = "catch_up"


@dataclass(frozen=True)
class ReplayResult:
    """What one replay did and how it performed.

    ``fingerprint`` is the primary structure's
    :func:`state_fingerprint`; ``deterministic`` reports the WAL-oracle
    byte-identity check (``None`` when the WAL chain was truncated by
    snapshots, so the check could not run).  Latencies are real
    milliseconds of replay work (virtual time never appears in them).
    """

    fingerprint: tuple
    lsn: int
    rounds: int
    reads: int
    read_batches: int
    write_p50_ms: float
    write_p99_ms: float
    read_p50_ms: float
    read_p99_ms: float
    reads_per_s: float
    wall_s: float
    deterministic: bool | None
    decisions: tuple = ()
    stats: dict = field(default_factory=dict)


def _pct(samples: Sequence[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


def state_fingerprint(structure: Any) -> tuple:
    """The byte-identity comparison key for a served structure.

    Logical state (window size, component count, sorted forest edge
    set) plus the RC tree's byte-level snapshot -- the same claim the
    chaos convergence suite makes, duck-typed so every sliding-window
    structure (and the MSF core) fingerprints with whatever of those
    surfaces it has.
    """
    parts: list = [type(structure).__name__]
    for attr in ("window_size", "num_components"):
        value = getattr(structure, attr, None)
        if value is not None and not callable(value):
            parts.append((attr, value))
    edges = getattr(structure, "forest_edges", None)
    if callable(edges):
        parts.append(("forest", tuple(sorted(edges()))))
    msf = getattr(structure, "_msf", structure)
    forest = getattr(msf, "forest", None)
    rc = getattr(forest, "rc", None)
    snapshot = getattr(rc, "snapshot", None)
    if callable(snapshot):
        parts.append(("rc", snapshot()))
    return tuple(parts)


def trace_oracle(
    factory: Callable[[], Any], events: Sequence[TraceEvent]
) -> tuple[Any, int]:
    """Ground truth from the trace alone: ops applied to a fresh structure.

    Returns ``(structure, rounds)``.  No WAL, no service -- the minimal
    deterministic interpretation of the recorded workload, which the
    default ``preserve_rounds`` replay must match byte-identically.
    """
    structure = factory()
    rounds = 0
    for ev in events:
        if ev.kind != "write":
            continue
        apply_ops(structure, ops_from_json(ev.body["ops"]))
        rounds += 1
    return structure, rounds


def factory_from_meta(
    meta: dict, engine: str | None = None
) -> Callable[[], Any]:
    """Rebuild the recording run's structure factory from trace meta.

    Recorders stash ``meta["factory"] = {"structure": <class name in
    repro.sliding_window>, "n": ..., "seed": ..., "engine": ...}``;
    ``engine`` here overrides the recorded one (the cross-engine
    determinism check replays one trace under both).
    """
    import repro.sliding_window as sliding_window

    spec = meta.get("factory", meta)
    try:
        cls = getattr(sliding_window, spec["structure"])
        n = int(spec["n"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(
            f"trace meta carries no usable factory spec: {spec!r}"
        ) from exc
    kwargs: dict = {}
    if "seed" in spec:
        kwargs["seed"] = int(spec["seed"])
    eng = engine if engine is not None else spec.get("engine")
    if eng is not None:
        kwargs["engine"] = eng
    return lambda: cls(n, **kwargs)


class TraceReplayer:
    """Drives one recorded trace through a fresh replicated service.

    Args:
        trace: path to the ``.trace.jsonl`` file (or an already-read
            ``(meta, events)`` pair).
        factory: structure factory (``None``: rebuilt from the trace
            meta via :func:`factory_from_meta`, with ``config.engine``
            applied).
        config: a :class:`ReplayConfig`; defaults throughout.
        data_dir: WAL/snapshot directory for the replayed service (a
            fresh temp-ish directory per replay; must be empty).
        controller: optional adaptive controller (live or scripted);
            its ``flush_interval`` steers the virtual flush deadline in
            re-batching mode and its ``budget`` caps replication ticks.
        chaos: optional :class:`~repro.chaos.schedule.ChaosSchedule` to
            fire while replaying (``preserve_rounds`` only); composes
            with ``faults`` exactly as the chaos soak does.
        faults: the :class:`~repro.chaos.faults.FaultyIO` the chaos
            schedule's fault windows arm (it should also be the service
            config's ``io``).
    """

    def __init__(
        self,
        trace: str | pathlib.Path | tuple[dict, Sequence[TraceEvent]],
        factory: Callable[[], Any] | None = None,
        config: ReplayConfig | None = None,
        data_dir: str | pathlib.Path | None = None,
        controller: Any | None = None,
        chaos: ChaosSchedule | None = None,
        faults: Any | None = None,
    ) -> None:
        if isinstance(trace, tuple):
            self.meta, self.events = trace[0], list(trace[1])
        else:
            self.meta, self.events = read_trace(trace)
        self.config = config or ReplayConfig()
        if factory is None:
            factory = factory_from_meta(self.meta, engine=self.config.engine)
        self.factory = factory
        if data_dir is None:
            raise ValueError(
                "replay needs a fresh data_dir for the replayed WAL"
            )
        self.data_dir = pathlib.Path(data_dir)
        self.controller = controller
        self.chaos = chaos
        self.faults = faults
        if chaos is not None and not self.config.preserve_rounds:
            raise ValueError(
                "chaos replay requires preserve_rounds=True (the driver "
                "commits one recorded round per step)"
            )

    def _service_config(self) -> ServiceConfig:
        if self.config.service is not None:
            return self.config.service
        # Replay default: keep the whole WAL chain (snapshots off) so the
        # fault-free WAL oracle can assert byte-identity afterwards.
        return ServiceConfig(snapshot_every=0)

    def run(self) -> ReplayResult:
        """Replay every event; returns the :class:`ReplayResult`.

        The served structures are torn down before returning -- the
        result (and the on-disk WAL in ``data_dir``) is the output.
        """
        cfg = self.config
        clock = VirtualClock(
            speed=cfg.speed, seed=cfg.seed, jitter_us=cfg.jitter_us
        )
        svc_cfg = self._service_config()
        svc = ReplicatedService(
            self.factory,
            self.data_dir,
            config=svc_cfg,
            followers=cfg.followers,
        )
        driver = (
            ChaosDriver(svc, self.chaos, self.faults)
            if self.chaos is not None
            else None
        )
        qs = QueryService(svc, on_lag=cfg.on_lag)
        write_ms: list[float] = []
        read_ms: list[float] = []
        reads = 0
        read_batches = 0
        rounds = 0
        step = 0
        pending_since_us: int | None = None
        m = get_metrics()
        t_start = time.perf_counter()
        try:
            for ev in self.events:
                clock.advance_to(ev.t_us)
                if ev.kind == "write":
                    ops = ops_from_json(ev.body["ops"])
                    t0 = time.perf_counter()
                    if driver is not None:
                        driver.step_ops(step, ops)
                        step += 1
                    elif cfg.preserve_rounds:
                        svc.write_ops(ops)
                        self._tick(svc)
                    else:
                        self._submit(svc, ops)
                        if pending_since_us is None:
                            pending_since_us = clock.now_us
                        pending_since_us = self._maybe_flush(
                            svc, clock, pending_since_us
                        )
                        self._tick(svc)
                    wall_ms = (time.perf_counter() - t0) * 1e3
                    write_ms.append(wall_ms)
                    rounds += 1
                    if self.controller is not None:
                        self.controller.observe_round(wall_ms)
                        lag = svc.lag()
                        if lag:
                            self.controller.observe_lag(max(lag.values()))
                elif ev.kind == "read":
                    if not cfg.preserve_rounds:
                        # A read observes the recorded prefix: force the
                        # pending re-batch out before answering.
                        svc.primary.drain()
                        pending_since_us = None
                        self._tick(svc)
                    queries = [tuple(q) for q in ev.body["queries"]]
                    at_least = ev.body.get("at_least")
                    if at_least is not None:
                        # Recorded under a different round structure the
                        # token may outrun this replay's tip; clamp to
                        # what is durable here.
                        at_least = min(
                            int(at_least), svc.primary.next_lsn - 1
                        )
                        if at_least < 0:
                            at_least = None
                    t0 = time.perf_counter()
                    res = qs.run(
                        queries,
                        at_least=at_least,
                        max_staleness=ev.body.get("max_staleness"),
                    )
                    read_ms.append((time.perf_counter() - t0) * 1e3)
                    reads += len(res.answers)
                    read_batches += 1
                # "control" events carry the *recorded* run's decisions;
                # a ScriptedController (built from these same events)
                # re-applies them below, so here they are data, not code.
                if self.controller is not None:
                    self.controller.on_event(ev.seq)
                m.counter("trace.events_replayed").inc()
            if not cfg.preserve_rounds:
                svc.primary.drain()
            if driver is not None:
                driver.finish()
            else:
                self._tick(svc, budget=None)  # final unbounded drain
            fp = state_fingerprint(svc.primary.structure)
            tip = svc.primary.next_lsn
            deterministic = self._check_wal_oracle(fp, svc_cfg)
            stats = dict(driver.stats) if driver is not None else {}
        finally:
            svc.close()
        wall_s = time.perf_counter() - t_start
        read_wall_s = sum(read_ms) / 1e3
        return ReplayResult(
            fingerprint=fp,
            lsn=tip,
            rounds=rounds,
            reads=reads,
            read_batches=read_batches,
            write_p50_ms=_pct(write_ms, 0.50),
            write_p99_ms=_pct(write_ms, 0.99),
            read_p50_ms=_pct(read_ms, 0.50),
            read_p99_ms=_pct(read_ms, 0.99),
            reads_per_s=(reads / read_wall_s) if read_wall_s > 0 else 0.0,
            wall_s=wall_s,
            deterministic=deterministic,
            decisions=tuple(getattr(self.controller, "decisions", ())),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _submit(svc: ReplicatedService, ops) -> None:
        for kind, payload in ops:
            if kind == "i":
                svc.primary.submit_insert(payload)
            else:
                svc.primary.submit_expire(payload)

    def _maybe_flush(
        self,
        svc: ReplicatedService,
        clock: VirtualClock,
        pending_since_us: int | None,
    ) -> int | None:
        """Re-batching mode's deadline trigger, in *virtual* time.

        The live service's deadline flush rides a background thread and
        wall clocks; the replay keeps the same semantics deterministic
        by flushing when virtual time since the first pending item
        exceeds the (possibly controller-tuned) flush interval.
        """
        if pending_since_us is None or svc.primary.queue_depth == 0:
            return None
        interval = (
            self.controller.flush_interval
            if self.controller is not None
            else self._service_config().flush_interval
        )
        if clock.now_us - pending_since_us >= interval * 1e6:
            svc.primary.flush()
            return None
        return pending_since_us

    def _tick(
        self, svc: ReplicatedService, budget: int | None = 0
    ) -> None:
        """One replication tick: followers ship up to ``budget`` rounds.

        ``budget=0`` (the per-event default) resolves to the
        controller's budget, else the config's, else unbounded.
        """
        if not svc.followers:
            return
        if budget == 0:
            if self.controller is not None:
                budget = int(self.controller.budget)
            else:
                budget = self.config.replication_budget
        for f in svc.followers:
            if f.alive:
                f.catch_up(budget)

    def _check_wal_oracle(
        self, fp: tuple, svc_cfg: ServiceConfig
    ) -> bool | None:
        """Byte-identity of the served state against the fault-free WAL
        oracle; ``None`` when snapshots truncated the chain."""
        try:
            oracle, _ = replay_oracle(self.factory, self.data_dir)
        except WalTruncated:
            return None
        return state_fingerprint(oracle) == fp


def replay_trace(
    trace: str | pathlib.Path,
    data_dir: str | pathlib.Path,
    factory: Callable[[], Any] | None = None,
    config: ReplayConfig | None = None,
    **kw: Any,
) -> ReplayResult:
    """One-call replay: :class:`TraceReplayer` constructed and run."""
    return TraceReplayer(
        trace, factory=factory, config=config, data_dir=data_dir, **kw
    ).run()
