"""Parallel ordered sets (join-based treaps).

Section 5 maintains, next to each forest, "a parallel ordered-set data
structure D, which stores all unexpired MSF edges ordered by tau" [8, 9].
:class:`~repro.orderedset.treap.Treap` provides the required operations --
split / join / union / difference -- with the join-based bounds of Blelloch,
Ferizovic and Sun: union of sizes ``m <= n`` in ``O(m lg(n/m + 1))`` work
and polylogarithmic span.
"""

from repro.orderedset.treap import Treap

__all__ = ["Treap"]
