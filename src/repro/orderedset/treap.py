"""Join-based treaps: ordered key-value maps with split / join / union.

All operations are expressed through ``join(left, k, v, right)`` in the
style of Blelloch, Ferizovic and Sun ("Just join for parallel ordered
sets"), which is how the paper's ordered sets achieve their parallel
bounds.  Priorities are a deterministic hash of the key, so a treap's shape
depends only on its key set -- handy for tests and reproducibility.

Nodes are immutable; every operation returns a new root and never mutates
shared state, so splits are O(lg n) snapshots.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.runtime.cost import CostModel, log2ceil
from repro.runtime.hashing import splitmix64


class _Node:
    __slots__ = ("key", "value", "prio", "left", "right", "size")

    def __init__(self, key, value, prio, left, right) -> None:
        self.key = key
        self.value = value
        self.prio = prio
        self.left = left
        self.right = right
        self.size = 1 + _size(left) + _size(right)


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _prio(key) -> int:
    return splitmix64(hash(key) & ((1 << 64) - 1))


def _join(left: Optional[_Node], key, value, prio, right: Optional[_Node]) -> _Node:
    """Join: every key in ``left`` < ``key`` < every key in ``right``."""
    if left is not None and left.prio > prio and (right is None or left.prio >= right.prio):
        return _Node(left.key, left.value, left.prio, left.left, _join(left.right, key, value, prio, right))
    if right is not None and right.prio > prio:
        return _Node(right.key, right.value, right.prio, _join(left, key, value, prio, right.left), right.right)
    return _Node(key, value, prio, left, right)


def _join2(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    """Join without a middle key."""
    if left is None:
        return right
    if right is None:
        return left
    # Splay out the last key of the lighter side.
    k, v = _last(left)
    smaller, _, _ = _split(left, k)
    return _join(smaller, k, v, _prio(k), right)


def _last(node: _Node):
    while node.right is not None:
        node = node.right
    return node.key, node.value


def _split(node: Optional[_Node], key) -> tuple[Optional[_Node], Optional[tuple], Optional[_Node]]:
    """Split into (< key, the (key,value) if present, > key)."""
    if node is None:
        return None, None, None
    if key < node.key:
        l, m, r = _split(node.left, key)
        return l, m, _join(r, node.key, node.value, node.prio, node.right)
    if node.key < key:
        l, m, r = _split(node.right, key)
        return _join(node.left, node.key, node.value, node.prio, l), m, r
    return node.left, (node.key, node.value), node.right


def _union(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Union; on duplicate keys one of the values is kept (unspecified --
    the sliding-window layer only ever unions disjoint key sets)."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        a, b = b, a  # recurse on the higher-priority root
    l, m, r = _split(b, a.key)
    return _join(_union(a.left, l), a.key, a.value, a.prio, _union(a.right, r))


def _difference(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Keys of ``a`` not present in ``b``."""
    if a is None or b is None:
        return a
    l, m, r = _split(a, b.key)
    return _join2(_difference(l, b.left), _difference(r, b.right))


def _iter(node: Optional[_Node]) -> Iterator[tuple]:
    stack: list = []
    while stack or node is not None:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield (node.key, node.value)
        node = node.right


class Treap:
    """An ordered key-value map with logarithmic split/join operations.

    Supports the Section 5 workload: bulk insert (union), bulk delete
    (difference), split at a threshold (expiry), size, min/max, and ordered
    iteration.  Work/span are charged at the join-based bounds.
    """

    __slots__ = ("_root", "cost")

    def __init__(self, items=None, cost: CostModel | None = None) -> None:
        self.cost = cost if cost is not None else CostModel(enabled=False)
        self._root: Optional[_Node] = None
        if items:
            self.insert_many(items)

    # -- basic ---------------------------------------------------------

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key) -> bool:
        node = self._root
        self.cost.add(work=log2ceil(max(len(self), 2)), span=log2ceil(max(len(self), 2)))
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return True
        return False

    def get(self, key, default=None):
        """Value for ``key`` or ``default``; O(lg n)."""
        node = self._root
        while node is not None:
            if key < node.key:
                node = node.left
            elif node.key < key:
                node = node.right
            else:
                return node.value
        return default

    def insert(self, key, value=None) -> None:
        """Insert or replace one key; O(lg n)."""
        l, _, r = _split(self._root, key)
        self._root = _join(l, key, value, _prio(key), r)
        self.cost.add(work=log2ceil(max(len(self), 2)), span=log2ceil(max(len(self), 2)))

    def delete(self, key) -> bool:
        """Remove one key if present; O(lg n)."""
        l, m, r = _split(self._root, key)
        self._root = _join2(l, r)
        self.cost.add(work=log2ceil(max(len(self) + 1, 2)), span=log2ceil(max(len(self) + 1, 2)))
        return m is not None

    # -- bulk (the parallel operations of [8, 9]) -----------------------

    def insert_many(self, items) -> None:
        """Bulk insert-or-replace; ``O(m lg(n/m + 1))`` work, polylog span.

        New values win on duplicate keys (same semantics as :meth:`insert`).
        """
        items = list(items)
        if not items:
            return
        other = _build_from_sorted(sorted(items, key=lambda kv: kv[0]))
        n, m = max(len(self), 1), len(items)
        self.cost.add(
            work=m * log2ceil(max(n // m + 1, 2)) + m,
            span=log2ceil(max(n + m, 2)) ** 2,
        )
        # difference-then-union makes the key sets disjoint, so the new
        # values deterministically replace old ones.
        self._root = _union(_difference(self._root, other), other)

    def delete_many(self, keys) -> None:
        """Bulk delete; ``O(m lg(n/m + 1))`` work, polylog span."""
        keys = list(keys)
        if not keys:
            return
        other = _build_from_sorted(sorted((k, None) for k in keys))
        n, m = max(len(self), 1), len(keys)
        self.cost.add(
            work=m * log2ceil(max(n // m + 1, 2)) + m,
            span=log2ceil(max(n + m, 2)) ** 2,
        )
        self._root = _difference(self._root, other)

    def split_at(self, key) -> "Treap":
        """Remove and return all entries with ``key' < key`` (O(lg n)).

        This is the expiry primitive: ``D.split_at(TW)`` yields the expired
        prefix and leaves the live suffix in place.
        """
        l, m, r = _split(self._root, key)
        self.cost.add(work=log2ceil(max(len(self) + 1, 2)), span=log2ceil(max(len(self) + 1, 2)))
        if m is not None:
            r = _join(None, m[0], m[1], _prio(m[0]), r)
        self._root = r
        out = Treap(cost=self.cost)
        out._root = l
        return out

    # -- order statistics ----------------------------------------------

    def min(self):
        """Smallest (key, value); O(lg n)."""
        if self._root is None:
            raise KeyError("empty treap")
        node = self._root
        while node.left is not None:
            node = node.left
        return (node.key, node.value)

    def max(self):
        """Largest (key, value); O(lg n)."""
        if self._root is None:
            raise KeyError("empty treap")
        node = self._root
        while node.right is not None:
            node = node.right
        return (node.key, node.value)

    def rank(self, key) -> int:
        """Number of keys strictly less than ``key``; O(lg n)."""
        node, r = self._root, 0
        while node is not None:
            if key <= node.key:
                node = node.left
            else:
                r += 1 + _size(node.left)
                node = node.right
        return r

    def kth(self, k: int):
        """The k-th smallest entry (0-based); O(lg n)."""
        if not 0 <= k < len(self):
            raise IndexError(k)
        node = self._root
        while True:
            ls = _size(node.left)
            if k < ls:
                node = node.left
            elif k == ls:
                return (node.key, node.value)
            else:
                k -= ls + 1
                node = node.right

    def items(self) -> Iterator[tuple]:
        """In-order (key, value) iteration."""
        return _iter(self._root)

    def keys(self) -> Iterator:
        """In-order key iteration."""
        return (k for k, _ in _iter(self._root))

    def check_invariants(self) -> None:
        """Validate BST order, heap order and sizes (test helper)."""
        def rec(node, lo, hi):
            if node is None:
                return 0
            assert (lo is None or lo < node.key) and (hi is None or node.key < hi)
            assert node.left is None or node.left.prio <= node.prio
            assert node.right is None or node.right.prio <= node.prio
            s = 1 + rec(node.left, lo, node.key) + rec(node.right, node.key, hi)
            assert node.size == s
            return s

        rec(self._root, None, None)


def _build_from_sorted(items: list) -> Optional[_Node]:
    """Build a treap from sorted (key, value) pairs in O(n).

    Classic linear-time Cartesian-tree construction over the priority
    sequence using a rightmost-spine stack; duplicate keys keep the later
    value.
    """
    dedup: list = []
    for k, v in items:
        if dedup and dedup[-1][0] == k:
            dedup[-1] = (k, v)
        else:
            dedup.append((k, v))

    stack: list[_Node] = []
    for k, v in dedup:
        p = _prio(k)
        node = _Node(k, v, p, None, None)
        last = None
        while stack and stack[-1].prio < p:
            last = stack.pop()
        node.left = last
        if stack:
            stack[-1].right = node
        stack.append(node)
    root = stack[0] if stack else None
    _fix_sizes(root)
    return root


def _fix_sizes(node: Optional[_Node]) -> int:
    if node is None:
        return 0
    node.size = 1 + _fix_sizes(node.left) + _fix_sizes(node.right)
    return node.size
