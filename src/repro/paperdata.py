"""The paper's worked examples as machine-readable data.

Figure 1 (Section 1.1): a weighted tree with marked vertices A..E whose
compressed path tree has six edges weighted {6, 10, 9, 7, 12, 3} and two
Steiner branch vertices.  The arXiv source has no machine-readable layout,
so ``FIG1_EDGES`` is a faithful reconstruction realising exactly the
published CPT (same marked set, Steiner count and edge weights).

Figure 2 (Section 2.2): the 12-vertex tree on {a..l} whose recursive
clustering and RC tree the paper draws.
"""

from __future__ import annotations

# -- Figure 1 ----------------------------------------------------------------
# Vertex ids: A=0, B=1, C=2, D=3, E=4 (marked); X=5, Y=6 are the Steiner
# branch points of the published CPT; 7..13 are interior/dangling vertices
# that must be spliced or pruned away.
FIG1_A, FIG1_B, FIG1_C, FIG1_D, FIG1_E, FIG1_X, FIG1_Y = range(7)
_P, _Q, _R, _S, _Z1, _Z2, _Z3 = range(7, 14)

FIG1_N = 14
FIG1_MARKED = [FIG1_A, FIG1_B, FIG1_C, FIG1_D, FIG1_E]
FIG1_NAMES = {0: "A", 1: "B", 2: "C", 3: "D", 4: "E", 5: "X", 6: "Y"}

FIG1_EDGES: list[tuple[int, int, float, int]] = [
    (FIG1_A, _P, 2.0, 0),
    (_P, FIG1_X, 6.0, 1),  # path A..X, heaviest 6
    (FIG1_B, FIG1_X, 10.0, 2),  # path B..X, heaviest 10
    (FIG1_X, _Q, 9.0, 3),
    (_Q, FIG1_Y, 4.0, 4),  # path X..Y, heaviest 9
    (FIG1_C, _R, 5.0, 5),
    (_R, FIG1_Y, 7.0, 6),  # path C..Y, heaviest 7
    (FIG1_E, FIG1_Y, 12.0, 7),  # path E..Y, heaviest 12
    (FIG1_D, _S, 3.0, 8),
    (_S, FIG1_E, 1.0, 9),  # path D..E, heaviest 3
    (_Q, _Z1, 5.0, 10),  # dangling branches: pruned away
    (_R, _Z2, 4.0, 11),
    (_S, _Z3, 2.0, 12),
]

FIG1_EXPECTED_CPT: dict[frozenset, float] = {
    frozenset((FIG1_A, FIG1_X)): 6.0,
    frozenset((FIG1_B, FIG1_X)): 10.0,
    frozenset((FIG1_X, FIG1_Y)): 9.0,
    frozenset((FIG1_C, FIG1_Y)): 7.0,
    frozenset((FIG1_E, FIG1_Y)): 12.0,
    frozenset((FIG1_D, FIG1_E)): 3.0,
}

# -- Figure 2 ----------------------------------------------------------------
FIG2_NAMES = "abcdefghijkl"
FIG2_N = len(FIG2_NAMES)

FIG2_EDGES_NAMED: list[tuple[str, str]] = [
    ("a", "b"),
    ("b", "c"),
    ("b", "d"),
    ("d", "e"),
    ("e", "f"),
    ("e", "h"),
    ("g", "h"),
    ("h", "i"),
    ("i", "j"),
    ("i", "k"),
    ("k", "l"),
]


def fig2_links() -> list[tuple[int, int, float, int]]:
    """Figure 2's tree as (u, v, w, eid) links over ids 0..11."""
    idx = {c: i for i, c in enumerate(FIG2_NAMES)}
    return [(idx[x], idx[y], 1.0, k) for k, (x, y) in enumerate(FIG2_EDGES_NAMED)]
