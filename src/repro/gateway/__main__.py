"""Run a primary + HTTP gateway from the command line.

``python -m repro.gateway --data-dir state --structure SWConnectivityEager
--n 1024 --port 8080 --workers 127.0.0.1:9001,127.0.0.1:9002`` recovers
(or creates) the durable primary in ``--data-dir``, attaches the given
out-of-process worker fleet for read routing, and serves until SIGINT /
SIGTERM.  The deployment walkthrough -- one primary plus N
``python -m repro.replication.worker`` processes sharing one WAL
directory -- lives in ``docs/gateway.md``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import sys
import threading

from repro.gateway.server import Gateway, GatewayConfig
from repro.replication.replicated import ReplicatedService
from repro.replication.worker import STRUCTURES, build_factory
from repro.service.service import ServiceConfig


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Serve a replicated sliding-window structure over "
        "HTTP/JSON (see docs/gateway.md for the wire protocol).",
    )
    parser.add_argument("--data-dir", required=True, help="primary WAL/snapshot directory (shared with workers)")
    parser.add_argument("--structure", default="SWConnectivityEager",
                        choices=sorted(STRUCTURES))
    parser.add_argument("--n", type=int, required=True, help="vertex count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default=None)
    parser.add_argument("--kwargs", default="{}",
                        help="extra structure kwargs as JSON")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="HTTP port (0: ephemeral; printed on startup)")
    parser.add_argument("--followers", type=int, default=0,
                        help="in-process fallback replicas to attach")
    parser.add_argument("--workers", default="",
                        help="comma-separated host:port worker processes")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every committed round (durable writes)")
    parser.add_argument("--snapshot-every", type=int, default=256,
                        help="rounds between checkpoints (0: never)")
    parser.add_argument("--replication-interval", type=float, default=0.002,
                        help="in-process follower poll interval, seconds")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    try:
        extra = json.loads(args.kwargs)
        if not isinstance(extra, dict):
            raise ValueError("--kwargs must be a JSON object")
    except ValueError as exc:
        print(f"bad --kwargs: {exc}", file=sys.stderr)
        return 2
    factory = build_factory(
        args.structure, args.n, args.seed, args.engine, extra
    )
    data_dir = pathlib.Path(args.data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    cfg = ServiceConfig(
        fsync=args.fsync, snapshot_every=args.snapshot_every
    )
    workers = tuple(w.strip() for w in args.workers.split(",") if w.strip())
    stop = threading.Event()

    def _terminate(signum: int, frame: object) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    with ReplicatedService(
        factory, data_dir, cfg, followers=args.followers
    ) as rs:
        if args.followers:
            rs.start_replication(interval=args.replication_interval)
        gw = Gateway(
            rs,
            GatewayConfig(host=args.host, port=args.port, workers=workers),
        ).start()
        print(
            f"repro-gateway listening on {gw.url} "
            f"(lsn {rs.primary.next_lsn}, epoch {rs.epoch}, "
            f"{args.followers} in-process follower(s), "
            f"{len(workers)} worker(s))",
            flush=True,
        )
        try:
            stop.wait()
        finally:
            gw.close()
    print("repro-gateway stopped", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
