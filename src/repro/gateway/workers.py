"""Gateway-side client pool for out-of-process follower workers.

The gateway prefers routing read batches to
``python -m repro.replication.worker`` processes (real parallelism: each
worker replays and answers in its own interpreter) and falls back to the
in-process :class:`~repro.service.query.QueryService` when no worker can
serve.  This module is the routing half of that story:

- :class:`WorkerClient` -- one persistent newline-delimited-JSON TCP
  connection, re-established transparently after a failure (one
  reconnect attempt per request; a worker mid-restart looks like one
  failed read, not a poisoned pool).
- :class:`WorkerPool` -- round-robin over the live workers with
  busy/stale verdict handling: a worker that answers ``busy`` (its
  replay lock is held) or ``stale`` (fenced or behind the required LSN)
  is *skipped for this batch* and stays in rotation, while one that
  fails at the transport level is benched for ``retry_s`` seconds
  (connection refused on every read would otherwise tax every batch).

Thread safety: the HTTP front door serves each request on its own
thread, so a client's connection is guarded by a per-client lock and a
batch holds it only for its own round trip.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any

from repro.gateway.protocol import dumps, MAX_FRAME_BYTES
from repro.obs.metrics import get_metrics

import json


class WorkerUnavailable(RuntimeError):
    """No worker in the pool could serve this batch (fall back in-process)."""


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (IPv4/hostname form)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"worker address must be host:port, got {addr!r}")
    return host or "127.0.0.1", int(port)


class WorkerClient:
    """One worker's persistent connection (thread-safe, auto-reconnect)."""

    def __init__(self, addr: str, timeout: float = 5.0) -> None:
        self.addr = addr
        self.host, self.port = parse_addr(addr)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._rfile = None
        #: monotonic deadline until which the worker is benched.
        self.benched_until = 0.0
        #: replay position from the last successful reply.
        self.last_lsn = -1

    def _connect(self) -> None:
        self._close_locked()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._rfile = sock.makefile("rb")

    def _close_locked(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._close_locked()

    def request(self, frame: dict) -> dict:
        """One round trip; raises ``OSError`` on transport failure.

        A dead persistent connection (worker restarted between batches)
        gets exactly one transparent reconnect-and-retry.
        """
        with self._lock:
            for attempt in (0, 1):
                if self._sock is None:
                    self._connect()
                try:
                    self._sock.sendall(dumps(frame) + b"\n")
                    line = self._rfile.readline(MAX_FRAME_BYTES + 1)
                    if not line:
                        raise ConnectionError(
                            f"worker {self.addr} closed the connection"
                        )
                    reply = json.loads(line)
                    if not isinstance(reply, dict):
                        raise ConnectionError(
                            f"worker {self.addr} sent a non-object frame"
                        )
                    return reply
                except (OSError, ValueError):
                    self._close_locked()
                    if attempt:
                        raise
        raise AssertionError("unreachable")  # pragma: no cover


class WorkerPool:
    """Round-robin read routing across the configured workers.

    Args:
        addrs: ``host:port`` strings, one per worker process.
        timeout: per-round-trip socket timeout (seconds).
        retry_s: how long a transport-failed worker sits out before the
            pool tries it again.
        conns_per_worker: persistent connections kept per worker.  One
            connection carries one in-flight batch (the frame protocol
            is strict request/reply), so a worker's read throughput
            under concurrent load is capped at connections/round-trip;
            a small pool (default 2) lets the next batch's frame travel
            while the previous reply is still being drained.  Worker
            *processes* stay the unit of real parallelism -- extra
            connections only hide scheduling latency, they cannot buy
            CPU.
    """

    def __init__(
        self,
        addrs: list[str] | tuple[str, ...],
        timeout: float = 5.0,
        retry_s: float = 1.0,
        conns_per_worker: int = 2,
    ) -> None:
        self.addrs = list(addrs)
        # Worker-major interleaving ([w0, w1, ..., w0', w1', ...]): the
        # round-robin walk then spreads batches across distinct worker
        # processes before doubling up on any one worker's second
        # connection.
        self.clients = [
            WorkerClient(a, timeout=timeout)
            for _ in range(max(1, conns_per_worker))
            for a in self.addrs
        ]
        self.retry_s = retry_s
        self._rr_lock = threading.Lock()
        self._rr = 0

    def __len__(self) -> int:
        return len(self.addrs)

    def _order(self) -> list[WorkerClient]:
        with self._rr_lock:
            self._rr += 1
            start = self._rr
        n = len(self.clients)
        return [self.clients[(start + i) % n] for i in range(n)]

    def read(self, queries_wire: list, required: int) -> dict:
        """Route one batch; returns the worker's ``ok`` reply.

        Tries each non-benched worker once in round-robin order.  A
        ``busy`` or ``stale`` verdict moves on to the next worker; a
        transport failure benches the worker for ``retry_s``.  When
        every worker is benched, busy, or stale,
        :class:`WorkerUnavailable` tells the gateway to fall back to the
        in-process read path.
        """
        if not self.clients:
            raise WorkerUnavailable("no workers configured")
        m = get_metrics()
        now = time.monotonic()
        verdicts = []
        skip: set[str] = set()
        for client in self._order():
            if client.addr in skip:
                # This worker already answered busy/stale on another
                # connection this batch; its verdict won't change.
                continue
            if client.benched_until > now:
                verdicts.append(f"{client.addr}: benched")
                continue
            try:
                reply = client.request(
                    {"op": "read", "queries": queries_wire, "required": required}
                )
            except (OSError, ValueError) as exc:
                client.benched_until = time.monotonic() + self.retry_s
                m.counter("gateway.worker_errors").inc()
                verdicts.append(f"{client.addr}: {type(exc).__name__}")
                continue
            if reply.get("ok"):
                client.benched_until = 0.0
                client.last_lsn = reply.get("lsn", -1)
                return reply
            verdict = reply.get("error", "error")
            m.counter(f"gateway.worker_{verdict}").inc()
            verdicts.append(f"{client.addr}: {verdict}")
            skip.add(client.addr)
            if verdict not in ("busy", "stale"):
                # bad_request / unsupported_query would fail identically
                # on every replica: surface it instead of retrying.
                raise WorkerReadError(verdict, reply.get("message", ""))
        raise WorkerUnavailable("; ".join(verdicts))

    def _one_per_worker(self) -> list[WorkerClient]:
        """The first client per distinct worker (control-plane ops)."""
        return self.clients[: len(self.addrs)]

    def health(self) -> list[dict]:
        """Best-effort liveness + replay position per worker."""
        out = []
        for client in self._one_per_worker():
            entry: dict[str, Any] = {"addr": client.addr}
            try:
                reply = client.request({"op": "health"})
                entry.update(
                    alive=bool(reply.get("alive")),
                    lsn=reply.get("lsn", -1),
                    fid=reply.get("fid"),
                )
            except (OSError, ValueError):
                entry.update(alive=False, lsn=client.last_lsn)
            out.append(entry)
        return out

    def stop_workers(self) -> int:
        """Send every reachable worker a clean ``stop``; returns how many
        acknowledged (the deployment/CI teardown path)."""
        stopped = 0
        for client in self._one_per_worker():
            try:
                reply = client.request({"op": "stop"})
                stopped += 1 if reply.get("ok") else 0
            except (OSError, ValueError):
                pass
        return stopped

    def close(self) -> None:
        for client in self.clients:
            client.close()


class WorkerReadError(RuntimeError):
    """A worker rejected the batch for a non-routable reason (client error)."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message or kind)
        self.kind = kind
