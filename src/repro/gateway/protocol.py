"""The gateway wire protocol: canonical JSON encoding and validation.

Everything that crosses a process boundary -- HTTP bodies at the
gateway, newline-delimited frames on a worker socket -- goes through
this module, so the *same* canonical encoding is produced no matter
which replica answered.  That is what makes the differential contract
testable: a batch answered by an OS-process worker must be
**byte-for-byte identical** to the same batch answered by the in-process
:class:`~repro.service.query.QueryService` under the same LSN token
(``tests/test_gateway.py`` asserts exactly this).

Canonical form:

- :func:`jsonable` maps structure answers onto the JSON type system
  deterministically: tuples become arrays, sets become *sorted* arrays,
  NumPy scalars become their Python equivalents.  Anything it cannot
  map raises -- silent ``str()`` coercion would hide drift between
  replicas.
- :func:`dumps` renders with sorted keys and minimal separators, so
  equal values produce equal bytes.

Request validation (:func:`parse_queries` / :func:`parse_edges` /
:func:`parse_consistency`) raises :class:`BadRequest`, which the HTTP
layer maps to a structured ``400`` body (:func:`error_body`) -- a
malformed request must never surface as a stack trace.  The full wire
reference, endpoint by endpoint, is ``docs/gateway.md``.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.service.query import _READ_GROUPS, _SCALAR_QUERIES

#: Query kinds the wire accepts: the pair reads (grouped into shared
#: RC-tree sweeps) plus the zero-argument scalar reads.
PAIR_KINDS = frozenset(_READ_GROUPS)
SCALAR_KINDS = frozenset(_SCALAR_QUERIES)
QUERY_KINDS = PAIR_KINDS | SCALAR_KINDS


class BadRequest(ValueError):
    """A request body that fails validation (HTTP 400, structured)."""


def jsonable(obj: Any) -> Any:
    """``obj`` mapped deterministically onto JSON-serializable types.

    Tuples/lists map to lists, sets and frozensets to *sorted* lists
    (their iteration order is not canonical), dict keys to strings, and
    NumPy scalars to the matching Python scalar via ``.item()``.  A type
    outside this closed set raises ``TypeError`` -- the wire must not
    guess at an encoding two replicas could disagree on.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [jsonable(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((jsonable(x) for x in obj), key=repr)
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    item = getattr(obj, "item", None)
    if callable(item):  # NumPy bool_/integer/floating scalars
        return jsonable(item())
    raise TypeError(f"cannot encode {type(obj).__name__!r} on the wire")


def dumps(obj: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8."""
    return json.dumps(
        jsonable(obj), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def error_body(
    kind: str, message: str, retry_after: float | None = None
) -> dict:
    """The structured error envelope every non-2xx response carries.

    ``retry_after`` (seconds) is set for retryable verdicts --
    ``overloaded`` and ``staleness_exceeded`` -- mirroring the
    ``Retry-After`` header, so JSON-only clients can back off without
    parsing headers.
    """
    err: dict[str, Any] = {"type": kind, "message": message}
    if retry_after is not None:
        err["retry_after"] = max(0.0, float(retry_after))
    return {"error": err}


def _require_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{what} must be an integer, got {value!r}")
    return value


def parse_queries(raw: Any) -> list[tuple]:
    """Validate a wire query batch into :class:`QueryService` tuples.

    The wire shape is a non-empty array of arrays, each ``[kind]`` for
    the scalar kinds or ``[kind, u, v]`` for the pair kinds; anything
    else raises :class:`BadRequest` naming the offending entry.
    """
    if not isinstance(raw, list) or not raw:
        raise BadRequest("'queries' must be a non-empty array of arrays")
    out: list[tuple] = []
    for i, q in enumerate(raw):
        if not isinstance(q, list) or not q:
            raise BadRequest(f"queries[{i}] must be a non-empty array")
        kind = q[0]
        if kind not in QUERY_KINDS:
            raise BadRequest(
                f"queries[{i}]: unknown query kind {kind!r} "
                f"(known: {', '.join(sorted(QUERY_KINDS))})"
            )
        if kind in PAIR_KINDS:
            if len(q) != 3:
                raise BadRequest(
                    f"queries[{i}]: {kind!r} takes [kind, u, v], got {q!r}"
                )
            u = _require_int(q[1], f"queries[{i}][1]")
            v = _require_int(q[2], f"queries[{i}][2]")
            out.append((kind, u, v))
        else:
            if len(q) != 1:
                raise BadRequest(
                    f"queries[{i}]: {kind!r} takes no arguments, got {q!r}"
                )
            out.append((kind,))
    return out


def parse_edges(raw: Any) -> list[tuple]:
    """Validate a wire edge batch into ``(u, v[, w])`` rows."""
    if not isinstance(raw, list):
        raise BadRequest("'edges' must be an array of [u, v] or [u, v, w]")
    out: list[tuple] = []
    for i, row in enumerate(raw):
        if not isinstance(row, list) or len(row) not in (2, 3):
            raise BadRequest(
                f"edges[{i}] must be [u, v] or [u, v, w], got {row!r}"
            )
        u = _require_int(row[0], f"edges[{i}][0]")
        v = _require_int(row[1], f"edges[{i}][1]")
        if len(row) == 3:
            w = row[2]
            if isinstance(w, bool) or not isinstance(w, (int, float)):
                raise BadRequest(
                    f"edges[{i}][2] must be a number, got {w!r}"
                )
            out.append((u, v, float(w)))
        else:
            out.append((u, v))
    return out


def parse_consistency(
    body: dict, shards: int | None = None
) -> tuple[Any, int | None]:
    """Validate the optional ``at_least`` / ``max_staleness`` fields.

    Against a sharded backend (``shards=K``) ``at_least`` is a **vector
    token** -- an array of ``K`` per-shard LSNs, exactly what a sharded
    write returned (``-1`` marks a shard with no requirement); against
    the unsharded backend it is the familiar single integer.
    """
    at_least = body.get("at_least")
    if at_least is not None and shards is not None:
        if not isinstance(at_least, list) or len(at_least) != shards:
            raise BadRequest(
                f"'at_least' must be an array of {shards} per-shard "
                "tokens against a sharded backend"
            )
        at_least = [
            _require_int(x, f"'at_least'[{i}]")
            for i, x in enumerate(at_least)
        ]
        if any(x < -1 for x in at_least):
            raise BadRequest("'at_least' entries must be >= -1")
    elif at_least is not None:
        at_least = _require_int(at_least, "'at_least'")
        if at_least < 0:
            raise BadRequest("'at_least' must be >= 0")
    max_staleness = body.get("max_staleness")
    if max_staleness is not None:
        max_staleness = _require_int(max_staleness, "'max_staleness'")
        if max_staleness < 0:
            raise BadRequest("'max_staleness' must be >= 0")
    return at_least, max_staleness


def read_frame(rfile) -> dict | None:
    """Read one newline-delimited JSON frame from a worker socket.

    Returns ``None`` at EOF.  Oversized or undecodable frames raise
    :class:`BadRequest` -- the worker replies with a structured error
    frame instead of dying.
    """
    line = rfile.readline(MAX_FRAME_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise BadRequest(f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"undecodable frame: {exc}") from None
    if not isinstance(frame, dict):
        raise BadRequest("frame must be a JSON object")
    return frame


def write_frame(wfile, payload: dict) -> None:
    """Write one newline-delimited JSON frame to a worker socket."""
    wfile.write(dumps(payload) + b"\n")
    wfile.flush()


#: Ceiling on one worker-protocol frame (requests and responses); a
#: query batch is bounded, so anything bigger is a protocol violation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Ceiling on one HTTP request body at the gateway.
MAX_BODY_BYTES = 8 * 1024 * 1024
