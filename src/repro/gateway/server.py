"""The HTTP/JSON front door over a replicated window structure.

:class:`Gateway` binds a stdlib :class:`~http.server.ThreadingHTTPServer`
(thin handler, JSON bodies, the backend modules doing all the work) over
one :class:`~repro.replication.replicated.ReplicatedService` and its
:class:`~repro.service.query.QueryService`.  Four endpoints
(``docs/gateway.md`` is the full wire reference):

- ``POST /v1/write`` -- one durable round (insert + expire ops),
  answering with the round's **LSN token** for read-your-writes.
- ``POST /v1/read`` -- one grouped query batch under ``at_least`` /
  ``max_staleness`` consistency, exactly the
  :meth:`QueryService.run <repro.service.query.QueryService.run>`
  semantics.  Concurrent HTTP readers each submit *batches*, so the
  Theorem 3.2 sharing (one RC-tree sweep per kind per batch) is what
  every request rides on.
- ``GET /v1/health`` -- primary liveness, durable tip, worker fleet.
- ``GET /v1/metrics`` -- the :mod:`repro.obs` registry as JSON.

Read routing prefers the **out-of-process worker fleet**
(``python -m repro.replication.worker`` processes reached through a
:class:`~repro.gateway.workers.WorkerPool`): workers answer in their own
interpreters, so read throughput scales past the GIL.  A worker that is
busy (replay lock held), stale (behind the required token), benched
(transport failure), or simply absent drops the batch back onto the
in-process ``QueryService`` -- the gateway keeps serving through a whole
fleet outage, just slower.

Every error is a structured JSON body (``{"error": {"type", "message",
"retry_after"?}}``), never a stack trace: overload maps to ``429`` with
``retry_after`` (mirrored in the ``Retry-After`` header), staleness and
a dead primary to ``503``, validation to ``400``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.gateway.protocol import (
    MAX_BODY_BYTES,
    BadRequest,
    dumps,
    error_body,
    jsonable,
    parse_consistency,
    parse_edges,
    parse_queries,
)
from repro.gateway.workers import WorkerPool, WorkerReadError, WorkerUnavailable
from repro.obs.metrics import get_metrics
from repro.service.query import (
    QueryService,
    StalenessExceeded,
    UnsupportedQuery,
)
from repro.service.resilience import ServiceOverloaded
from repro.service.service import Backpressure, ServiceClosed


@dataclass
class GatewayConfig:
    """Front-door knobs (routing policy lives on the ``QueryService``).

    Attributes:
        host/port: bind address (port 0 picks an ephemeral port; read it
            back from :attr:`Gateway.address` / :attr:`Gateway.url`).
        workers: ``host:port`` of each out-of-process follower worker to
            route reads to (empty: serve everything in-process).
        worker_timeout: per-worker round-trip timeout, seconds.
        worker_retry_s: how long a transport-failed worker is benched.
        worker_conns: persistent connections per worker (pipelining
            depth; see :class:`~repro.gateway.workers.WorkerPool`).
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: tuple[str, ...] = field(default_factory=tuple)
    worker_timeout: float = 5.0
    worker_retry_s: float = 1.0
    worker_conns: int = 2


class _GatewayHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    gateway: "Gateway"


class _Handler(BaseHTTPRequestHandler):
    """Thin routing shim: parse, delegate to the Gateway, encode."""

    protocol_version = "HTTP/1.1"  # keep-alive: load generators reuse sockets
    # Without this, small request/response pairs on a keep-alive socket
    # hit the Nagle / delayed-ACK interaction: ~40ms stalls per round
    # trip that swamp the sub-millisecond query work.
    disable_nagle_algorithm = True
    server_version = "repro-gateway"
    server: _GatewayHTTPServer

    def log_message(self, fmt: str, *args: Any) -> None:  # silence stderr
        pass

    # -- plumbing -------------------------------------------------------

    def _send(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
    ) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(0.0, retry_after):.3f}")
        self.end_headers()
        try:
            self.wfile.write(body)
        except OSError:
            pass  # client went away; nothing to tell it

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(body, dict):
            raise BadRequest("body must be a JSON object")
        return body

    def _dispatch(self, method: str) -> None:
        gw = self.server.gateway
        m = get_metrics()
        m.counter("gateway.requests").inc()
        t0 = time.perf_counter()
        route = self.path.split("?", 1)[0]
        try:
            if (method, route) == ("POST", "/v1/write"):
                payload = gw.handle_write(self._read_body())
            elif (method, route) == ("POST", "/v1/read"):
                payload = gw.handle_read(self._read_body())
            elif (method, route) == ("GET", "/v1/health"):
                payload = gw.handle_health()
            elif (method, route) == ("GET", "/v1/metrics"):
                payload = m.as_dict()
            elif route in ("/v1/write", "/v1/read", "/v1/health", "/v1/metrics"):
                self._send(
                    405, error_body("method_not_allowed", f"{method} {route}")
                )
                return
            else:
                self._send(404, error_body("not_found", f"no route {route}"))
                return
        except Exception as exc:
            status, payload, retry_after = _classify(exc)
            m.counter(f"gateway.errors.{payload['error']['type']}").inc()
            self._send(status, payload, retry_after)
            return
        m.histogram(f"gateway.{route.rsplit('/', 1)[-1]}_ms").observe(
            (time.perf_counter() - t0) * 1e3
        )
        self._send(200, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")


def _classify(exc: Exception) -> tuple[int, dict, float | None]:
    """Exception -> (HTTP status, structured body, Retry-After seconds)."""
    if isinstance(exc, BadRequest):
        return 400, error_body("bad_request", str(exc)), None
    if isinstance(exc, UnsupportedQuery):
        return 400, error_body("unsupported_query", str(exc)), None
    if isinstance(exc, ServiceOverloaded):
        ra = exc.retry_after or 0.05
        return 429, error_body("overloaded", str(exc), ra), ra
    if isinstance(exc, Backpressure):
        return 429, error_body("backpressure", str(exc), 0.05), 0.05
    if isinstance(exc, StalenessExceeded):
        return 503, error_body("staleness_exceeded", str(exc), 0.1), 0.1
    if isinstance(exc, ServiceClosed):
        return 503, error_body("service_closed", str(exc), 1.0), 1.0
    # Anything else is a server bug: name the type, never the traceback.
    return (
        500,
        error_body("internal", f"{type(exc).__name__}: {exc}"),
        None,
    )


class Gateway:
    """The network front door over one replicated service.

    Args:
        service: the :class:`~repro.replication.replicated.ReplicatedService`
            to serve (the gateway does not own its lifecycle unless
            :meth:`close` is asked to).
        config: bind address and worker fleet (:class:`GatewayConfig`).
        query_service: the in-process read router; default builds a
            ``QueryService(service, on_lag="catch_up", spread_lag=10**9)``
            (spread reads across every in-process replica).  Pass your
            own to choose lag policy, breakers, or admission control --
            overload shed there surfaces as HTTP 429.
    """

    def __init__(
        self,
        service: Any,
        config: GatewayConfig | None = None,
        query_service: QueryService | None = None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else GatewayConfig()
        #: A sharded backend (duck-typed on ``is_sharded``) routes its
        #: own reads across shard groups; the gateway then delegates to
        #: :meth:`ShardedService.query <repro.sharding.sharded.
        #: ShardedService.query>` instead of a single ``QueryService``,
        #: and the worker fleet (which tails *one* WAL) does not apply.
        self.sharded = bool(getattr(service, "is_sharded", False))
        self.query = (
            query_service
            if query_service is not None or self.sharded
            else QueryService(service, on_lag="catch_up", spread_lag=10**9)
        )
        self.pool: WorkerPool | None = (
            WorkerPool(
                list(self.config.workers),
                timeout=self.config.worker_timeout,
                retry_s=self.config.worker_retry_s,
                conns_per_worker=self.config.worker_conns,
            )
            if self.config.workers and not self.sharded
            else None
        )
        self._httpd: _GatewayHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- endpoints ------------------------------------------------------

    def handle_write(self, body: dict) -> dict:
        """``POST /v1/write``: one durable round -> its LSN token."""
        edges = parse_edges(body.get("edges", []))
        expire = body.get("expire", 0)
        if isinstance(expire, bool) or not isinstance(expire, int) or expire < 0:
            raise BadRequest("'expire' must be a non-negative integer")
        m = get_metrics()
        cost = (
            self.service.cost if self.sharded else self.service.primary.cost
        )
        with cost.phase("gateway-write", items=len(edges)):
            lsn = self.service.write(edges, expire=expire)
        m.counter("gateway.writes").inc()
        m.counter("gateway.write_edges").inc(len(edges))
        if self.sharded:
            # The token is a per-shard LSN vector, the epoch likewise.
            return {"lsn": lsn, "epoch": self.service.epochs}
        return {"lsn": lsn, "epoch": self.service.epoch}

    def handle_read(self, body: dict) -> dict:
        """``POST /v1/read``: one grouped batch under the requested
        consistency level, preferring the worker fleet."""
        queries = parse_queries(body.get("queries"))
        at_least, max_staleness = parse_consistency(
            body, shards=self.service.shards if self.sharded else None
        )
        m = get_metrics()
        m.counter("gateway.read_batches").inc()
        m.counter("gateway.reads").inc(len(queries))
        if self.sharded:
            res = self.service.query(
                queries, at_least=at_least, max_staleness=max_staleness
            )
            m.counter("gateway.inprocess_reads").inc()
            return {
                "answers": jsonable(res.answers),
                "lsn": res.vector,
                "replica": res.replica,
                "stale": res.stale,
            }
        if self.pool is not None and len(self.pool):
            required = 0 if at_least is None else at_least + 1
            if max_staleness is not None:
                required = max(
                    required, self.service.primary.next_lsn - max_staleness
                )
            try:
                reply = self.pool.read([list(q) for q in queries], required)
            except WorkerUnavailable:
                m.counter("gateway.worker_fallbacks").inc()
            except WorkerReadError as exc:
                if exc.kind == "unsupported_query":
                    raise UnsupportedQuery(str(exc)) from None
                raise BadRequest(str(exc)) from None
            else:
                m.counter("gateway.worker_reads").inc()
                return {
                    "answers": reply["answers"],
                    "lsn": reply["lsn"],
                    "replica": f"worker{reply.get('fid', '?')}",
                    "stale": False,
                }
        res = self.query.run(
            queries, at_least=at_least, max_staleness=max_staleness
        )
        m.counter("gateway.inprocess_reads").inc()
        return {
            "answers": jsonable(res.answers),
            "lsn": res.lsn,
            "replica": res.replica,
            "stale": res.stale,
        }

    def handle_health(self) -> dict:
        """``GET /v1/health``: liveness, durable tip, fleet state."""
        if self.sharded:
            fleet = self.service.describe()
            alive = all(
                getattr(g.primary, "alive", True) for g in self.service.groups
            )
            return {
                "status": "ok" if alive else "degraded",
                "sharded": True,
                "router": fleet["router"],
                "boundary": fleet["boundary"],
                "clock": fleet["clock"],
                "shards": fleet["groups"],
                "workers": [],
            }
        primary = self.service.primary
        alive = bool(getattr(primary, "alive", True))
        workers = self.pool.health() if self.pool is not None else []
        return {
            "status": "ok" if alive else "degraded",
            "primary": {
                "alive": alive,
                "lsn": primary.next_lsn,
                "epoch": self.service.epoch,
            },
            "followers": len(self.service.followers),
            "workers": workers,
        }

    # -- worker fleet ---------------------------------------------------

    def set_workers(self, addrs: list[str] | tuple[str, ...]) -> None:
        """Point read routing at a (new) worker fleet; empty detaches."""
        old = self.pool
        self.pool = (
            WorkerPool(
                list(addrs),
                timeout=self.config.worker_timeout,
                retry_s=self.config.worker_retry_s,
                conns_per_worker=self.config.worker_conns,
            )
            if addrs
            else None
        )
        if old is not None:
            old.close()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "Gateway":
        """Bind and serve on a background thread; returns ``self``."""
        if self._httpd is not None:
            return self
        httpd = _GatewayHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        httpd.gateway = self
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (resolves port 0)."""
        if self._httpd is None:
            raise RuntimeError("gateway is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def close(self, stop_workers: bool = False) -> None:
        """Stop serving (idempotent).  ``stop_workers=True`` also sends
        every reachable worker a clean ``stop`` first."""
        if self.pool is not None:
            if stop_workers:
                self.pool.stop_workers()
            self.pool.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.close()
