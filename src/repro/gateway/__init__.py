"""Network-facing serving tier: the HTTP/JSON gateway and worker routing.

The front door over the replicated service stack
(``docs/gateway.md`` / ``docs/architecture.md``)::

    from repro.gateway import Gateway, GatewayConfig
    from repro.replication import ReplicatedService

    rs = ReplicatedService(factory, data_dir, followers=1)
    with Gateway(rs, GatewayConfig(port=8080)) as gw:
        print(gw.url)          # POST /v1/write, /v1/read; GET /v1/health

Reads route to out-of-process ``python -m repro.replication.worker``
followers when a fleet is configured, falling back to the in-process
:class:`~repro.service.query.QueryService` otherwise.
``python -m repro.gateway`` runs a primary + gateway from the command
line; :mod:`repro.loadgen` drives it with open-loop traffic.
"""

from repro.gateway.protocol import (
    BadRequest,
    QUERY_KINDS,
    dumps,
    error_body,
    jsonable,
    parse_edges,
    parse_queries,
)
from repro.gateway.server import Gateway, GatewayConfig
from repro.gateway.workers import (
    WorkerClient,
    WorkerPool,
    WorkerReadError,
    WorkerUnavailable,
)

__all__ = [
    "Gateway",
    "GatewayConfig",
    "WorkerClient",
    "WorkerPool",
    "WorkerReadError",
    "WorkerUnavailable",
    "BadRequest",
    "QUERY_KINDS",
    "jsonable",
    "dumps",
    "error_body",
    "parse_queries",
    "parse_edges",
]
