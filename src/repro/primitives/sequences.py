"""Map / reduce / scan / pack over sequences, with work-span accounting.

The span charged follows the classic EREW/CRCW bounds: a balanced reduction
or scan over ``n`` items has ``O(n)`` work and ``O(lg n)`` span; a map has
``O(n)`` work and ``O(1)`` span (plus the cost of the mapped function, which
the function itself charges if it takes a cost model).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.runtime.cost import CostModel, log2ceil

T = TypeVar("T")
U = TypeVar("U")


def pmap(
    fn: Callable[[T], U], items: Sequence[T], cost: CostModel | None = None
) -> list[U]:
    """Apply ``fn`` to every item; ``O(n)`` work, ``O(1)`` span."""
    if cost is not None:
        cost.add(work=len(items), span=1)
    return [fn(x) for x in items]


def preduce(
    fn: Callable[[U, U], U],
    items: Iterable[U],
    identity: U,
    cost: CostModel | None = None,
) -> U:
    """Balanced-tree reduction; ``O(n)`` work, ``O(lg n)`` span."""
    acc = identity
    n = 0
    for x in items:
        acc = fn(acc, x)
        n += 1
    if cost is not None:
        cost.add(work=max(n, 1), span=log2ceil(max(n, 2)))
    return acc


def prefix_sums(
    values: np.ndarray | Sequence[int], cost: CostModel | None = None
) -> np.ndarray:
    """Exclusive prefix sums; ``O(n)`` work, ``O(lg n)`` span.

    Returns an array of length ``n + 1`` whose last entry is the total.
    """
    arr = np.asarray(values, dtype=np.int64)
    out = np.empty(arr.shape[0] + 1, dtype=np.int64)
    out[0] = 0
    np.cumsum(arr, out=out[1:])
    if cost is not None:
        cost.add(work=max(arr.shape[0], 1), span=log2ceil(max(arr.shape[0], 2)))
    return out


def pack(
    flags: np.ndarray | Sequence[bool],
    items: Sequence[T],
    cost: CostModel | None = None,
) -> list[T]:
    """Keep items whose flag is set, preserving order; ``O(n)`` work."""
    mask = np.asarray(flags, dtype=bool)
    if len(mask) != len(items):
        raise ValueError("flags and items must have equal length")
    if cost is not None:
        cost.add(work=max(len(items), 1), span=log2ceil(max(len(items), 2)))
    return [x for x, keep in zip(items, mask) if keep]


def pfilter(
    pred: Callable[[T], bool], items: Sequence[T], cost: CostModel | None = None
) -> list[T]:
    """Filter by a predicate (map + pack); ``O(n)`` work, ``O(lg n)`` span."""
    if cost is not None:
        cost.add(work=max(len(items), 1), span=log2ceil(max(len(items), 2)))
    return [x for x in items if pred(x)]


def pflatten(
    lists: Sequence[Sequence[Any]], cost: CostModel | None = None
) -> list[Any]:
    """Flatten nested sequences; ``O(total)`` work, ``O(lg n)`` span."""
    out: list[Any] = []
    for sub in lists:
        out.extend(sub)
    if cost is not None:
        cost.add(work=max(len(out), 1), span=log2ceil(max(len(lists), 2)))
    return out
