"""Semisorting and deduplication.

Algorithm 2 collects the distinct endpoints of a batch with a semisort
(Theorem 4.2: "Collecting the endpoints of the edges takes O(l) work in
expectation and O(lg l) span w.h.p. using a semisort").  A semisort groups
equal keys together without fully ordering the groups; the classic parallel
bound is ``O(n)`` expected work and ``O(lg n)`` span w.h.p. [Gu, Shun, Sun,
Blelloch 2015].  We charge those bounds while implementing the grouping with
numpy hashing/sorting, which is the fastest vectorized realisation in Python.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel, log2ceil


def _charge_semisort(n: int, cost: CostModel | None) -> None:
    if cost is not None and n > 0:
        cost.add(work=n, span=log2ceil(max(n, 2)))
    m = get_metrics()
    m.counter("semisort.calls").inc()
    m.counter("semisort.items").inc(n)


def semisort_pairs(
    keys: Sequence[int], values: Sequence[int], cost: CostModel | None = None
) -> dict[int, list[int]]:
    """Group ``values`` by ``keys``; expected ``O(n)`` work, ``O(lg n)`` span."""
    if len(keys) != len(values):
        raise ValueError("keys and values must have equal length")
    _charge_semisort(len(keys), cost)
    groups: dict[int, list[int]] = {}
    for k, v in zip(keys, values):
        groups.setdefault(k, []).append(v)
    return groups


def group_by_key(
    keys: np.ndarray | Sequence[int], cost: CostModel | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Return (unique keys, counts), grouped by semisort.

    Expected ``O(n)`` work and ``O(lg n)`` span w.h.p.
    """
    arr = np.asarray(keys, dtype=np.int64)
    _charge_semisort(arr.shape[0], cost)
    uniq, counts = np.unique(arr, return_counts=True)
    return uniq, counts


def dedup_ints(
    keys: np.ndarray | Sequence[int], cost: CostModel | None = None
) -> np.ndarray:
    """Distinct keys (sorted); expected ``O(n)`` work, ``O(lg n)`` span."""
    arr = np.asarray(keys, dtype=np.int64)
    _charge_semisort(arr.shape[0], cost)
    return np.unique(arr)
