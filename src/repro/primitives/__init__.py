"""Work-efficient parallel sequence primitives (map, reduce, scan, pack, semisort).

These are the bulk building blocks the paper's algorithms assume from the
PRAM literature.  Implementations are numpy-vectorized; each charges its
textbook work/span to the caller's :class:`~repro.runtime.CostModel`
(``n`` work and ``O(lg n)`` span unless noted).
"""

from repro.primitives.sequences import (
    pack,
    pmap,
    prefix_sums,
    preduce,
    pfilter,
)
from repro.primitives.semisort import dedup_ints, group_by_key, semisort_pairs

__all__ = [
    "pmap",
    "preduce",
    "prefix_sums",
    "pack",
    "pfilter",
    "semisort_pairs",
    "group_by_key",
    "dedup_ints",
]
