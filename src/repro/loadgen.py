"""A seeded open-loop load generator for the HTTP gateway.

Closed-loop drivers (a fixed thread pool of back-to-back requests) hide
overload: when the server slows down, the offered load politely slows
down with it, and the measured latency flatters the system.  This
generator is **open-loop**: arrivals follow a Poisson process whose rate
is set by the simulated population -- ``clients`` independent users each
thinking for ``Exp(think_s)`` between requests merge into one Poisson
stream of rate ``clients / think_s`` -- so tens of thousands of simulated
clients press on regardless of how the gateway is doing, and queueing
delay shows up where it belongs: in the end-to-end latency tail.

Mechanics:

- one **scheduler** thread walks the seeded exponential arrival clock
  and enqueues request specs at their arrival instants (never waiting on
  completions);
- a bounded pool of **connection workers** -- ``pool`` persistent
  keep-alive :class:`http.client.HTTPConnection` sockets -- drains the
  queue.  The queue is bounded at ``queue_cap``; an arrival that finds
  it full is counted as ``shed`` (the client-side symptom of a saturated
  server) instead of growing memory without bound;
- the mix is skewed: ``read_fraction`` of arrivals are grouped
  ``/v1/read`` batches over a power-law vertex popularity (hot vertices
  get most of the queries, the way real traffic does), the rest are
  small ``/v1/write`` batches that keep the window sliding.

Latency is recorded **end to end**: from the scheduled arrival instant
(not from socket send) to response receipt, so client-side queueing --
the open-loop penalty of a slow server -- is inside the reported
p50/p99.  Results come back as a :class:`LoadReport`;
``python -m repro.loadgen --url ... --duration 5`` prints one as JSON
(the CI smoke job's probe).  ``benchmarks/bench_gateway.py`` sweeps
follower-process counts with this generator and records the scaling
artifact.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import queue
import random
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.gateway.protocol import dumps
from repro.sharding.router import ShardRouter

#: The default read mix: kinds every connectivity structure answers.
#: (``certificate``/``k_connected`` etc. are structure-specific; pass
#: ``read_kinds`` explicitly when driving one of those.)
_DEFAULT_READ_KINDS = ("connected", "path_max", "components", "window_size")


class GatewayConnection(http.client.HTTPConnection):
    """Keep-alive connection with Nagle disabled.

    Small request/response pairs over a reused socket otherwise trip the
    Nagle / delayed-ACK interaction -- ~40ms stalls per round trip that
    would drown every latency the generator is trying to measure.  Set
    on ``connect`` so lazy reconnects after a dropped socket keep the
    option too.
    """

    def connect(self) -> None:
        super().connect()
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


@dataclass
class LoadConfig:
    """One load run's shape (fully determined by ``seed``).

    Attributes:
        duration_s: measurement window, seconds.
        clients: simulated user population.
        think_s: mean think time per client, seconds -- offered load is
            ``clients / think_s`` requests/s.
        read_fraction: probability an arrival is a read batch.
        read_batch: queries per read batch (grouped server-side into
            shared RC-tree sweeps).
        write_batch: edges per write round.
        n: vertex id space (must be within the served structure's ``n``).
        skew: popularity exponent; vertex ``i`` is drawn with probability
            proportional to ``1 / (i + 1)**skew`` (0.0: uniform).
        pool: persistent HTTP connections (the socket pool bound).
        queue_cap: arrival-queue bound; beyond it arrivals are shed
            client-side and counted.
        expire_every: a write carries ``expire=write_batch`` once every
            this many writes, keeping the window from growing forever.
        read_kinds: the batch composition drawn from per read.
        shards: shard groups the *served* tier is partitioned into; with
            ``shards > 1`` every vertex pair (edges and pair reads) is
            drawn through a :class:`PartitionSampler` sharing the
            server's :class:`~repro.sharding.router.ShardRouter` mapping.
        partition_skew: probability a drawn pair stays shard-local
            (1.0: fully partitionable traffic; 0.0: adversarially
            cross-shard).  Ignored when ``shards == 1``.
        shard_scheme / shard_seed: the router parameters -- they must
            match the served :class:`ShardedService`'s router for the
            locality knob to mean anything.
        seed: the whole run -- arrival clock, mix, targets -- replays
            byte-identically given it.
    """

    duration_s: float = 5.0
    clients: int = 10_000
    think_s: float = 10.0
    read_fraction: float = 0.9
    read_batch: int = 8
    write_batch: int = 4
    n: int = 512
    skew: float = 1.1
    pool: int = 8
    queue_cap: int = 256
    expire_every: int = 2
    read_kinds: tuple[str, ...] = _DEFAULT_READ_KINDS
    shards: int = 1
    partition_skew: float = 1.0
    shard_scheme: str = "hash"
    shard_seed: int = 0x5EED
    seed: int = 13


@dataclass
class LoadReport:
    """What one run measured (JSON-ready via :meth:`as_dict`)."""

    duration_s: float
    offered: int  #: arrivals the schedule generated
    completed: int  #: 2xx responses
    reads: int  #: completed read batches
    read_queries: int  #: individual queries inside them
    writes: int  #: completed write rounds
    shed_client: int  #: arrivals dropped at the full client queue
    errors: dict[str, int] = field(default_factory=dict)
    reads_per_s: float = 0.0
    writes_per_s: float = 0.0
    queries_per_s: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "reads": self.reads,
            "read_queries": self.read_queries,
            "writes": self.writes,
            "shed_client": self.shed_client,
            "errors": dict(sorted(self.errors.items())),
            "reads_per_s": self.reads_per_s,
            "writes_per_s": self.writes_per_s,
            "queries_per_s": self.queries_per_s,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
        }


def _percentile(sorted_xs: list[float], q: float) -> float:
    if not sorted_xs:
        return 0.0
    i = min(len(sorted_xs) - 1, max(0, math.ceil(q * len(sorted_xs)) - 1))
    return sorted_xs[i]


class _Zipfish:
    """Seeded power-law vertex sampler: weight ``1/(i+1)**skew``.

    Inverse-CDF over the precomputed cumulative weights -- O(lg n) per
    draw, deterministic given the rng.
    """

    def __init__(self, n: int, skew: float) -> None:
        self.n = n
        if skew <= 0.0:
            self.cum = None
            return
        acc, cum = 0.0, []
        for i in range(n):
            acc += 1.0 / (i + 1) ** skew
            cum.append(acc)
        self.cum = cum
        self.total = acc

    def draw(self, rng: random.Random) -> int:
        if self.cum is None:
            return rng.randrange(self.n)
        x = rng.random() * self.total
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cum[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo


class PartitionSampler:
    """Seeded pair sampler with a shard-locality knob.

    Singleton draws follow the :class:`_Zipfish` popularity law.  Pair
    draws (edges, pair reads) are where sharding enters: given a router,
    a pair stays **shard-local with probability exactly**
    ``partition_skew`` -- the second endpoint is popularity-drawn
    *conditioned* on landing on (resp. off) the first endpoint's home
    shard.  ``partition_skew=1.0`` emits the fully partitionable stream,
    ``0.0`` the adversarially cross-shard one; both the gateway bench
    and ``benchmarks/bench_shards.py`` draw from this one generator.

    Conditioning is by bounded rejection (the popularity shape within
    the shard is preserved); the deterministic fallback after
    ``_MAX_TRIES`` misses draws uniformly from the cached shard
    membership, so a shard holding negligible popularity mass cannot
    stall the arrival clock.
    """

    _MAX_TRIES = 64

    def __init__(
        self,
        n: int,
        skew: float,
        router: ShardRouter | None = None,
        partition_skew: float = 1.0,
    ) -> None:
        if not 0.0 <= partition_skew <= 1.0:
            raise ValueError("partition_skew must be within [0, 1]")
        self.base = _Zipfish(n, skew)
        self.router = router if router is not None and router.shards > 1 else None
        self.partition_skew = partition_skew
        self._members: dict[int, list[int]] = {}
        self._others: dict[int, list[int]] = {}

    def draw(self, rng: random.Random) -> int:
        return self.base.draw(rng)

    def _shard_members(self, shard: int, local: bool) -> list[int]:
        cache = self._members if local else self._others
        got = cache.get(shard)
        if got is None:
            assert self.router is not None
            got = [
                v
                for v in range(self.router.n)
                if (self.router.shard_of(v) == shard) == local
            ]
            cache[shard] = got
        return got

    def draw_pair(self, rng: random.Random) -> tuple[int, int]:
        u = self.base.draw(rng)
        if self.router is None:
            return u, self.base.draw(rng)
        home = self.router.shard_of(u)
        local = rng.random() < self.partition_skew
        for _ in range(self._MAX_TRIES):
            v = self.base.draw(rng)
            if (self.router.shard_of(v) == home) == local:
                return u, v
        members = self._shard_members(home, local)
        if not members:  # a one-shard router cannot produce a cut pair
            return u, self.base.draw(rng)
        return u, members[rng.randrange(len(members))]


def _build_request(
    cfg: LoadConfig,
    rng: random.Random,
    sampler: PartitionSampler,
    write_no: int,
) -> tuple[str, bytes, bool]:
    """One arrival's ``(path, body, is_read)`` under the seeded mix."""
    if rng.random() < cfg.read_fraction:
        batch: list[list] = []
        for _ in range(cfg.read_batch):
            kind = rng.choice(cfg.read_kinds)
            if kind in ("connected", "path_max"):
                batch.append([kind, *sampler.draw_pair(rng)])
            else:
                batch.append([kind])
        return "/v1/read", dumps({"queries": batch}), True
    edges = [list(sampler.draw_pair(rng)) for _ in range(cfg.write_batch)]
    expire = cfg.write_batch if write_no % max(1, cfg.expire_every) == 0 else 0
    return "/v1/write", dumps({"edges": edges, "expire": expire}), False


def run_load(host: str, port: int, cfg: LoadConfig) -> LoadReport:
    """Drive one open-loop run against ``host:port``; returns the report."""
    rng = random.Random(cfg.seed)
    sampler = PartitionSampler(
        cfg.n,
        cfg.skew,
        router=(
            ShardRouter(
                cfg.n, cfg.shards, scheme=cfg.shard_scheme, seed=cfg.shard_seed
            )
            if cfg.shards > 1
            else None
        ),
        partition_skew=cfg.partition_skew,
    )
    rate = cfg.clients / cfg.think_s  # merged Poisson arrival rate
    work: queue.Queue = queue.Queue(maxsize=cfg.queue_cap)
    lock = threading.Lock()
    latencies: list[float] = []
    stats = {
        "offered": 0,
        "completed": 0,
        "reads": 0,
        "read_queries": 0,
        "writes": 0,
        "shed_client": 0,
    }
    errors: dict[str, int] = {}
    stop = threading.Event()

    def scheduler() -> None:
        # The arrival clock is seeded and independent of completions:
        # this loop never blocks on the server, only on wall time.
        t0 = time.perf_counter()
        next_at = 0.0
        write_no = 0
        while not stop.is_set():
            next_at += rng.expovariate(rate)
            if next_at > cfg.duration_s:
                return
            path, body, is_read = _build_request(cfg, rng, sampler, write_no)
            if not is_read:
                write_no += 1
            delay = t0 + next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            with lock:
                stats["offered"] += 1
            try:
                work.put_nowait((time.perf_counter(), path, body, is_read))
            except queue.Full:
                with lock:
                    stats["shed_client"] += 1

    def connection_worker() -> None:
        conn = GatewayConnection(host, port, timeout=30.0)
        try:
            while True:
                item = work.get()
                if item is None:
                    return
                arrived, path, body, is_read = item
                try:
                    conn.request(
                        "POST",
                        path,
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    resp = conn.getresponse()
                    payload = resp.read()  # drain for keep-alive
                    status = resp.status
                except OSError:
                    conn.close()  # reconnect lazily on the next request
                    with lock:
                        errors["transport"] = errors.get("transport", 0) + 1
                    continue
                wall_ms = (time.perf_counter() - arrived) * 1e3
                if status == 200:
                    with lock:
                        stats["completed"] += 1
                        latencies.append(wall_ms)
                        if is_read:
                            stats["reads"] += 1
                            stats["read_queries"] += cfg.read_batch
                        else:
                            stats["writes"] += 1
                else:
                    try:
                        kind = json.loads(payload)["error"]["type"]
                    except (ValueError, KeyError, TypeError):
                        kind = f"http_{status}"
                    with lock:
                        errors[kind] = errors.get(kind, 0) + 1
        finally:
            conn.close()

    workers = [
        threading.Thread(target=connection_worker, name=f"loadgen-{i}")
        for i in range(cfg.pool)
    ]
    for t in workers:
        t.start()
    sched = threading.Thread(target=scheduler, name="loadgen-sched")
    t_start = time.perf_counter()
    sched.start()
    sched.join()
    # Let in-flight work drain, then release the pool.
    for _ in workers:
        work.put(None)
    for t in workers:
        t.join()
    wall = time.perf_counter() - t_start
    stop.set()

    latencies.sort()
    return LoadReport(
        duration_s=wall,
        offered=stats["offered"],
        completed=stats["completed"],
        reads=stats["reads"],
        read_queries=stats["read_queries"],
        writes=stats["writes"],
        shed_client=stats["shed_client"],
        errors=errors,
        reads_per_s=stats["reads"] / wall if wall else 0.0,
        writes_per_s=stats["writes"] / wall if wall else 0.0,
        queries_per_s=stats["read_queries"] / wall if wall else 0.0,
        p50_ms=_percentile(latencies, 0.50),
        p99_ms=_percentile(latencies, 0.99),
    )


def main(argv: list[str] | None = None) -> int:
    """CLI probe: run one load and print the report as JSON."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Open-loop load generator for the repro gateway "
        "(docs/gateway.md).",
    )
    parser.add_argument("--url", required=True, help="gateway host:port")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--clients", type=int, default=10_000)
    parser.add_argument("--think", type=float, default=10.0,
                        help="mean think time per client, seconds")
    parser.add_argument("--read-fraction", type=float, default=0.9)
    parser.add_argument("--read-batch", type=int, default=8)
    parser.add_argument("--write-batch", type=int, default=4)
    parser.add_argument("--n", type=int, default=512)
    parser.add_argument("--skew", type=float, default=1.1)
    parser.add_argument("--pool", type=int, default=8)
    parser.add_argument("--shards", type=int, default=1,
                        help="shard groups the served tier runs")
    parser.add_argument("--partition-skew", type=float, default=1.0,
                        help="probability a drawn pair stays shard-local")
    parser.add_argument("--shard-scheme", default="hash",
                        choices=("hash", "range"))
    parser.add_argument("--shard-seed", type=int, default=0x5EED)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    host, _, port = args.url.replace("http://", "").rpartition(":")
    if not port.isdigit():
        print(f"--url must be host:port, got {args.url!r}", file=sys.stderr)
        return 2
    cfg = LoadConfig(
        duration_s=args.duration,
        clients=args.clients,
        think_s=args.think,
        read_fraction=args.read_fraction,
        read_batch=args.read_batch,
        write_batch=args.write_batch,
        n=args.n,
        skew=args.skew,
        pool=args.pool,
        shards=args.shards,
        partition_skew=args.partition_skew,
        shard_scheme=args.shard_scheme,
        shard_seed=args.shard_seed,
        seed=args.seed,
    )
    report = run_load(host or "127.0.0.1", int(port), cfg)
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
