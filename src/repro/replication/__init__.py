"""Primary/follower replication over the durable service layer.

The write path of :mod:`repro.service` already externalizes every state
transition as a WAL round; replication reuses that log as the shipping
protocol.  :class:`~repro.replication.replicated.ReplicatedService` runs
one ingesting primary and N in-process
:class:`~repro.replication.follower.Follower` replicas that bootstrap
from the newest checkpoint and tail the WAL from their LSN, replaying
rounds through the primary's own apply path -- so a caught-up replica is
byte-identical to the primary on either RC-tree engine.  Failover is
``promote()``: a monotone *epoch* stamped into every WAL record fences
the old primary, whose post-promotion appends are rejected on replay.

Reads are served by :class:`~repro.service.query.QueryService`, which
routes query batches to the least-lagged replica under LSN-token
consistency.  See ``docs/replication.md``.
"""

from repro.replication.follower import Follower, FollowerDead
from repro.replication.replicated import ReplicatedService

__all__ = ["Follower", "FollowerDead", "ReplicatedService"]
