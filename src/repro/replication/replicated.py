"""Primary/follower orchestration: one writer, N replicas, failover.

:class:`ReplicatedService` owns the ingesting primary (a
:class:`~repro.service.service.StreamService`) and a set of
:class:`~repro.replication.follower.Follower` replicas tailing its WAL.
Replication is asynchronous: :meth:`write` returns as soon as the round
is durable on the primary, and followers converge via :meth:`poll` (or
the background threads of :meth:`start_replication`, whose poll phases
are *staggered* so the least-lagged replica at any instant is much
fresher than any single replica's polling interval -- the order-statistics
effect the read benchmark measures).

Failover (:meth:`promote`) is log-native:

1. the chosen follower stops at its ``replayed_lsn`` ``R`` -- rounds the
   old primary committed beyond ``R`` are *discarded* (the price of
   asynchronous replication, exactly as in production systems);
2. the WAL is reset to a fresh segment starting at ``R`` under epoch
   ``e+1``, and checkpoints covering discarded rounds are deleted;
3. every other follower is fenced with ``(R, e+1)``.

The old primary object is deliberately **not** closed: it is now a
*zombie* -- a process that lost the promotion but does not know it.  Its
further appends land in its old segment under the stale epoch, and every
reader (follower cursors, recovery scans) rejects them in favour of the
new epoch's chain.  ``tests/test_replication.py`` drives exactly this
split-brain scenario.
"""

from __future__ import annotations

import pathlib
import threading
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_metrics
from repro.replication.follower import Follower, FollowerDead
from repro.service.resilience import RetryPolicy, is_transient_io
from repro.service.service import ServiceConfig, StreamService
from repro.service.wal import OP_INSERT, Op, WalTruncated


class ReplicatedService:
    """One ingesting primary plus N in-process read replicas.

    Args:
        factory: builds the empty structure (primary and every follower
            call it; it must be deterministic).
        data_dir: shared storage -- the primary's WAL and snapshots, and
            the medium followers replicate from.
        config: the primary's :class:`ServiceConfig` (its ``io`` seam, if
            any, is shared with every follower so chaos faults hit both
            sides of the log).
        followers: how many replicas to attach immediately.
        follower_retry: optional retry policy handed to each follower for
            transient storage faults while tailing.
    """

    def __init__(
        self,
        factory: Callable[[], Any],
        data_dir: str | pathlib.Path,
        config: ServiceConfig | None = None,
        followers: int = 0,
        follower_retry: RetryPolicy | None = None,
    ) -> None:
        self.factory = factory
        self.data_dir = pathlib.Path(data_dir)
        self.config = config if config is not None else ServiceConfig()
        self.follower_retry = follower_retry
        self.primary: StreamService = StreamService.open(
            self.data_dir, factory, self.config
        )
        self.followers: list[Follower] = []
        self._next_fid = 0
        self._repl_threads: list[threading.Thread] = []
        self._stop_repl = threading.Event()
        for _ in range(followers):
            self.add_follower()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_follower(self) -> Follower:
        """Attach one more replica (bootstraps from snapshot + WAL suffix)."""
        f = Follower(
            self._next_fid,
            self.data_dir,
            self.factory,
            io=self.config.io,
            retry=self.follower_retry,
        )
        self._next_fid += 1
        self.followers.append(f)
        get_metrics().gauge("replication.followers").set(len(self.followers))
        return f

    @property
    def epoch(self) -> int:
        """The current primary's fencing epoch."""
        return self.primary.epoch

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write(self, edges: Sequence[Sequence] = (), expire: int = 0) -> int:
        """Commit one round on the primary; returns its LSN token.

        The token feeds read-your-writes: a read tagged
        ``at_least=<token>`` only answers once some replica has replayed
        past it.  An empty write returns the newest committed LSN.
        """
        if edges:
            self.primary.submit_insert(edges)
        if expire:
            self.primary.submit_expire(expire)
        lsn = self.primary.flush()
        return lsn if lsn >= 0 else self.primary.next_lsn - 1

    def write_ops(self, ops: Sequence[Op]) -> int:
        """Commit one round with an explicit WAL-shaped op list.

        The trace replayer's write path: ``ops`` is a recorded round's
        ordered op list (``("i", edges)`` / ``("e", delta)``), submitted
        in order and flushed as one round, so the committed round's op
        structure matches the recorded one exactly (alternating kinds
        are preserved, not re-coalesced).  Returns the LSN token, like
        :meth:`write`.
        """
        for kind, payload in ops:
            if kind == OP_INSERT:
                self.primary.submit_insert(payload)
            else:
                self.primary.submit_expire(payload)
        lsn = self.primary.flush()
        return lsn if lsn >= 0 else self.primary.next_lsn - 1

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def poll(self) -> dict[int, int]:
        """Catch every live follower up; returns ``{fid: replayed_lsn}``."""
        out = {}
        for f in self.followers:
            if f.alive:
                f.catch_up()
            out[f.fid] = f.replayed_lsn
        self._lag_gauges()
        return out

    def lag(self) -> dict[int, int]:
        """Per-follower lag in rounds behind the primary's durable tip."""
        tip = self.primary.next_lsn
        return {f.fid: tip - f.replayed_lsn for f in self.followers}

    def _lag_gauges(self) -> None:
        lags = self.lag()
        m = get_metrics()
        for fid, lag in lags.items():
            m.gauge(f"replication.lag.follower{fid}").set(lag)
        if lags:
            m.gauge("replication.lag.min").set(min(lags.values()))
            m.gauge("replication.lag.max").set(max(lags.values()))

    def start_replication(
        self, interval: float = 0.002, max_records: int | None = None
    ) -> None:
        """Tail continuously on one background thread per follower.

        Poll phases are staggered across followers (follower ``i`` starts
        ``i/N`` of an interval late), so with N replicas *some* replica
        finished a poll within ``interval / N`` of any instant -- the
        least-lagged replica a read routes to is fresher than any single
        replica could be.

        ``max_records`` bounds how many rounds one poll ships: a
        *replication budget* of ``max_records / interval`` rounds per
        second per follower.  Under the budget a burst drains gradually
        instead of monopolising the replica's lock (and, on a small
        machine, the CPU) in one long replay; lag absorbs the backlog and
        the gauges report it.
        """
        if self._repl_threads:
            return
        self._stop_repl.clear()
        n = max(1, len(self.followers))
        for i, f in enumerate(self.followers):
            t = threading.Thread(
                target=self._repl_loop,
                args=(f, interval, (i / n) * interval, max_records),
                name=f"repro-repl-f{f.fid}",
                daemon=True,
            )
            t.start()
            self._repl_threads.append(t)

    def _repl_loop(
        self,
        f: Follower,
        interval: float,
        initial_delay: float,
        max_records: int | None = None,
    ) -> None:
        if self._stop_repl.wait(initial_delay):
            return
        m = get_metrics()
        while not self._stop_repl.is_set():
            if f.alive:
                try:
                    f.catch_up(max_records)
                except (FollowerDead, WalTruncated):
                    # Expected life-cycle races: the follower was killed
                    # between the alive check and the poll, or the log was
                    # truncated twice in one poll.  The next tick retries
                    # (a restart revives a killed follower).
                    m.counter("replication.tail_errors").inc()
                except Exception as exc:
                    m.counter("replication.tail_errors").inc()
                    if not is_transient_io(exc):
                        # Corruption or a genuine bug: do NOT loop quietly
                        # over it -- take the replica out of rotation with
                        # the cause recorded, so routing skips it and the
                        # operator sees it.
                        f.fail(exc)
                    # else: the retry policy exhausted its budget this
                    # tick; the fault window may have passed by the next.
            self._lag_gauges()
            self._stop_repl.wait(interval)

    def stop_replication(self) -> None:
        """Stop the background tailing threads (if running)."""
        self._stop_repl.set()
        for t in self._repl_threads:
            t.join()
        self._repl_threads.clear()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def promote(
        self, follower: Follower | int, catch_up: bool = True
    ) -> StreamService:
        """Make ``follower`` the new primary; returns the fenced zombie.

        With ``catch_up`` (default) the follower first replays everything
        durable, so nothing is lost; ``catch_up=False`` models promoting
        during a primary outage -- rounds past the follower's
        ``replayed_lsn`` are discarded from the timeline, and the old
        primary's epoch is fenced so its appends (and checkpoints) from
        here on are rejected everywhere.
        """
        f = (
            follower
            if isinstance(follower, Follower)
            else next(g for g in self.followers if g.fid == follower)
        )
        if f not in self.followers:
            raise ValueError(f"follower {f.fid} is not attached")
        self.stop_replication()
        if catch_up:
            f.catch_up()
        behind = [
            g.fid
            for g in self.followers
            if g is not f and g.alive and g.replayed_lsn > f.replayed_lsn
        ]
        if behind:
            raise ValueError(
                f"follower {f.fid} (replayed {f.replayed_lsn}) is behind "
                f"followers {behind}; promote the most caught-up replica"
            )
        adoption_lsn = f.replayed_lsn
        new_epoch = self.primary.epoch + 1
        zombie = self.primary
        # The zombie stays open on purpose: split-brain means the loser
        # keeps writing.  Fencing, not process death, protects the data.
        self.followers.remove(f)
        self.primary = StreamService.adopt(
            f.structure,
            self.data_dir,
            lsn=adoption_lsn,
            epoch=new_epoch,
            config=self.config,
        )
        for g in self.followers:
            g.fence(adoption_lsn, new_epoch)
        m = get_metrics()
        m.counter("replication.promotions").inc()
        m.gauge("replication.epoch").set(new_epoch)
        m.gauge("replication.followers").set(len(self.followers))
        return zombie

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop replication threads and close the primary (idempotent)."""
        self.stop_replication()
        self.primary.close()

    def __enter__(self) -> "ReplicatedService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
