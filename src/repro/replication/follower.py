"""A read replica: snapshot bootstrap plus incremental WAL replay.

A :class:`Follower` is the unit of the read tier.  It never talks to the
primary process directly -- the *log is the replication protocol*: the
follower bootstraps from the newest trustworthy checkpoint in the shared
``data_dir``, positions a :class:`~repro.service.wal.WalCursor` at its
``replayed_lsn``, and each :meth:`catch_up` ships newly durable rounds and
replays them through :func:`repro.service.service.apply_ops` -- the exact
code path the primary's apply loop uses -- so a fully caught-up follower
is *byte-identical* to the primary (the structures are deterministic
functions of the round sequence).

Crash/restart is therefore trivial: :meth:`kill` drops the in-memory
state, :meth:`restart` re-bootstraps from disk, and the kill-matrix tests
assert the re-tailed state matches an uninterrupted replica at every
possible kill offset.

Fencing: after a promotion the follower is told ``fence(lsn, epoch)``;
its cursor then rejects any record at ``lsn`` onward carrying an older
epoch (a zombie ex-primary's appends), and its bootstrap refuses
checkpoints the zombie took after losing the promotion.
"""

from __future__ import annotations

import pathlib
import threading
from typing import Any, Callable

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel
from repro.service.query import BUSY
from repro.service.resilience import RetryPolicy
from repro.service.service import SNAPSHOT_DIRNAME, apply_ops, wal_directory
from repro.service.snapshot import SnapshotStore
from repro.service.storage import StorageIO
from repro.service.wal import WalCursor, WalTruncated


class FollowerDead(RuntimeError):
    """The follower was killed; :meth:`Follower.restart` revives it."""


class Follower:
    """One in-process read replica over a primary's ``data_dir``.

    Args:
        fid: replica id (display/metrics only; unique per service).
        data_dir: the primary's data directory (shared storage).
        factory: builds the empty structure when no checkpoint exists;
            must match the primary's (same ``n``, ``seed``, ``engine``).
        io: the storage seam for bootstrap reads and WAL tailing
            (default: real I/O); chaos tests inject faults here.
        retry: optional retry policy applied to *transient* storage
            faults while tailing the log in :meth:`catch_up` --
            corruption still fails loud.
    """

    def __init__(
        self,
        fid: int,
        data_dir: str | pathlib.Path,
        factory: Callable[[], Any],
        io: StorageIO | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.fid = fid
        self.data_dir = pathlib.Path(data_dir)
        self.factory = factory
        self._io = io
        self._retry = retry
        self._lock = threading.RLock()
        self._fence: tuple[int, int] = (0, 0)
        self._killed = False
        self._fenced_seen = 0
        self.structure: Any = None
        self.last_error: BaseException | None = None
        self._bootstrap()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        store = SnapshotStore(self.data_dir / SNAPSHOT_DIRNAME, io=self._io)
        fence_lsn, fence_epoch = self._fence
        snap = store.load_latest(
            valid=lambda lsn, epoch: not (
                lsn >= fence_lsn and epoch < fence_epoch
            )
        )
        if snap is None:
            self.structure = self.factory()
            self._replayed = 0
        else:
            snap_lsn, self.structure = snap
            self._replayed = snap_lsn + 1  # checkpoint covers rounds 0..lsn
        self.cursor = WalCursor(
            wal_directory(self.data_dir), next_lsn=self._replayed, io=self._io
        )
        self.cursor.fence(fence_lsn, fence_epoch)
        self._fenced_seen = 0
        get_metrics().counter("replication.bootstraps").inc()

    def kill(self) -> None:
        """Simulate a replica crash: drop all in-memory state."""
        with self._lock:
            self._killed = True
            self.structure = None
            get_metrics().counter("replication.follower_kills").inc()

    def restart(self) -> None:
        """Revive a killed replica by re-bootstrapping from disk."""
        with self._lock:
            self._bootstrap()
            self._killed = False
            self.last_error = None

    def fail(self, exc: BaseException) -> None:
        """Take the replica out of rotation after an unexpected error.

        The replication loop calls this when tailing raises something
        that is neither an expected life-cycle event nor retryable: the
        replica stops serving (``alive`` goes False) with the cause kept
        in ``last_error`` for the operator; :meth:`restart` revives it
        from disk.
        """
        with self._lock:
            self._killed = True
            self.structure = None
            self.last_error = exc
            get_metrics().counter("replication.follower_failures").inc()

    @property
    def alive(self) -> bool:
        """Whether the replica currently serves (not killed)."""
        return not self._killed

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    @property
    def replayed_lsn(self) -> int:
        """Rounds replayed so far: reads at ``at_least=lsn`` need
        ``replayed_lsn > lsn`` (the write's round must be applied)."""
        return self._replayed

    @property
    def cost(self) -> CostModel:
        """The served structure's cost model (phases nest under it)."""
        cost = getattr(self.structure, "cost", None)
        return cost if cost is not None else CostModel(enabled=False)

    def catch_up(self, max_records: int | None = None) -> int:
        """Ship and replay newly durable rounds; returns how many.

        A position truncated away underneath (the primary bounds WAL
        growth) triggers a transparent re-bootstrap from the newest
        checkpoint before tailing resumes.
        """
        with self._lock:
            self._check_alive()
            m = get_metrics()
            # Transient storage faults while tailing retry under the
            # policy (the cursor leaves its position untouched on error,
            # so a retry re-reads the same range); WalTruncated is not
            # transient and falls through to the re-bootstrap.
            if self._retry is not None:
                poll = lambda: self._retry.call(  # noqa: E731
                    lambda: self.cursor.poll(max_records)
                )
            else:
                poll = lambda: self.cursor.poll(max_records)  # noqa: E731
            with self.cost.phase("repl-ship") as ph:
                try:
                    records = poll()
                except WalTruncated:
                    self._bootstrap()
                    records = poll()
                ph.count(len(records))
            fenced = self.cursor.fenced_rejections - self._fenced_seen
            if fenced:
                self._fenced_seen = self.cursor.fenced_rejections
                m.counter("replication.fenced_records").inc(fenced)
            if not records:
                return 0
            with self.cost.phase("repl-replay") as ph:
                for rec in records:
                    apply_ops(self.structure, rec.ops)
                    self._replayed = rec.lsn + 1
                ph.count(len(records))
            m.counter("replication.shipped_records").inc(len(records))
            m.counter("replication.replayed_rounds").inc(len(records))
            return len(records)

    def fence(self, lsn: int, epoch: int) -> None:
        """Reject rounds at ``lsn`` onward older than ``epoch`` (set by
        the service after a promotion)."""
        with self._lock:
            self._fence = (lsn, epoch)
            self.cursor.fence(lsn, epoch)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def query(self, fn: Callable[[Any], Any]) -> Any:
        """Run ``fn(structure)`` serialized against replay."""
        with self._lock:
            self._check_alive()
            return fn(self.structure)

    def try_query(self, fn: Callable[[Any], Any], timeout: float = 0.0) -> Any:
        """Like :meth:`query`, but returns :data:`BUSY` instead of
        blocking when the replica's lock is held (a replay in progress):
        the router's busy-avoidance primitive.

        ``timeout > 0`` waits up to that long for the lock first: a
        reader colliding with a short replay poll rides it out instead
        of failing over (the out-of-process worker uses this -- for it,
        a BUSY verdict costs the gateway a wasted network round trip per
        remaining worker, not a nanosecond lock probe).
        """
        if timeout > 0:
            acquired = self._lock.acquire(timeout=timeout)
        else:
            acquired = self._lock.acquire(blocking=False)
        if not acquired:
            return BUSY
        try:
            self._check_alive()
            return fn(self.structure)
        finally:
            self._lock.release()

    def _check_alive(self) -> None:
        if self._killed:
            raise FollowerDead(f"follower {self.fid} was killed")
