"""An out-of-process follower: ``python -m repro.replication.worker``.

The in-process :class:`~repro.replication.follower.Follower` scales reads
until the GIL is the wall -- every replica's query work still shares the
primary's interpreter.  This entry point moves the replica into its own
OS process: it bootstraps from the shared snapshot/WAL directory, tails
the primary's segmented v2 WAL exactly as the in-process follower does
(the *log* is the replication protocol; nothing here talks to the primary
process), and serves read batches over a TCP socket to the
:mod:`repro.gateway` front door.  Epoch fencing already makes multi-process
tailing safe: a fenced record is rejected no matter which process reads
it, so a zombie ex-primary cannot poison a worker any more than it can an
in-process replica.

Wire protocol (newline-delimited JSON frames, one request per line;
``docs/gateway.md`` has the full reference):

- ``{"op": "read", "queries": [...], "required": L}`` -- answer one
  batch once the worker has replayed at least ``L`` rounds (``required``
  is ``at_least + 1`` in LSN-token terms; 0 means "whatever you have").
  Replies ``{"ok": true, "answers": [...], "lsn": ..., "fid": ...}``,
  or ``{"ok": false, "error": "busy" | "stale" | ...}`` verdicts the
  gateway routes around.
- ``{"op": "health"}`` -- liveness + replay position.
- ``{"op": "stop"}`` -- clean shutdown (the deployment scripts' and CI
  smoke job's teardown path).

Structure construction is by *registry*: the worker must build the same
deterministic factory as the primary (same class, ``n``, ``seed``,
``engine``), so the CLI takes ``--structure <name> --n ... --seed ...``
plus ``--kwargs`` JSON for the structures with extra parameters.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import signal
import socketserver
import sys
import threading
from typing import Any, Callable

from repro.gateway.protocol import (
    BadRequest,
    jsonable,
    parse_queries,
    read_frame,
    write_frame,
)
from repro.obs.metrics import get_metrics
from repro.replication.follower import Follower, FollowerDead
from repro.service.query import BUSY, UnsupportedQuery, answer_queries
from repro.service.wal import WalTruncated
from repro.sliding_window import (
    SWApproxMSFWeight,
    SWBipartiteness,
    SWConnectivity,
    SWConnectivityEager,
    SWCycleFree,
    SWKCertificate,
    SWSparsifier,
)

#: Structures a worker (or ``python -m repro.gateway``) can serve.  Every
#: entry takes ``(n, seed=..., engine=...)`` plus the listed extras.
STRUCTURES: dict[str, type] = {
    "SWConnectivity": SWConnectivity,
    "SWConnectivityEager": SWConnectivityEager,
    "SWBipartiteness": SWBipartiteness,
    "SWApproxMSFWeight": SWApproxMSFWeight,  # extras: eps, max_weight
    "SWKCertificate": SWKCertificate,  # extras: k
    "SWCycleFree": SWCycleFree,
    "SWSparsifier": SWSparsifier,  # extras: eps
}


def build_factory(
    structure: str,
    n: int,
    seed: int,
    engine: str | None = None,
    extra: dict | None = None,
) -> Callable[[], Any]:
    """A deterministic zero-argument factory for ``structure``.

    The factory must match the primary's exactly (the replayed state is
    a pure function of the round sequence *given* the same empty
    structure), so primary-side and worker-side callers both build
    through here.
    """
    try:
        cls = STRUCTURES[structure]
    except KeyError:
        known = ", ".join(sorted(STRUCTURES))
        raise ValueError(
            f"unknown structure {structure!r} (known: {known})"
        ) from None
    kwargs = dict(extra or {})
    kwargs["seed"] = seed
    if engine is not None:
        kwargs["engine"] = engine
    return lambda: cls(n, **kwargs)


class _Handler(socketserver.StreamRequestHandler):
    """One worker connection: a loop of JSON frames until EOF."""

    # One-frame request/response over a persistent socket: without this
    # the Nagle / delayed-ACK interaction adds ~40ms per round trip.
    disable_nagle_algorithm = True
    server: "WorkerServer"

    def handle(self) -> None:
        while True:
            try:
                frame = read_frame(self.rfile)
            except BadRequest as exc:
                write_frame(
                    self.wfile,
                    {"ok": False, "error": "bad_frame", "message": str(exc)},
                )
                return  # framing is broken; drop the connection
            except OSError:
                return
            if frame is None:
                return
            try:
                reply = self.server.dispatch(frame)
            except Exception as exc:  # a reply, never a traceback
                reply = {
                    "ok": False,
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
            try:
                write_frame(self.wfile, reply)
            except OSError:
                return
            if reply.get("stopping"):
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """The worker's TCP front: serves a :class:`Follower` to the gateway.

    Args:
        address: ``(host, port)`` to bind (port 0 picks an ephemeral one).
        follower: the process-local replica to serve.
        tail_interval: seconds between background catch-up polls.
        max_records: per-poll replication budget (None: unbounded).
        busy_timeout: how long a read waits out a replay poll holding
            the replica lock before reporting ``busy``.  Non-zero by
            default: for a networked worker a busy verdict costs the
            gateway a wasted round trip per remaining worker, so riding
            out a short replay is cheaper than failing over.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        follower: Follower,
        tail_interval: float = 0.002,
        max_records: int | None = None,
        busy_timeout: float = 0.05,
    ) -> None:
        super().__init__(address, _Handler)
        self.follower = follower
        self.tail_interval = tail_interval
        self.max_records = max_records
        self.busy_timeout = busy_timeout
        self._stop = threading.Event()
        self._tail_thread: threading.Thread | None = None

    # -- replication ----------------------------------------------------

    def start_tailing(self) -> None:
        """Continuously catch the follower up on a background thread."""
        if self._tail_thread is not None:
            return
        self._tail_thread = threading.Thread(
            target=self._tail_loop, name="repro-worker-tail", daemon=True
        )
        self._tail_thread.start()

    def _tail_loop(self) -> None:
        m = get_metrics()
        while not self._stop.is_set():
            try:
                self.follower.catch_up(self.max_records)
            except (FollowerDead, WalTruncated):
                m.counter("replication.tail_errors").inc()
            except Exception:
                # Transient storage weather; the next tick retries.  A
                # worker, unlike the in-process loop, has no operator to
                # surface fail() to -- the gateway's health checks see a
                # stuck lsn instead.
                m.counter("replication.tail_errors").inc()
            self._stop.wait(self.tail_interval)

    # -- protocol -------------------------------------------------------

    def dispatch(self, frame: dict) -> dict:
        op = frame.get("op")
        if op == "read":
            return self._read(frame)
        if op == "health":
            f = self.follower
            return {
                "ok": True,
                "fid": f.fid,
                "lsn": f.replayed_lsn,
                "alive": f.alive,
            }
        if op == "stop":
            self.stop()
            return {"ok": True, "stopping": True}
        return {"ok": False, "error": "bad_frame", "message": f"unknown op {op!r}"}

    def _read(self, frame: dict) -> dict:
        f = self.follower
        try:
            queries = parse_queries(frame.get("queries"))
            required = frame.get("required", 0)
            if not isinstance(required, int) or required < 0:
                raise BadRequest("'required' must be a non-negative integer")
        except BadRequest as exc:
            return {"ok": False, "error": "bad_request", "message": str(exc)}
        m = get_metrics()
        try:
            if f.replayed_lsn < required:
                # The token demands rounds this worker has not replayed:
                # ship them now (blocking; the required rounds are work
                # that must happen before any replica could answer).
                f.catch_up()
                if f.replayed_lsn < required:
                    # Not durable yet (bad token) or fenced below it.
                    return {
                        "ok": False,
                        "error": "stale",
                        "lsn": f.replayed_lsn,
                        "fid": f.fid,
                    }
                answers = f.query(lambda s: answer_queries(s, queries))
            else:
                # Busy avoidance, worker-side: ride out a short replay
                # poll, but a lock held longer than busy_timeout makes
                # the gateway try the next worker instead of queueing
                # here (mirrors QueryService's BUSY routing).
                answers = f.try_query(
                    lambda s: answer_queries(s, queries),
                    timeout=self.busy_timeout,
                )
                if answers is BUSY:
                    m.counter("worker.busy").inc()
                    return {"ok": False, "error": "busy", "fid": f.fid}
        except UnsupportedQuery as exc:
            return {
                "ok": False,
                "error": "unsupported_query",
                "message": str(exc),
            }
        except Exception as exc:
            m.counter("worker.read_failures").inc()
            return {
                "ok": False,
                "error": "read_failed",
                "message": f"{type(exc).__name__}: {exc}",
            }
        m.counter("worker.reads").inc(len(queries))
        m.counter("worker.batches").inc()
        return {
            "ok": True,
            "answers": jsonable(answers),
            "lsn": f.replayed_lsn,
            "fid": f.fid,
        }

    # -- lifecycle ------------------------------------------------------

    def stop(self) -> None:
        """Stop tailing and the serve loop (idempotent, thread-safe)."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._tail_thread is not None:
            self._tail_thread.join()
            self._tail_thread = None
        # shutdown() blocks until serve_forever exits; it must not be
        # called from the serve thread itself, so hand it off.
        threading.Thread(target=self.shutdown, daemon=True).start()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; see the module docstring for the protocol."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.replication.worker",
        description="Serve one out-of-process follower over TCP: bootstrap "
        "from the shared snapshot/WAL directory, tail the primary's WAL, "
        "answer read batches for the repro.gateway front door.",
    )
    parser.add_argument("--data-dir", required=True, help="the primary's data directory")
    parser.add_argument("--structure", default="SWConnectivityEager",
                        choices=sorted(STRUCTURES))
    parser.add_argument("--n", type=int, required=True, help="vertex count (must match the primary)")
    parser.add_argument("--seed", type=int, default=0, help="structure seed (must match the primary)")
    parser.add_argument("--engine", default=None, help="RC-tree engine (default: resolve normally)")
    parser.add_argument("--kwargs", default="{}",
                        help="extra structure kwargs as JSON (e.g. '{\"k\": 2}')")
    parser.add_argument("--fid", type=int, default=0, help="replica id (metrics/routing display)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0: ephemeral; the chosen port is printed)")
    parser.add_argument("--tail-interval", type=float, default=0.002,
                        help="seconds between catch-up polls")
    parser.add_argument("--max-records", type=int, default=None,
                        help="per-poll replication budget (rounds)")
    parser.add_argument("--busy-timeout", type=float, default=0.05,
                        help="seconds a read waits out a replay poll "
                        "before reporting busy")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)

    try:
        extra = json.loads(args.kwargs)
        if not isinstance(extra, dict):
            raise ValueError("--kwargs must be a JSON object")
    except ValueError as exc:
        print(f"bad --kwargs: {exc}", file=sys.stderr)
        return 2
    data_dir = pathlib.Path(args.data_dir)
    if not data_dir.is_dir():
        print(f"no such data directory: {data_dir}", file=sys.stderr)
        return 2
    factory = build_factory(
        args.structure, args.n, args.seed, args.engine, extra
    )
    follower = Follower(args.fid, data_dir, factory)
    server = WorkerServer(
        (args.host, args.port),
        follower,
        tail_interval=args.tail_interval,
        max_records=args.max_records,
        busy_timeout=args.busy_timeout,
    )
    host, port = server.server_address[:2]
    # The readiness line the parent (gateway script, benchmark, CI smoke
    # job) parses; everything else goes to stderr.
    print(f"REPRO-WORKER READY {host} {port} fid={args.fid}", flush=True)

    def _terminate(signum: int, frame: object) -> None:
        server.stop()

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)
    server.start_tailing()
    try:
        server.serve_forever(poll_interval=0.05)
    finally:
        server.stop()
        server.server_close()
    print(
        f"worker fid={args.fid} stopped at lsn {follower.replayed_lsn}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
