"""Snapshot store: periodic pickled checkpoints of a window structure.

Every structure in the library pickles and keeps evolving identically
afterwards (``tests/test_serialization.py`` proves snapshot-identical
evolution), so a durable checkpoint is simply the pickled structure tagged
with the WAL LSN it covers: *rounds ``0..lsn`` applied*.  Recovery loads
the newest loadable snapshot and replays the WAL suffix ``lsn+1..``.

Writes are atomic -- pickle to ``<name>.tmp``, then an atomic rename --
so a crash mid-snapshot leaves at worst a stale ``.tmp`` and never a
half-written checkpoint.  Loading skips unreadable snapshots (falling back
to the next older one), because a corrupt checkpoint must degrade recovery
to a longer replay, not block it.

All file writes, fsyncs, renames, and reads route through the pluggable
:class:`repro.service.storage.StorageIO` seam, so
:class:`repro.chaos.faults.FaultyIO` can inject torn checkpoint writes
and bit-flips; the skip-unreadable fallback is exactly the degradation
path those faults exercise.
"""

from __future__ import annotations

import pathlib
import pickle
import re
from typing import Any, Callable

from repro.service.storage import REAL_IO, StorageIO

SNAPSHOT_SCHEMA = "repro.service/snapshot/v1"

_SNAP_RE = re.compile(r"^snapshot-(\d{12})\.pkl$")


class SnapshotStore:
    """Checkpoint files ``snapshot-<lsn>.pkl`` under one directory.

    Args:
        directory: where checkpoints live (created on first save).
        retain: how many newest checkpoints to keep; older ones are pruned
            after each successful save (at least 1 is always kept).
        fsync: force each checkpoint through the OS cache before the
            atomic rename publishes it.
        io: the storage seam (default: real I/O).
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        retain: int = 2,
        fsync: bool = False,
        io: StorageIO | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.retain = max(1, retain)
        self.fsync = fsync
        self._io = io or REAL_IO

    def _path(self, lsn: int) -> pathlib.Path:
        return self.directory / f"snapshot-{lsn:012d}.pkl"

    def lsns(self) -> list[int]:
        """LSNs of the stored checkpoints, oldest first."""
        if not self.directory.is_dir():
            return []
        out = []
        for p in self.directory.iterdir():
            m = _SNAP_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def save(
        self, structure: Any, lsn: int, epoch: int = 0, prune: bool = True
    ) -> pathlib.Path:
        """Checkpoint ``structure`` as covering WAL rounds ``0..lsn``.

        ``epoch`` records the fencing epoch of round ``lsn``'s writer, so
        recovery can reject a checkpoint taken by a fenced ex-primary
        after its promotion (see :mod:`repro.replication`).  A fenced
        ex-primary passes ``prune=False``: its checkpoints still land (and
        are rejected at recovery), but it must not delete checkpoints the
        winning timeline recovers from.

        A failed write (transient I/O error, torn write, failed fsync)
        leaves at most a garbage ``.tmp`` the next save overwrites; the
        published checkpoint set is untouched.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(lsn)
        tmp = path.with_suffix(".pkl.tmp")
        payload = pickle.dumps(
            {
                "schema": SNAPSHOT_SCHEMA,
                "lsn": lsn,
                "epoch": epoch,
                "structure": structure,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with tmp.open("wb") as f:
            self._io.write_bytes(f, payload)
            if self.fsync:
                self._io.fsync(f)
        self._io.replace(tmp, path)
        if self.fsync:
            # The rename published the checkpoint's *name*; only a
            # directory fsync makes that entry survive a crash.
            self._io.fsync_dir(self.directory)
        if prune:
            self._prune()
        return path

    def load_latest(
        self, valid: Callable[[int, int], bool] | None = None
    ) -> tuple[int, Any] | None:
        """The newest loadable checkpoint as ``(lsn, structure)``.

        Unreadable checkpoints are skipped (older ones are tried next);
        returns ``None`` when no checkpoint can be loaded.  ``valid`` is
        an optional ``(lsn, epoch) -> bool`` acceptance predicate --
        recovery uses it to skip checkpoints a fenced ex-primary took
        after losing a promotion.
        """
        for lsn in reversed(self.lsns()):
            try:
                payload = pickle.loads(self._io.read_bytes(self._path(lsn)))
                if not isinstance(payload, dict):
                    continue
                if payload.get("schema") != SNAPSHOT_SCHEMA:
                    continue
                epoch = int(payload.get("epoch", 0))
                if valid is not None and not valid(int(payload["lsn"]), epoch):
                    continue
                return int(payload["lsn"]), payload["structure"]
            except Exception:
                # Unpickling corrupt bytes (a bit-flip anywhere in the
                # file) can raise nearly anything -- UnpicklingError,
                # EOFError, ValueError, TypeError, AttributeError, ... --
                # and every one of them means the same thing: this
                # checkpoint is unreadable, degrade to the next older one.
                continue
        return None

    def drop_from(self, lsn: int) -> int:
        """Delete checkpoints covering rounds at or past ``lsn``.

        The promotion primitive: when a follower is promoted at ``lsn``,
        every checkpoint taken by the old primary for rounds ``>= lsn``
        describes state the new timeline never reaches, so keeping it
        would let a later recovery resurrect fenced writes.  Returns the
        number of checkpoints removed.
        """
        removed = 0
        for snap_lsn in self.lsns():
            if snap_lsn >= lsn:
                try:
                    self._io.unlink(self._path(snap_lsn))
                    removed += 1
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        if removed and self.fsync and self.directory.is_dir():
            self._io.fsync_dir(self.directory)
        return removed

    def _prune(self) -> None:
        for lsn in self.lsns()[: -self.retain]:
            try:
                self._io.unlink(self._path(lsn))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
