"""Write-ahead edge log: the durability substrate of :mod:`repro.service`.

The log is an append-only text format of one JSON record per line.  Each
record is one *round* -- the ordered op list of one micro-batch flush --
stamped with a monotonically increasing log sequence number (LSN), the
*epoch* of the primary that wrote it (see below), and a CRC32 of its
canonical serialization:

    {"lsn": 7, "epoch": 0, "ops": [["i", [[0, 1]]], ["e", 3]], "crc": ...}

Ops are ``["i", edges]`` (insert ``edges`` on the new side of the window)
and ``["e", delta]`` (expire the ``delta`` oldest items).  Edges are stored
verbatim -- ``[u, v]`` or ``[u, v, w]`` rows -- because the sliding-window
structures assign stream positions (taus) and edge ids deterministically
from arrival order, so replaying the same rounds reproduces the exact same
state, coin flips included.

Segments
--------

Since the replication layer landed, the log is *segmented*: a directory of
files ``wal-<start lsn>-<epoch>.jsonl``, each starting with a header line
``{"wal": "repro.service/wal/v2", "start": <lsn>}`` followed by the
records ``start, start+1, ...``.  :class:`SegmentedWal` appends to the
newest segment, **rotates** to a fresh segment after every snapshot, and
**truncates** segments that no retained snapshot needs -- followers
bootstrap from snapshot + suffix, so the prefix is dead weight
(``python -m repro.report --wal`` inspects a live directory).  The
single-file :class:`WriteAheadLog` remains as the one-segment primitive.

Epochs and fencing
------------------

``epoch`` is the primary-fencing token of :mod:`repro.replication`: a
monotone counter bumped on every ``promote()``.  A promoted primary starts
a new segment at its adoption LSN with the new epoch, so a *zombie*
ex-primary that keeps appending (with its stale epoch) to the old segment
creates two chains claiming the same LSNs.  Readers resolve the conflict
in favour of the **highest epoch**: :func:`read_wal_dir` drops the stale
suffix, and a tailing :class:`WalCursor` that has been fenced rejects
stale-epoch records outright.  Two different writers appending the same
LSN under the *same* epoch is real corruption, never repaired.

Crash semantics follow the standard WAL contract:

- a record is *durable* once its line -- including the trailing newline --
  is fully on disk (``fsync=True`` additionally forces it through the OS
  cache before ``append`` returns, and fsyncs the directory whenever a
  segment file is created or renamed, so the directory entry itself
  survives a crash immediately after rotation);
- a *torn tail* -- a final line that lacks its newline, even if its bytes
  decode cleanly -- is the signature of a crash mid-append; opening the
  log repairs it by truncating back to the last good record.  A bad
  record anywhere *before* the tail (i.e. one whose newline is on disk)
  is real corruption and raises :class:`WalCorruption`.
- a *failed append* (transient I/O error, torn write, failed fsync) is
  repaired immediately: :meth:`WriteAheadLog.append` truncates the file
  back to the last durable record before re-raising, so a caller-level
  retry (:class:`repro.service.resilience.RetryPolicy`) re-appends the
  same LSN onto a clean tail instead of concatenating garbage.

Every filesystem operation routes through the pluggable
:class:`repro.service.storage.StorageIO` seam (``io=`` on every
constructor); :class:`repro.chaos.faults.FaultyIO` plugs in there to
inject deterministic faults.
"""

from __future__ import annotations

import json
import pathlib
import re
import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.service.storage import REAL_IO, StorageIO

WAL_SCHEMA = "repro.service/wal/v2"
#: The pre-replication schema (no epochs, single file); still readable.
WAL_SCHEMA_V1 = "repro.service/wal/v1"

OP_INSERT = "i"
OP_EXPIRE = "e"

#: One op: ``("i", ((u, v[, w]), ...))`` or ``("e", delta)``.
Op = tuple

_SEGMENT_RE = re.compile(r"^wal-(\d{12})-(\d{6})\.jsonl$")


class WalCorruption(RuntimeError):
    """A non-tail record failed to decode: the log is genuinely damaged."""


class WalTruncated(RuntimeError):
    """The requested LSN precedes the oldest retained segment; the caller
    must bootstrap from a snapshot instead of replaying the full log."""


@dataclass(frozen=True)
class WalRecord:
    """One durable round: an LSN, the writer's epoch, and its op list."""

    lsn: int
    ops: tuple[Op, ...]
    epoch: int = 0


@dataclass(frozen=True)
class SegmentInfo:
    """One on-disk segment: its start LSN, writer epoch, path, and size."""

    start: int
    epoch: int
    path: pathlib.Path

    @property
    def size(self) -> int:
        """Current byte size of the segment file (0 if deleted)."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0


def fsync_dir(directory: str | pathlib.Path) -> None:
    """fsync a directory so entries created/renamed in it are durable.

    Module-level convenience over :meth:`StorageIO.fsync_dir` for callers
    outside the seam (see that method for why directories need fsyncs).
    """
    REAL_IO.fsync_dir(directory)


def _canonical(lsn: int, ops: Sequence[Op], epoch: int | None) -> str:
    body = [lsn, [list(op) for op in _jsonable(ops)]]
    if epoch is not None:
        body = [lsn, epoch, [list(op) for op in _jsonable(ops)]]
    return json.dumps(body, separators=(",", ":"))


def _jsonable(ops: Sequence[Op]) -> list[list]:
    out = []
    for kind, payload in ops:
        if kind == OP_INSERT:
            out.append([kind, [list(e) for e in payload]])
        elif kind == OP_EXPIRE:
            out.append([kind, int(payload)])
        else:
            raise ValueError(f"unknown WAL op kind {kind!r}")
    return out


def encode_record(lsn: int, ops: Sequence[Op], epoch: int = 0) -> str:
    """One WAL line (no trailing newline) for ``ops`` at ``lsn``."""
    body = _canonical(lsn, ops, epoch)
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps(
        {"lsn": lsn, "epoch": epoch, "ops": _jsonable(ops), "crc": crc},
        separators=(",", ":"),
    )


def decode_record(line: str) -> WalRecord | None:
    """Parse one WAL line; ``None`` when the line is torn or corrupt.

    Accepts both v2 records (with an ``epoch`` field) and v1 records
    (without; their epoch decodes as 0 and the CRC covers ``[lsn, ops]``).
    """
    try:
        doc = json.loads(line)
        lsn = doc["lsn"]
        ops_json = doc["ops"]
        crc = doc["crc"]
        epoch = doc.get("epoch")
    except (ValueError, KeyError, TypeError):
        return None
    ops: list[Op] = []
    for entry in ops_json:
        if not isinstance(entry, list) or len(entry) != 2:
            return None
        kind, payload = entry
        if kind == OP_INSERT:
            ops.append((OP_INSERT, tuple(tuple(e) for e in payload)))
        elif kind == OP_EXPIRE:
            ops.append((OP_EXPIRE, int(payload)))
        else:
            return None
    if zlib.crc32(_canonical(lsn, ops, epoch).encode("utf-8")) != crc:
        return None
    return WalRecord(lsn=int(lsn), ops=tuple(ops), epoch=int(epoch or 0))


def _parse_header(line: bytes) -> int | None:
    """The segment's start LSN, or ``None`` when the header is invalid."""
    try:
        header = json.loads(line)
    except ValueError:
        return None
    if not isinstance(header, dict):
        return None
    if header.get("wal") == WAL_SCHEMA_V1:
        return 0
    if header.get("wal") == WAL_SCHEMA:
        start = header.get("start", 0)
        return int(start) if isinstance(start, int) and start >= 0 else None
    return None


def read_wal(
    path: str | pathlib.Path, io: StorageIO | None = None
) -> tuple[list[WalRecord], int]:
    """Read every durable record of the one-file log (segment) at ``path``.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the byte
    length of the durable prefix -- everything past it is a torn tail from
    a crash mid-append and is safe to truncate.  Raises
    :class:`WalCorruption` when a record *before* the tail is damaged, the
    LSN sequence has a gap, or epochs decrease (all mean the file was
    edited, not torn).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0
    raw = (io or REAL_IO).read_bytes(path)
    records: list[WalRecord] = []
    good = 0
    start: int | None = None
    for line in raw.split(b"\n"):
        end = good + len(line) + 1  # +1 for the newline
        if not line:
            good = min(end, len(raw))
            continue
        if end > len(raw):
            # The final line is missing its trailing newline, so the append
            # that wrote it never finished -- even bytes that happen to
            # decode cleanly are a torn tail, never durable.  (Counting
            # them would let the reopened log append onto the same line,
            # corrupting the next record.)
            break
        if start is None:
            start = _parse_header(line)
            if start is None:
                raise WalCorruption(f"{path}: missing or bad WAL header")
            good = end
            continue
        rec = decode_record(line.decode("utf-8", errors="replace"))
        if rec is None:
            raise WalCorruption(
                f"{path}: corrupt record after {len(records)} good records"
            )
        if rec.lsn != start + len(records):
            raise WalCorruption(
                f"{path}: LSN gap, expected {start + len(records)} got {rec.lsn}"
            )
        if records and rec.epoch < records[-1].epoch:
            raise WalCorruption(
                f"{path}: epoch went backwards at lsn {rec.lsn} "
                f"({records[-1].epoch} -> {rec.epoch})"
            )
        records.append(rec)
        good = end
    return records, min(good, len(raw))


def list_segments(directory: str | pathlib.Path) -> list[SegmentInfo]:
    """The WAL segments under ``directory``, sorted by (start, epoch)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for p in directory.iterdir():
        m = _SEGMENT_RE.match(p.name)
        if m:
            out.append(SegmentInfo(int(m.group(1)), int(m.group(2)), p))
    return sorted(out, key=lambda s: (s.start, s.epoch))


def read_wal_dir(
    directory: str | pathlib.Path, io: StorageIO | None = None
) -> tuple[list[WalRecord], int]:
    """The *winning* record chain across every segment of ``directory``.

    Returns ``(records, base)`` where ``base`` is the LSN of the first
    retained record (segments before it were truncated away).  Where two
    segments claim the same LSNs -- the split-brain signature of a fenced
    ex-primary that kept appending -- the chain with the **higher epoch**
    wins and the stale suffix is dropped.  The mere *existence* of a
    newer-epoch segment starting at LSN ``S`` fences every older-epoch
    record at ``S`` onward, even before that segment holds any records (a
    promotion is effective the instant its segment is durable).  An
    overlap at *equal* epochs is :class:`WalCorruption` (two live writers
    means fencing failed).
    """
    segs = list_segments(directory)
    fences = [(s.start, s.epoch) for s in segs]

    def _fenced(rec: WalRecord) -> bool:
        return any(fe > rec.epoch and rec.lsn >= fs for fs, fe in fences)

    chain: list[WalRecord] = []
    base = segs[0].start if segs else 0
    for seg in segs:
        records = [r for r in read_wal(seg.path, io)[0] if not _fenced(r)]
        if not records:
            continue
        first = records[0].lsn
        tip = base + len(chain)
        if first > tip:
            raise WalCorruption(
                f"{seg.path}: LSN gap between segments, expected {tip} "
                f"got {first}"
            )
        if first < tip:
            incumbent = chain[first - base]
            if records[0].epoch > incumbent.epoch:
                del chain[first - base :]  # stale suffix loses to new epoch
            elif records[0].epoch < incumbent.epoch:
                continue  # this whole segment is fenced-zombie garbage
            else:
                raise WalCorruption(
                    f"{seg.path}: two writers claimed lsn {first} in "
                    f"epoch {incumbent.epoch}"
                )
        if chain and records[0].epoch < chain[-1].epoch:
            raise WalCorruption(
                f"{seg.path}: epoch went backwards across segments at "
                f"lsn {first}"
            )
        chain.extend(records)
    return chain, base


def read_records_from(
    directory: str | pathlib.Path, start_lsn: int, io: StorageIO | None = None
) -> list[WalRecord]:
    """Winning records with ``lsn >= start_lsn`` (replication bootstrap).

    Raises :class:`WalTruncated` when ``start_lsn`` precedes the oldest
    retained segment -- the caller must restore a snapshot first.
    """
    chain, base = read_wal_dir(directory, io)
    if start_lsn < base:
        raise WalTruncated(
            f"{directory}: lsn {start_lsn} precedes the oldest retained "
            f"segment (base {base}); bootstrap from a snapshot"
        )
    return chain[start_lsn - base :]


class WriteAheadLog:
    """Appendable single-file WAL handle (one segment).

    Opening an existing log scans it, repairs a torn tail (truncating to
    the durable prefix), and resumes the LSN sequence; opening a fresh
    path writes the schema header.  ``append`` is not thread-safe by
    itself -- :class:`~repro.service.service.StreamService` serializes all
    appends behind its single-writer lock.

    The appender tracks the byte offset of its durable prefix; when an
    append fails partway (transient error, torn write, failed fsync) it
    truncates back to that offset before re-raising, so the failed
    record vanishes entirely and a retry starts from a clean tail.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        fsync: bool = False,
        start: int = 0,
        io: StorageIO | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._io = io or REAL_IO
        records, good = read_wal(self.path, self._io)
        if self.path.exists() and good < self.path.stat().st_size:
            with self.path.open("r+b") as f:
                self._io.truncate(f, good)
                if fsync:
                    self._io.fsync(f)
        self.start = records[0].lsn if records else start
        self._next_lsn = self.start + len(records)
        self._last_epoch = records[-1].epoch if records else 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = self.path.open("ab")
        self._good = 0 if fresh else good
        if fresh:
            header = (
                json.dumps({"wal": WAL_SCHEMA, "start": self.start}) + "\n"
            ).encode("utf-8")
            try:
                self._io.append(self._f, header)
                if fsync:
                    self._io.fsync(self._f)
                    self._io.fsync_dir(self.path.parent)
            except Exception:
                # A torn header is self-repairing: the next open finds no
                # newline-terminated header line, truncates to zero, and
                # rewrites it.  Just do not leak the handle.
                self._f.close()
                raise
            self._good = len(header)

    @property
    def next_lsn(self) -> int:
        """The LSN the next :meth:`append` will be stamped with."""
        return self._next_lsn

    @property
    def last_epoch(self) -> int:
        """Epoch of the newest durable record (0 for an empty log)."""
        return self._last_epoch

    @property
    def bytes_written(self) -> int:
        """Durable size of the log file in bytes."""
        return self._good if not self._f.closed else self.path.stat().st_size

    def append(self, ops: Sequence[Op], epoch: int = 0) -> int:
        """Append one round; returns its LSN once the line is durable.

        On *any* failure -- transient write error, torn write, failed
        fsync -- the file is truncated back to the durable prefix before
        the exception propagates: the half-written record is gone, the
        LSN is not consumed, and a retry re-appends cleanly.  (After a
        successful write but failed fsync the record's durability is
        unknown; discarding it is the only answer that keeps the
        "append returned means durable" contract.)
        """
        if self._f.closed:
            raise ValueError("write-ahead log is closed")
        if epoch < self._last_epoch:
            raise ValueError(
                f"epoch must be monotone: {self._last_epoch} -> {epoch}"
            )
        lsn = self._next_lsn
        line = (encode_record(lsn, ops, epoch=epoch) + "\n").encode("utf-8")
        try:
            self._io.append(self._f, line)
            if self.fsync:
                self._io.fsync(self._f)
        except Exception:
            self._io.truncate(self._f, self._good)
            raise
        self._good += len(line)
        self._next_lsn += 1
        self._last_epoch = epoch
        return lsn

    def records(self) -> list[WalRecord]:
        """Re-read every durable record from disk (used by recovery)."""
        self._f.flush()
        records, _ = read_wal(self.path, self._io)
        return records

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._f.closed:
            self._f.flush()
            self._f.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _segment_path(
    directory: pathlib.Path, start: int, epoch: int
) -> pathlib.Path:
    return directory / f"wal-{start:012d}-{epoch:06d}.jsonl"


class SegmentedWal:
    """A directory of WAL segments behaving as one appendable log.

    Opening scans every segment, resolves epoch conflicts (highest epoch
    wins -- see module docstring), repairs the winning tail segment's torn
    tail, and resumes appending to it.  :meth:`rotate` seals the current
    segment and starts the next (called by the service after each
    snapshot); :meth:`truncate_before` deletes segments no retained
    snapshot needs; :meth:`reset_to` is the promotion primitive -- it
    abandons the inherited chain at an LSN and opens a fresh segment under
    a new epoch, fencing whatever the old primary appends afterwards.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        fsync: bool = False,
        epoch: int = 0,
        io: StorageIO | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.fsync = fsync
        self._io = io or REAL_IO
        self.directory.mkdir(parents=True, exist_ok=True)
        chain, base = read_wal_dir(self.directory, self._io)
        self._base = base
        self._next_lsn = base + len(chain)
        # Append to the segment that owns the chain tip: the one with the
        # highest (epoch, start) at or below next_lsn.  An *empty*
        # newer-epoch segment (a promotion that has not committed yet)
        # counts -- appending must continue it, not a fenced predecessor.
        candidates = [
            s for s in list_segments(self.directory) if s.start <= self._next_lsn
        ]
        if candidates:
            tip_seg = max(candidates, key=lambda s: (s.epoch, s.start))
            self.epoch = max(
                epoch, tip_seg.epoch, chain[-1].epoch if chain else 0
            )
            self._writer = WriteAheadLog(
                tip_seg.path, fsync=fsync, start=tip_seg.start, io=self._io
            )
        else:
            self.epoch = epoch
            self._writer = WriteAheadLog(
                _segment_path(self.directory, base, self.epoch),
                fsync=fsync,
                start=base,
                io=self._io,
            )
        if fsync:
            self._io.fsync_dir(self.directory)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """The LSN the next :meth:`append` will be stamped with."""
        return self._next_lsn

    @property
    def base_lsn(self) -> int:
        """LSN of the oldest retained record (rises with truncation)."""
        return self._base

    @property
    def bytes_written(self) -> int:
        """Total bytes across all live segments."""
        if not self._writer._f.closed:
            self._writer._f.flush()
        return sum(s.size for s in self.segments())

    def segments(self) -> list[SegmentInfo]:
        """The on-disk segments, sorted by (start, epoch)."""
        return list_segments(self.directory)

    @property
    def is_fenced(self) -> bool:
        """True when a newer-epoch segment exists: this writer lost a
        promotion.  Appends still land (replay rejects them); destructive
        retention (:meth:`rotate`, :meth:`truncate_before`) becomes a
        no-op so a zombie cannot destroy the winner's shared prefix."""
        return any(s.epoch > self.epoch for s in list_segments(self.directory))

    # ------------------------------------------------------------------
    # The appender
    # ------------------------------------------------------------------

    def append(self, ops: Sequence[Op], epoch: int | None = None) -> int:
        """Append one round under ``epoch`` (default: the log's epoch)."""
        epoch = self.epoch if epoch is None else epoch
        if epoch < self.epoch:
            raise ValueError(f"epoch must be monotone: {self.epoch} -> {epoch}")
        lsn = self._writer.append(ops, epoch=epoch)
        self.epoch = epoch
        self._next_lsn = lsn + 1
        return lsn

    def rotate(self) -> pathlib.Path:
        """Seal the current segment and start the next one at ``next_lsn``.

        The new segment's directory entry is fsynced (under ``fsync=True``)
        before the method returns, so a crash immediately after rotation
        cannot lose it.  A fenced writer (see :attr:`is_fenced`) does not
        rotate: the current segment stays open.
        """
        if self.is_fenced:
            return self._writer.path
        # Open the successor before closing the incumbent: if the new
        # segment's header append fails (a transient fault), the current
        # writer is untouched and the rotation can simply be retried.
        successor = WriteAheadLog(
            _segment_path(self.directory, self._next_lsn, self.epoch),
            fsync=self.fsync,
            start=self._next_lsn,
            io=self._io,
        )
        self._writer.close()
        self._writer = successor
        if self.fsync:
            self._io.fsync_dir(self.directory)
        return self._writer.path

    def reset_to(self, lsn: int, epoch: int) -> pathlib.Path:
        """Adopt the log at ``lsn`` under a strictly newer ``epoch``.

        The promotion primitive: the chain above ``lsn`` (committed by the
        old primary but never replicated) is abandoned -- readers will
        drop it in favour of the new epoch's records -- and appending
        resumes in a fresh segment ``wal-<lsn>-<epoch>``.
        """
        if epoch <= self.epoch:
            raise ValueError(
                f"promotion needs a strictly newer epoch: {self.epoch} -> {epoch}"
            )
        if not (self._base <= lsn <= self._next_lsn):
            raise ValueError(
                f"adoption lsn {lsn} outside retained range "
                f"[{self._base}, {self._next_lsn}]"
            )
        self._writer.close()
        self.epoch = epoch
        self._next_lsn = lsn
        self._writer = WriteAheadLog(
            _segment_path(self.directory, lsn, epoch),
            fsync=self.fsync,
            start=lsn,
            io=self._io,
        )
        if self.fsync:
            self._io.fsync_dir(self.directory)
        return self._writer.path

    def truncate_before(self, lsn: int) -> int:
        """Delete segments wholly superseded below ``lsn``; returns count.

        A segment is dead once a *winning-chain* successor segment starts
        at or below ``lsn`` -- every record the dead segment contributes
        is then both older than ``lsn`` and re-coverable from the
        successor onward.  The active tail segment is never deleted, and
        a fenced writer (see :attr:`is_fenced`) deletes nothing at all.
        """
        if self.is_fenced:
            return 0
        chain, base = read_wal_dir(self.directory, self._io)
        if not chain:
            return 0
        # Contribution ranges: which LSNs each segment supplies to the
        # winning chain (None for fenced/stale segments).
        contrib: dict[pathlib.Path, tuple[int, int] | None] = {}
        tip = base
        for seg in self.segments():
            records, _ = read_wal(seg.path, self._io)
            if not records:
                contrib[seg.path] = None
                continue
            lo = max(records[0].lsn, tip)
            hi = records[-1].lsn
            # A later, higher-epoch segment may shadow this one's suffix.
            shadow = min(
                (
                    s.start
                    for s in self.segments()
                    if s.start >= lo and (s.start, s.epoch) > (seg.start, seg.epoch)
                    and s.epoch > seg.epoch
                ),
                default=hi + 1,
            )
            hi = min(hi, shadow - 1)
            contrib[seg.path] = (lo, hi) if lo <= hi else None
            tip = max(tip, hi + 1)
        removed = 0
        for seg in self.segments():
            if seg.path == self._writer.path:
                continue
            rng = contrib.get(seg.path)
            if rng is None or rng[1] < lsn:
                try:
                    self._io.unlink(seg.path)
                    removed += 1
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
        if removed:
            if self.fsync:
                self._io.fsync_dir(self.directory)
            live = self.segments()
            self._base = live[0].start if live else self._next_lsn
        return removed

    def records(self, start_lsn: int | None = None) -> list[WalRecord]:
        """Winning records from ``start_lsn`` (default: everything retained)."""
        if not self._writer._f.closed:
            self._writer._f.flush()
        if start_lsn is None:
            return read_wal_dir(self.directory, self._io)[0]
        return read_records_from(self.directory, start_lsn, self._io)

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        self._writer.close()

    def __enter__(self) -> "SegmentedWal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class WalCursor:
    """An incremental reader tailing a :class:`SegmentedWal` directory.

    The replication shipper: a follower keeps one cursor positioned at its
    ``replayed_lsn`` and calls :meth:`poll` to fetch newly durable rounds.
    The cursor re-selects the segment to read on every poll -- preferring
    the **highest epoch** whose start is at or below the next expected LSN
    -- so it follows rotations and, after a promotion, abandons the old
    primary's segment for the new epoch's.

    Fencing: after :meth:`fence`, records at ``lsn >= fence_lsn`` whose
    epoch is below ``fence_epoch`` are *rejected* (they are a zombie
    primary's post-promotion appends); the cursor stops at the boundary
    and reports the rejection instead of applying garbage.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        next_lsn: int = 0,
        io: StorageIO | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.next_lsn = next_lsn
        self._io = io or REAL_IO
        self._fence: tuple[int, int] = (0, 0)  # (lsn, min epoch from there)
        self._seg: SegmentInfo | None = None
        self._offset = 0
        self.fenced_rejections = 0

    def fence(self, lsn: int, epoch: int) -> None:
        """Reject records at ``lsn`` onward with epoch below ``epoch``."""
        self._fence = (lsn, epoch)
        self._seg = None  # force re-selection away from a stale segment

    def _select_segment(self) -> SegmentInfo | None:
        candidates = [
            s for s in list_segments(self.directory) if s.start <= self.next_lsn
        ]
        if not candidates:
            if any(list_segments(self.directory)):
                return None
            return None
        return max(candidates, key=lambda s: (s.epoch, s.start))

    def _stale(self, rec: WalRecord) -> bool:
        fence_lsn, fence_epoch = self._fence
        return rec.lsn >= fence_lsn and rec.epoch < fence_epoch

    def poll(self, max_records: int | None = None) -> list[WalRecord]:
        """Newly durable records starting at ``next_lsn`` (may be empty).

        Advances ``next_lsn`` past what it returns.  Raises
        :class:`WalTruncated` when the position was truncated away (the
        follower must re-bootstrap from a snapshot).
        """
        out: list[WalRecord] = []
        while max_records is None or len(out) < max_records:
            target = self._select_segment()
            if target is None:
                segs = list_segments(self.directory)
                if segs and segs[0].start > self.next_lsn:
                    raise WalTruncated(
                        f"{self.directory}: lsn {self.next_lsn} precedes the "
                        f"oldest retained segment (base {segs[0].start})"
                    )
                break
            if self._seg is None or target.path != self._seg.path:
                self._seg = target
                self._offset = 0
            try:
                got = self._poll_segment(max_records, out)
            except WalTruncated:
                raise
            except OSError:
                # A transient read fault mid-poll.  If earlier iterations
                # already shipped records, the cursor has advanced past
                # them -- raising now would discard them while keeping the
                # advanced position, silently skipping those rounds
                # forever.  Deliver what we have; a persistent fault
                # resurfaces on the next poll's *first* read, where
                # raising is safe (no position was consumed yet).
                if out:
                    return out
                raise
            if not got:
                break
        return out

    def _poll_segment(
        self, max_records: int | None, out: list[WalRecord]
    ) -> bool:
        """Read new complete lines from the current segment; True if any
        record was appended to ``out`` or the cursor switched segments."""
        assert self._seg is not None
        try:
            raw = self._io.read_from(self._seg.path, self._offset)
        except FileNotFoundError:
            self._seg = None
            raise WalTruncated(
                f"{self.directory}: segment vanished under the cursor"
            )
        # Any other OSError is a *transient* read failure: the cursor's
        # position is untouched, so the caller (Follower.catch_up under a
        # RetryPolicy) simply polls again.
        progressed = False
        consumed = 0
        for line in raw.split(b"\n"):
            end = consumed + len(line) + 1
            if end > len(raw):
                break  # incomplete tail: wait for the newline
            if not line:
                consumed = end
                continue
            if self._offset == 0 and consumed == 0:
                if _parse_header(line) is None:
                    raise WalCorruption(
                        f"{self._seg.path}: missing or bad WAL header"
                    )
                consumed = end
                continue
            rec = decode_record(line.decode("utf-8", errors="replace"))
            if rec is None:
                break  # torn bytes that happen to end in newline: stop here
            if rec.lsn < self.next_lsn:
                consumed = end
                continue
            if rec.lsn > self.next_lsn:
                break  # gap within a segment: never durable, stop
            if self._stale(rec):
                # A fenced zombie's append: reject it.  If a newer-epoch
                # segment owns this LSN, switch to it in the same poll;
                # otherwise park and re-select on the next poll.
                self.fenced_rejections += 1
                stale_path = self._seg.path
                self._seg = None
                self._offset = 0
                nxt = self._select_segment()
                if nxt is not None and nxt.path != stale_path:
                    self._seg = nxt
                    return True
                return False
            out.append(rec)
            self.next_lsn = rec.lsn + 1
            consumed = end
            progressed = True
            if max_records is not None and len(out) >= max_records:
                break
        self._offset += consumed
        if not progressed:
            # Nothing new in this segment; a rotated successor may exist.
            nxt = self._select_segment()
            if nxt is not None and self._seg is not None and nxt.path != self._seg.path:
                self._seg = nxt
                self._offset = 0
                return True
        return progressed


def wal_summary(directory: str | pathlib.Path) -> dict:
    """One-glance stats of a WAL directory (``repro.report --wal``).

    Returns segment count, retained LSN range, total bytes, and the
    newest epoch; all zeros for an empty or missing directory.
    """
    directory = pathlib.Path(directory)
    segs = list_segments(directory)
    chain, base = read_wal_dir(directory)
    return {
        "segments": len(segs),
        "base_lsn": base,
        "next_lsn": base + len(chain),
        "rounds": len(chain),
        "bytes": sum(s.size for s in segs),
        "epoch": chain[-1].epoch if chain else (segs[-1].epoch if segs else 0),
    }
