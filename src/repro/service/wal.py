"""Write-ahead edge log: the durability substrate of :mod:`repro.service`.

The log is an append-only text file of one JSON record per line.  Each
record is one *round* -- the ordered op list of one micro-batch flush --
stamped with a monotonically increasing log sequence number (LSN) and a
CRC32 of its canonical serialization:

    {"lsn": 7, "ops": [["i", [[0, 1], [1, 2]]], ["e", 3]], "crc": 2923716406}

Ops are ``["i", edges]`` (insert ``edges`` on the new side of the window)
and ``["e", delta]`` (expire the ``delta`` oldest items).  Edges are stored
verbatim -- ``[u, v]`` or ``[u, v, w]`` rows -- because the sliding-window
structures assign stream positions (taus) and edge ids deterministically
from arrival order, so replaying the same rounds reproduces the exact same
state, coin flips included.

Crash semantics follow the standard WAL contract:

- a record is *durable* once its line -- including the trailing newline --
  is fully on disk (``fsync=True`` additionally forces it through the OS
  cache before ``append`` returns);
- a *torn tail* -- a final line that lacks its newline, even if its bytes
  decode cleanly -- is the signature of a crash mid-append; opening the
  log repairs it by truncating back to the last good record.  A bad
  record anywhere *before* the tail (i.e. one whose newline is on disk)
  is real corruption and raises :class:`WalCorruption`.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from dataclasses import dataclass
from typing import Sequence

WAL_SCHEMA = "repro.service/wal/v1"

OP_INSERT = "i"
OP_EXPIRE = "e"

#: One op: ``("i", ((u, v[, w]), ...))`` or ``("e", delta)``.
Op = tuple


class WalCorruption(RuntimeError):
    """A non-tail record failed to decode: the log is genuinely damaged."""


@dataclass(frozen=True)
class WalRecord:
    """One durable round: an LSN and its ordered op list."""

    lsn: int
    ops: tuple[Op, ...]


def _canonical(lsn: int, ops: Sequence[Op]) -> str:
    return json.dumps([lsn, [list(op) for op in _jsonable(ops)]], separators=(",", ":"))


def _jsonable(ops: Sequence[Op]) -> list[list]:
    out = []
    for kind, payload in ops:
        if kind == OP_INSERT:
            out.append([kind, [list(e) for e in payload]])
        elif kind == OP_EXPIRE:
            out.append([kind, int(payload)])
        else:
            raise ValueError(f"unknown WAL op kind {kind!r}")
    return out


def encode_record(lsn: int, ops: Sequence[Op]) -> str:
    """One WAL line (no trailing newline) for ``ops`` at ``lsn``."""
    body = _canonical(lsn, ops)
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps(
        {"lsn": lsn, "ops": _jsonable(ops), "crc": crc}, separators=(",", ":")
    )


def decode_record(line: str) -> WalRecord | None:
    """Parse one WAL line; ``None`` when the line is torn or corrupt."""
    try:
        doc = json.loads(line)
        lsn = doc["lsn"]
        ops_json = doc["ops"]
        crc = doc["crc"]
    except (ValueError, KeyError, TypeError):
        return None
    ops: list[Op] = []
    for entry in ops_json:
        if not isinstance(entry, list) or len(entry) != 2:
            return None
        kind, payload = entry
        if kind == OP_INSERT:
            ops.append((OP_INSERT, tuple(tuple(e) for e in payload)))
        elif kind == OP_EXPIRE:
            ops.append((OP_EXPIRE, int(payload)))
        else:
            return None
    if zlib.crc32(_canonical(lsn, ops).encode("utf-8")) != crc:
        return None
    return WalRecord(lsn=int(lsn), ops=tuple(ops))


def read_wal(path: str | pathlib.Path) -> tuple[list[WalRecord], int]:
    """Read every durable record of the log at ``path``.

    Returns ``(records, good_bytes)`` where ``good_bytes`` is the byte
    length of the durable prefix -- everything past it is a torn tail from
    a crash mid-append and is safe to truncate.  Raises
    :class:`WalCorruption` when a record *before* the tail is damaged or
    the LSN sequence has a gap (both mean the file was edited, not torn).
    """
    path = pathlib.Path(path)
    if not path.exists():
        return [], 0
    raw = path.read_bytes()
    records: list[WalRecord] = []
    good = 0
    expected_header = True
    for line in raw.split(b"\n"):
        end = good + len(line) + 1  # +1 for the newline
        if not line:
            good = min(end, len(raw))
            continue
        if end > len(raw):
            # The final line is missing its trailing newline, so the append
            # that wrote it never finished -- even bytes that happen to
            # decode cleanly are a torn tail, never durable.  (Counting
            # them would let the reopened log append onto the same line,
            # corrupting the next record.)
            break
        if expected_header:
            try:
                header = json.loads(line)
            except ValueError:
                header = None
            if not isinstance(header, dict) or header.get("wal") != WAL_SCHEMA:
                raise WalCorruption(f"{path}: missing or bad WAL header")
            expected_header = False
            good = end
            continue
        rec = decode_record(line.decode("utf-8", errors="replace"))
        if rec is None:
            raise WalCorruption(
                f"{path}: corrupt record after {len(records)} good records"
            )
        if rec.lsn != len(records):
            raise WalCorruption(
                f"{path}: LSN gap, expected {len(records)} got {rec.lsn}"
            )
        records.append(rec)
        good = end
    return records, min(good, len(raw))


class WriteAheadLog:
    """Appendable WAL handle over one log file.

    Opening an existing log scans it, repairs a torn tail (truncating to
    the durable prefix), and resumes the LSN sequence; opening a fresh
    path writes the schema header.  ``append`` is not thread-safe by
    itself -- :class:`~repro.service.service.StreamService` serializes all
    appends behind its single-writer lock.
    """

    def __init__(self, path: str | pathlib.Path, fsync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.fsync = fsync
        records, good = read_wal(self.path)
        if self.path.exists() and good < self.path.stat().st_size:
            with self.path.open("r+b") as f:
                f.truncate(good)
        self._next_lsn = len(records)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._f = self.path.open("a", encoding="utf-8")
        if fresh:
            self._f.write(json.dumps({"wal": WAL_SCHEMA}) + "\n")
            self._f.flush()

    @property
    def next_lsn(self) -> int:
        """The LSN the next :meth:`append` will be stamped with."""
        return self._next_lsn

    @property
    def bytes_written(self) -> int:
        """Current size of the log file in bytes."""
        return self._f.tell() if not self._f.closed else self.path.stat().st_size

    def append(self, ops: Sequence[Op]) -> int:
        """Append one round; returns its LSN once the line is durable."""
        if self._f.closed:
            raise ValueError("write-ahead log is closed")
        lsn = self._next_lsn
        self._f.write(encode_record(lsn, ops) + "\n")
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
        self._next_lsn += 1
        return lsn

    def records(self) -> list[WalRecord]:
        """Re-read every durable record from disk (used by recovery)."""
        self._f.flush()
        records, _ = read_wal(self.path)
        return records

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if not self._f.closed:
            self._f.flush()
            self._f.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
