"""Resilience policies: retry/backoff, circuit breaking, overload errors.

The paper's contribution is a *worst-case* guarantee -- ``O(k lg(1+n/k))``
work per batch no matter how adversarial the input -- and this module is
the systems-side analogue for the service layer: bounded, predictable
behaviour under adversarial *storage and replica* behaviour.  Three
pieces:

- :class:`RetryPolicy` -- bounded attempts, exponential backoff with
  deterministic (seeded) jitter, and an overall deadline.  Applied to
  *transient* faults only: :func:`is_transient_io` classifies an
  ``OSError`` whose errno is in :data:`TRANSIENT_ERRNOS` as retryable,
  while genuine corruption (:class:`~repro.service.wal.WalCorruption`, a
  CRC mismatch) stays fail-loud -- retrying corruption only launders it.
- :class:`CircuitBreaker` -- per-key consecutive-failure tracking with an
  open/half-open/closed life cycle, so routing skips a replica that keeps
  failing instead of paying a fresh timeout on every read.
- :class:`ServiceOverloaded` -- the shed-instead-of-block admission
  error, carrying a ``retry_after`` hint so a well-behaved client backs
  off for roughly one drain interval instead of hammering.

Fault model, transient-vs-fatal matrix, and the defaults' rationale live
in ``docs/resilience.md``.
"""

from __future__ import annotations

import errno
import random
import time
from typing import Any, Callable

from repro.obs.metrics import get_metrics

#: errnos treated as transient storage faults (worth retrying).
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.ENOSPC, errno.EAGAIN, errno.EINTR, errno.EBUSY}
)


class ServiceOverloaded(RuntimeError):
    """Admission control shed this request instead of queueing it.

    Attributes:
        retry_after: seconds the client should wait before retrying
            (an estimate of one drain interval, never negative).
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


def is_transient_io(exc: BaseException) -> bool:
    """Whether ``exc`` is a transient storage fault worth retrying.

    True only for an ``OSError`` whose errno is in
    :data:`TRANSIENT_ERRNOS`.  Everything else -- and in particular
    :class:`~repro.service.wal.WalCorruption` (a CRC mismatch is damage,
    not weather) and :class:`~repro.service.service.InjectedCrash` (a
    crash test must kill the service) -- is not retryable.
    """
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Args:
        attempts: total tries including the first (>= 1).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: per-retry backoff ceiling.
        deadline: overall wall-clock budget across all tries; once
            exceeded no further retry is attempted (None: unbounded).
        seed: seeds the jitter stream, so a given policy instance
            produces the same backoff sequence on every run -- chaos
            tests replay byte-identically.
        sleep: injectable sleep (tests pass a recorder).

    Jitter is the "decorrelated" fraction: each backoff is scaled by a
    factor drawn uniformly from [0.5, 1.0) out of the seeded stream.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.002,
        multiplier: float = 2.0,
        max_delay: float = 0.25,
        deadline: float | None = 2.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.attempts = attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.deadline = deadline
        self.seed = seed
        self._sleep = sleep
        self._rng = random.Random(seed)

    def backoffs(self) -> list[float]:
        """The jittered backoff the k-th retry *would* use, for doc/tests.

        Recomputed from the seed without consuming the live stream.
        """
        rng = random.Random(self.seed)
        out = []
        for k in range(self.attempts - 1):
            raw = min(self.max_delay, self.base_delay * self.multiplier**k)
            out.append(raw * (0.5 + 0.5 * rng.random()))
        return out

    def call(
        self,
        fn: Callable[[], Any],
        transient: Callable[[BaseException], bool] = is_transient_io,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` under the policy; returns its result.

        Retries while ``transient(exc)`` holds and attempts/deadline
        remain; the final exception propagates unchanged.  ``on_retry``
        (if given) observes ``(attempt_index, exc)`` before each retry.
        """
        m = get_metrics()
        t0 = time.monotonic()
        for attempt in range(self.attempts):
            try:
                return fn()
            except Exception as exc:
                if not transient(exc):
                    raise
                last = attempt == self.attempts - 1
                raw = min(
                    self.max_delay, self.base_delay * self.multiplier**attempt
                )
                delay = raw * (0.5 + 0.5 * self._rng.random())
                over = (
                    self.deadline is not None
                    and time.monotonic() - t0 + delay > self.deadline
                )
                if last or over:
                    m.counter("resilience.retries_exhausted").inc()
                    raise
                m.counter("resilience.retries").inc()
                if on_retry is not None:
                    on_retry(attempt, exc)
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Per-key consecutive-failure breaker (closed -> open -> half-open).

    A key (here: a replica id) starts *closed* (requests allowed).  After
    ``failure_threshold`` consecutive :meth:`record_failure` calls it
    *opens*: :meth:`allow` returns False for ``cooldown`` seconds, so the
    router skips the replica outright instead of eating its failure
    latency on every read.  After the cooldown the breaker is
    *half-open*: exactly one probe is allowed through; its outcome closes
    the breaker (success) or re-opens it for another cooldown (failure).

    Args:
        failure_threshold: consecutive failures that open the breaker.
        cooldown: seconds an open breaker rejects before half-opening.
        clock: injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures: dict[Any, int] = {}
        self._opened_at: dict[Any, float] = {}
        self._probing: set[Any] = set()

    def state(self, key: Any) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` for ``key``."""
        if key not in self._opened_at:
            return "closed"
        if self._clock() - self._opened_at[key] < self.cooldown:
            return "open"
        return "half-open"

    def allow(self, key: Any) -> bool:
        """Whether a request to ``key`` may proceed right now.

        In half-open state only the first caller gets True (the probe);
        the breaker stays conservative until that probe reports back.
        """
        s = self.state(key)
        if s == "closed":
            return True
        if s == "open":
            get_metrics().counter("resilience.breaker_rejections").inc()
            return False
        if key in self._probing:
            get_metrics().counter("resilience.breaker_rejections").inc()
            return False
        self._probing.add(key)
        return True

    def cancel(self, key: Any) -> None:
        """Hand back an unused half-open probe without recording an outcome.

        The router calls this when :meth:`allow` granted the probe but the
        request never ran (e.g. the replica's lock was busy), so the next
        caller can probe instead of the slot staying reserved forever.
        """
        self._probing.discard(key)

    def record_success(self, key: Any) -> None:
        """A request to ``key`` succeeded: close the breaker."""
        self._failures.pop(key, None)
        if self._opened_at.pop(key, None) is not None:
            get_metrics().counter("resilience.breaker_closes").inc()
        self._probing.discard(key)

    def record_failure(self, key: Any) -> None:
        """A request to ``key`` failed: count it, maybe open the breaker."""
        self._probing.discard(key)
        if key in self._opened_at:
            # A failed half-open probe re-opens for a fresh cooldown.
            self._opened_at[key] = self._clock()
            return
        n = self._failures.get(key, 0) + 1
        self._failures[key] = n
        if n >= self.failure_threshold:
            self._opened_at[key] = self._clock()
            get_metrics().counter("resilience.breaker_opens").inc()

    def reset(self, key: Any | None = None) -> None:
        """Forget failure history for ``key`` (or every key)."""
        if key is None:
            self._failures.clear()
            self._opened_at.clear()
            self._probing.clear()
        else:
            self._failures.pop(key, None)
            self._opened_at.pop(key, None)
            self._probing.discard(key)
