#!/usr/bin/env python
"""End-to-end walkthrough of the durable streaming service layer.

Three acts, all on sliding-window connectivity (Theorem 5.2):

1. **Serve.**  Concurrent producers feed a bursty edge stream through a
   durable :class:`~repro.service.StreamService` (background apply thread,
   WAL + snapshots in a scratch directory); the driver reports rounds,
   adaptive batch sizes, and flush latency.
2. **Crash.**  A failpoint kills the apply loop mid-run -- after a WAL
   append, before the structure sees the round -- exactly the torn state
   a real crash leaves behind.
3. **Recover.**  :meth:`StreamService.open` restores the newest snapshot,
   replays the WAL suffix, and the run continues; the final state is
   verified query-identical to an uninterrupted twin that never crashed.

Run:  python -m repro.service.demo [--dir DIR]
"""

from __future__ import annotations

import argparse
import random
import tempfile

from repro.graphgen.streams import bursty_stream
from repro.obs.metrics import get_metrics
from repro.runtime.scheduler import ThreadPoolScheduler
from repro.service import InjectedCrash, ServiceConfig, StreamService
from repro.sliding_window import SWConnectivityEager

N = 256
SEED = 11
ROUNDS = 24
WINDOW = 512


def _structure() -> SWConnectivityEager:
    return SWConnectivityEager(N, seed=SEED)


def _stream(rounds: int = ROUNDS) -> list:
    rng = random.Random(SEED)
    return bursty_stream(
        N, rounds=rounds, base_batch=24, burst_batch=160, window=WINDOW, rng=rng
    )


def act_1_serve(data_dir: str) -> None:
    print("== act 1: serve a bursty stream through the service ==")
    cfg = ServiceConfig(flush_edges=96, flush_interval=0.01, snapshot_every=8)
    stream = _stream()
    with StreamService(_structure(), data_dir=data_dir, config=cfg) as svc:
        svc.start()
        # Four producers, each feeding a contiguous slice of the rounds;
        # the pool comes from the library's own scheduler seam.
        with ThreadPoolScheduler(max_workers=4) as pool:
            chunk = (len(stream) + 3) // 4
            futures = [
                pool.submit(
                    lambda part: [svc.submit(b) for b in part],
                    stream[i : i + chunk],
                )
                for i in range(0, len(stream), chunk)
            ]
            for f in futures:
                f.result()
        svc.stop()
        svc.drain()
        lat = svc.flush_wall
        comp = svc.query(lambda s: s.num_components)
        print(f"rounds committed     : {svc.next_lsn}")
        print(f"window components    : {comp}")
        if lat:
            print(
                f"flush latency        : mean {1e3 * sum(lat) / len(lat):.2f} ms, "
                f"max {1e3 * max(lat):.2f} ms over {len(lat)} flushes"
            )
        hist = get_metrics().histogram("service.flush_edges").summary()
        print(
            f"adaptive batch sizes : mean {hist['mean']:.1f} edges "
            f"(min {hist['min']:.0f}, max {hist['max']:.0f})"
        )


def act_2_and_3_crash_recover(data_dir: str) -> None:
    print("\n== act 2: crash the apply loop mid-run ==")
    stream = _stream()
    crash_at = ROUNDS // 2

    # The uninterrupted twin: same seed, same rounds, no service at all.
    twin = _structure()
    for b in stream:
        twin.batch_insert(list(b.edges))
        if b.expire:
            twin.batch_expire(b.expire)

    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=5)
    svc = StreamService(_structure(), data_dir=data_dir, config=cfg)
    svc.failpoints["after-wal-append"] = lambda lsn: lsn == crash_at
    died_at = None
    for i, b in enumerate(stream):
        try:
            svc.submit(b)
            svc.flush()  # one round per flush keeps the narrative legible
        except InjectedCrash as exc:
            died_at = i
            print(f"round {i}: {exc}")
            break
    assert died_at is not None

    print("\n== act 3: recover and finish the run ==")
    svc = StreamService.open(data_dir, _structure, config=cfg)
    print(
        f"recovered: {svc.recovered_rounds} rounds replayed from the WAL "
        f"(snapshots skipped the rest); resuming at lsn {svc.next_lsn}"
    )
    for b in stream[svc.next_lsn :]:
        svc.submit(b)
        svc.flush()
    svc.close()

    same_components = svc.structure.num_components == twin.num_components
    same_forest = sorted(svc.structure.forest_edges()) == sorted(twin.forest_edges())
    print(f"components match uninterrupted twin : {same_components}")
    print(f"spanning forest matches             : {same_forest}")
    assert same_components and same_forest, "recovery diverged from the twin"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.demo",
        description="Serve, crash, and recover a sliding-window structure.",
    )
    parser.add_argument(
        "--dir",
        default=None,
        help="data directory for WAL + snapshots (default: a fresh tempdir)",
    )
    args = parser.parse_args(argv)

    if args.dir is not None:
        act_1_serve(args.dir + "/serve")
        act_2_and_3_crash_recover(args.dir + "/crash")
    else:
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
            act_1_serve(tmp + "/serve")
            act_2_and_3_crash_recover(tmp + "/crash")
    print("\ndemo ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
