"""Consistent batch reads over a replicated window structure.

:class:`QueryService` is the read-side twin of the ingest path: clients
submit *batches* of queries -- exactly the shape the RC-tree batch read
kernels reward, since ``l`` path/connectivity queries share one
level-synchronous sweep costing ``O(l lg(1 + n/l))`` total (the
Theorem 3.2 grouping over ``docs/batch_queries.md``'s vectorized
kernels) rather than ``l`` independent ``O(lg n)`` searches -- and the
service routes each batch to the **least-lagged live follower**, falling
back to the primary when no replica can serve.

Consistency is by LSN token.  Every ``ReplicatedService.write`` returns
the LSN of its round; a read tagged ``at_least=lsn`` is answered only by
a replica that has replayed *past* that round (read-your-writes).  When
the best replica is behind, the ``on_lag`` policy decides:

- ``"catch_up"`` (default): replay the missing rounds inline on the
  chosen replica -- deterministic, ideal for tests and examples;
- ``"wait"``: block until some replica catches up (the background
  replication threads do the work), raising :class:`StalenessExceeded`
  at ``wait_timeout`` -- the realistic server policy, used by the read
  benchmark;
- ``"redirect"``: answer from the primary (strongly consistent, but
  contends with ingest -- the degenerate mode the follower tier exists
  to avoid).

``max_staleness=k`` is the inverse escape hatch: a *bounded-staleness*
read that any replica within ``k`` rounds of the primary's durable tip
may answer, regardless of tokens.

The router also carries the read side of the resilience story
(``docs/resilience.md``):

- a per-replica :class:`~repro.service.resilience.CircuitBreaker`
  (optional) skips replicas that keep failing instead of paying their
  failure latency on every batch, and a replica that throws mid-read is
  recorded and routed around within the same call;
- ``on_primary_down="degrade"`` keeps reads flowing when the primary is
  dead and no failover has happened yet: the batch is answered by the
  most-caught-up live follower and the result is flagged
  ``stale=True`` -- explicitly weaker than read-your-writes, but
  available;
- ``max_inflight`` sheds excess concurrent batches with
  :class:`~repro.service.resilience.ServiceOverloaded` (carrying a
  ``retry_after`` hint) instead of queueing without bound.

Query batches are lists of tuples::

    ("connected", u, v)     window connectivity (batched: one shared sweep)
    ("path_max", u, v)      heaviest (weight, eid) on the tree path
    ("components",)         number of connected components
    ("weight",)             (approximate) MSF weight
    ("certificate",)        k-connectivity certificate edge set
    ("k_connected",)        whether the window graph is k-connected
    ("lower_bound",)        certified connectivity lower bound
    ("has_cycle",)          cycle-freeness monitor
    ("is_bipartite",)       bipartiteness monitor
    ("window_size",)        unexpired stream items

A query the served structure cannot answer raises
:class:`UnsupportedQuery` (e.g. ``("components",)`` against the lazy
Theorem 5.1 structure, which does not track them).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel
from repro.service.resilience import CircuitBreaker, ServiceOverloaded
from repro.service.service import ServiceClosed


#: Returned by a replica's non-blocking ``try_query`` when its lock is
#: held (a replay in progress).  Defined here -- the service layer -- so
#: both the router and :class:`repro.replication.follower.Follower` can
#: share it without the service package importing the replication one.
BUSY = object()


class UnsupportedQuery(ValueError):
    """The served structure has no method answering this query kind."""


class StalenessExceeded(RuntimeError):
    """No replica reached the required LSN within ``wait_timeout``."""


@dataclass(frozen=True)
class ReadResult:
    """One answered batch.

    Attributes:
        answers: per-query answers, aligned with the submitted batch.
        lsn: rounds the serving replica had replayed at answer time
            (its consistency point; ``>= at_least + 1`` when a token was
            given).
        replica: ``"follower<fid>"`` or ``"primary"``.
        stale: True only for a degraded read (``on_primary_down=
            "degrade"`` with the primary dead): the answer may predate
            the requested token, and the client must treat it as
            best-effort.
    """

    answers: list
    lsn: int
    replica: str
    stale: bool = False


#: ``kind -> (attribute, is_property)`` for the zero-argument queries.
_SCALAR_QUERIES = {
    "components": ("num_components", True),
    "weight": ("weight", False),
    "certificate": ("make_certificate", False),
    "k_connected": ("is_k_connected", False),
    "lower_bound": ("connectivity_lower_bound", False),
    "has_cycle": ("has_cycle", False),
    "is_bipartite": ("is_bipartite", False),
    "window_size": ("window_size", True),
    # The sharded tier's contraction input (repro.sharding): the served
    # structure's maintained MSF edge set as (u, v, w, eid) rows.
    "forest": ("shard_forest", False),
}


#: ``kind -> (batched method, per-query fallback)`` for the pair reads.
_READ_GROUPS = {
    "connected": ("batch_is_connected", "is_connected"),
    "path_max": ("batch_heaviest_edges", "heaviest_edge"),
}


def _group_reads(structure: Any, grouped: dict, answers: list) -> None:
    """Dispatch the grouped pair reads through the structure's batched
    entry points (the vectorized read path).

    ``grouped`` maps a kind of :data:`_READ_GROUPS` to its
    ``(query index, u, v)`` items.  Each group prefers the structure's
    ``batch_*`` method (one shared RC-tree sweep for the whole group);
    a group whose batched method is missing falls back to the per-query
    method **and emits a ``query.fallback`` metric** -- a structure with
    mixed batch capability (say ``batch_is_connected`` but no
    ``batch_heaviest_edges``) must not silently degrade half its reads
    to per-query traversals.
    """
    m = get_metrics()
    for kind, items in grouped.items():
        if not items:
            continue
        batch_name, single_name = _READ_GROUPS[kind]
        batch = getattr(structure, batch_name, None)
        if batch is not None:
            results = batch([(u, v) for _, u, v in items])
        else:
            single = getattr(structure, single_name, None)
            if single is None:
                raise UnsupportedQuery(
                    f"{type(structure).__name__} cannot answer {kind!r}"
                )
            m.counter("query.fallback").inc(len(items))
            m.counter(f"query.fallback.{kind}").inc(len(items))
            results = [single(u, v) for _, u, v in items]
        for (i, _, _), r in zip(items, results):
            answers[i] = r


def answer_queries(structure: Any, queries: Sequence[tuple]) -> list:
    """Answer one batch against ``structure`` directly (no routing).

    Groups the pair queries so all ``connected`` (and all ``path_max``)
    entries dispatch through the structure's batched entry points when it
    has them -- one shared RC-tree sweep per group (Theorem 3.2 grouping
    over the vectorized ``batch-query`` kernels).
    """
    answers: list = [None] * len(queries)
    grouped: dict[str, list[tuple[int, int, int]]] = {
        kind: [] for kind in _READ_GROUPS
    }
    cost = getattr(structure, "cost", None)
    charge = cost if cost is not None else CostModel(enabled=False)
    with charge.phase("query-read", items=len(queries)):
        for i, q in enumerate(queries):
            kind = q[0]
            if kind in _READ_GROUPS:
                grouped[kind].append((i, int(q[1]), int(q[2])))
            elif kind in _SCALAR_QUERIES:
                attr, is_prop = _SCALAR_QUERIES[kind]
                target = getattr(structure, attr, None)
                if target is None:
                    raise UnsupportedQuery(
                        f"{type(structure).__name__} cannot answer {kind!r}"
                    )
                answers[i] = target if is_prop else target()
            else:
                raise UnsupportedQuery(f"unknown query kind {kind!r}")
        _group_reads(structure, grouped, answers)
    return answers


class QueryService:
    """Routes read batches across a :class:`ReplicatedService`'s replicas.

    Args:
        service: the :class:`~repro.replication.replicated.ReplicatedService`
            to read from (duck-typed: needs ``primary``, ``followers``).
        on_lag: the behind-token policy -- ``"catch_up"``, ``"wait"``, or
            ``"redirect"`` (see module docstring).
        wait_timeout: seconds :class:`StalenessExceeded` fires after in
            ``"wait"`` mode.
        poll_interval: sleep between re-checks while waiting (sleeping
            releases the GIL, letting replication threads replay).
        spread_lag: how many rounds behind the freshest replica a replica
            may be and still serve reads (default 1).  Reads round-robin
            across every replica inside the band (that also satisfies the
            request's token), trading staleness -- never beyond the
            band or below the token -- for read spreading.
        on_primary_down: what a read that must fall back to a dead
            primary does -- ``"fail"`` (default) raises
            :class:`~repro.service.service.ServiceClosed`;
            ``"degrade"`` answers from the most-caught-up live follower
            with ``ReadResult.stale=True`` (and raises
            :class:`StalenessExceeded` only when no follower is live
            either).
        breaker: optional per-replica circuit breaker; a replica whose
            breaker is open is skipped by routing until its cooldown
            half-opens it.
        max_inflight: admission-control cap on concurrently running
            batches; batch ``max_inflight + 1`` is shed with
            :class:`~repro.service.resilience.ServiceOverloaded` instead
            of queueing (None: unbounded).
        recorder: optional trace-capture hook (duck-typed, normally a
            :class:`repro.trace.recorder.TraceRecorder`): each answered
            batch is reported via ``recorder.record_read(queries,
            at_least=..., max_staleness=...)`` so the read mix and its
            consistency levels can be replayed.  Best-effort -- a
            recorder failure increments ``trace.record_failures`` and
            never fails the read.
    """

    def __init__(
        self,
        service: Any,
        *,
        on_lag: str = "catch_up",
        wait_timeout: float = 5.0,
        poll_interval: float = 0.0005,
        spread_lag: int = 1,
        on_primary_down: str = "fail",
        breaker: CircuitBreaker | None = None,
        max_inflight: int | None = None,
        recorder: Any | None = None,
    ) -> None:
        if on_lag not in ("catch_up", "wait", "redirect"):
            raise ValueError(f"unknown on_lag policy {on_lag!r}")
        if spread_lag < 0:
            raise ValueError("spread_lag must be >= 0")
        if on_primary_down not in ("fail", "degrade"):
            raise ValueError(
                f"unknown on_primary_down policy {on_primary_down!r}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.service = service
        self.on_lag = on_lag
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval
        self.spread_lag = spread_lag
        self.on_primary_down = on_primary_down
        self.breaker = breaker
        self.max_inflight = max_inflight
        self.recorder = recorder
        self._inflight = (
            None
            if max_inflight is None
            else threading.BoundedSemaphore(max_inflight)
        )
        # EWMA of batch wall time, feeding ServiceOverloaded.retry_after:
        # "one drain interval" is roughly how long one batch takes.
        self._latency_ewma = 0.0
        self._rr = 0  # round-robin tie-break among least-lagged replicas

    #: The read-grouping dispatcher (documented entry point; also used by
    #: :func:`answer_queries` for unrouted reads).
    _group_reads = staticmethod(_group_reads)

    def run(
        self,
        queries: Sequence[tuple],
        at_least: int | None = None,
        max_staleness: int | None = None,
    ) -> ReadResult:
        """Answer one batch under the requested consistency level.

        ``at_least=lsn`` demands the round committed as ``lsn`` be
        replayed (pass a :meth:`ReplicatedService.write` token for
        read-your-writes).  ``max_staleness=k`` demands the serving
        replica be within ``k`` rounds of the primary's durable tip.
        """
        queries = [tuple(q) for q in queries]
        m = get_metrics()
        if self._inflight is not None and not self._inflight.acquire(
            blocking=False
        ):
            m.counter("query.shed").inc()
            raise ServiceOverloaded(
                f"{self.max_inflight} batches already in flight",
                retry_after=self._latency_ewma or self.poll_interval,
            )
        try:
            t0 = time.perf_counter()
            required = 0 if at_least is None else at_least + 1
            if max_staleness is not None:
                if max_staleness < 0:
                    raise ValueError("max_staleness must be >= 0")
                required = max(
                    required, self.service.primary.next_lsn - max_staleness
                )
            answers, lsn, replica, stale = self._route(queries, required)
            wall = time.perf_counter() - t0
        finally:
            if self._inflight is not None:
                self._inflight.release()
        self._latency_ewma = (
            wall
            if self._latency_ewma == 0.0
            else 0.8 * self._latency_ewma + 0.2 * wall
        )
        if self.recorder is not None:
            # The batch was answered; trace capture must not fail it.
            try:
                self.recorder.record_read(
                    queries, at_least=at_least, max_staleness=max_staleness
                )
            except Exception:
                m.counter("trace.record_failures").inc()
        m.counter("query.batches").inc()
        m.counter("query.reads").inc(len(queries))
        m.histogram("query.batch_size").observe(len(queries))
        m.histogram("query.latency_ms").observe(wall * 1e3)
        return ReadResult(answers=answers, lsn=lsn, replica=replica, stale=stale)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @staticmethod
    def _is_replica_failure(exc: BaseException) -> bool:
        # What counts as "this replica failed, try another": replica
        # life-cycle errors (FollowerDead and friends are RuntimeErrors)
        # and storage faults.  Routing-level verdicts and client errors
        # must propagate instead of being laundered into a reroute.
        if isinstance(
            exc, (StalenessExceeded, ServiceOverloaded, UnsupportedQuery)
        ):
            return False
        return isinstance(exc, (OSError, RuntimeError))

    def _route(
        self,
        queries: Sequence[tuple],
        required: int,
        exclude: frozenset = frozenset(),
    ) -> tuple[list, int, str, bool]:
        m = get_metrics()
        live = [
            f
            for f in self.service.followers
            if f.alive and f.fid not in exclude
        ]
        if not live:
            return self._read_primary(queries)
        tip = max(f.replayed_lsn for f in live)
        # Least-lagged routing, spread round-robin across the replicas
        # within ``spread_lag`` rounds of the freshest (and satisfying the
        # token): concurrent readers then fan out over near-tied replicas
        # instead of serializing on one replica's lock, at a bounded
        # staleness cost beyond the best available.
        floor = max(required, tip - self.spread_lag)
        near = [f for f in live if f.replayed_lsn >= floor]
        if near:
            # Busy avoidance: starting at the round-robin offset, take the
            # first in-band replica whose lock is free (one mid-replay
            # does not stall the read); fall back to blocking on the
            # round-robin choice if every replica is busy.
            self._rr += 1
            order = [near[(self._rr + i) % len(near)] for i in range(len(near))]
            for f in order:
                if self.breaker is not None and not self.breaker.allow(f.fid):
                    continue
                try:
                    res = f.try_query(lambda s: answer_queries(s, queries))
                except Exception as exc:
                    if not self._is_replica_failure(exc):
                        raise
                    m.counter("query.replica_failures").inc()
                    if self.breaker is not None:
                        self.breaker.record_failure(f.fid)
                    continue
                if res is BUSY:
                    # The probe never ran; hand the half-open slot back.
                    if self.breaker is not None:
                        self.breaker.cancel(f.fid)
                    continue
                if self.breaker is not None:
                    self.breaker.record_success(f.fid)
                lag = self.service.primary.next_lsn - f.replayed_lsn
                m.histogram("query.lag_rounds").observe(lag)
                return res, f.replayed_lsn, f"follower{f.fid}", False
            best = order[0]
        else:
            best = max(live, key=lambda f: f.replayed_lsn)
        # ``need_primary`` routes around the try below: a primary-side
        # failure (e.g. ServiceClosed with on_primary_down="fail") must
        # propagate as the primary's verdict, not be mistaken for a
        # replica failure and charged to ``best``'s breaker.
        need_primary = False
        try:
            if best.replayed_lsn < required:
                if self.on_lag == "catch_up":
                    m.counter("query.catch_ups").inc()
                    best.catch_up()
                    if best.replayed_lsn < required:
                        # The round is not durable yet (bad token) or the
                        # replica is fenced below it; the primary still
                        # holds the authoritative state.
                        need_primary = True
                elif self.on_lag == "wait":
                    got = self._wait_for(required)
                    if got is None:
                        need_primary = True
                    else:
                        best = got
                else:  # redirect
                    need_primary = True
            if not need_primary:
                answers = best.query(lambda s: answer_queries(s, queries))
        except Exception as exc:
            if not self._is_replica_failure(exc):
                raise
            # The chosen replica failed mid-read (killed underneath us, or
            # its storage is faulting).  Record it and re-route across the
            # remaining replicas; each retry shrinks the candidate set, so
            # this terminates at the primary fallback.
            m.counter("query.replica_failures").inc()
            if self.breaker is not None:
                self.breaker.record_failure(best.fid)
            return self._route(
                queries, required, exclude=exclude | {best.fid}
            )
        if need_primary:
            return self._read_primary(queries)
        if self.breaker is not None:
            self.breaker.record_success(best.fid)
        lag = self.service.primary.next_lsn - best.replayed_lsn
        m.histogram("query.lag_rounds").observe(lag)
        return answers, best.replayed_lsn, f"follower{best.fid}", False

    def _wait_for(self, required: int):
        """Block until a live replica reaches ``required``; None means
        "fall back to the primary"."""
        m = get_metrics()
        m.counter("query.waits").inc()
        deadline = time.monotonic() + self.wait_timeout
        while True:
            live = [f for f in self.service.followers if f.alive]
            ready = [f for f in live if f.replayed_lsn >= required]
            if ready:
                return max(ready, key=lambda f: f.replayed_lsn)
            if not live:
                # Fail fast: with zero live replicas nobody will ever
                # catch up, so burning the whole wait_timeout only delays
                # the verdict.  The primary can still serve the token if
                # it is alive and has committed that round.
                primary = self.service.primary
                if (
                    getattr(primary, "alive", True)
                    and required <= primary.next_lsn
                ):
                    return None
                raise StalenessExceeded(
                    f"no live replicas (lsn {required} required, primary "
                    "cannot serve it)"
                )
            if time.monotonic() >= deadline:
                tip = max(
                    (f.replayed_lsn for f in live), default=0
                )
                raise StalenessExceeded(
                    f"no replica reached lsn {required} within "
                    f"{self.wait_timeout}s (best: {tip})"
                )
            time.sleep(self.poll_interval)

    def _read_primary(
        self, queries: Sequence[tuple]
    ) -> tuple[list, int, str, bool]:
        m = get_metrics()
        primary = self.service.primary
        if getattr(primary, "alive", True):
            m.counter("query.redirects").inc()
            try:
                answers = primary.query(lambda s: answer_queries(s, queries))
                return answers, primary.next_lsn, "primary", False
            except Exception as exc:
                if (
                    self.on_primary_down != "degrade"
                    or not self._is_replica_failure(exc)
                ):
                    raise
                # The primary died under the read; fall through to the
                # degraded path below.
        elif self.on_primary_down == "fail":
            raise ServiceClosed(
                "primary is down and on_primary_down='fail' "
                "(use 'degrade' to serve stale reads through an outage)"
            )
        return self._read_degraded(queries)

    def _read_degraded(
        self, queries: Sequence[tuple]
    ) -> tuple[list, int, str, bool]:
        """Availability over consistency: the primary is down, answer from
        the most-caught-up live follower and flag the result stale.

        Each candidate first drains whatever the dead primary left durable
        (best effort -- its storage may be the thing that is broken), so
        the staleness window is as small as the log allows.
        """
        m = get_metrics()
        live = [f for f in self.service.followers if f.alive]
        for f in sorted(live, key=lambda f: f.replayed_lsn, reverse=True):
            try:
                try:
                    f.catch_up()
                except Exception as exc:
                    if not self._is_replica_failure(exc):
                        raise
                    m.counter("query.degraded_catchup_failures").inc()
                answers = f.query(lambda s: answer_queries(s, queries))
            except Exception as exc:
                if not self._is_replica_failure(exc):
                    raise
                m.counter("query.replica_failures").inc()
                if self.breaker is not None:
                    self.breaker.record_failure(f.fid)
                continue
            m.counter("query.degraded_reads").inc()
            return answers, f.replayed_lsn, f"follower{f.fid}", True
        raise StalenessExceeded(
            "primary is down and no live replica could serve a degraded read"
        )
