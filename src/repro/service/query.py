"""Consistent batch reads over a replicated window structure.

:class:`QueryService` is the read-side twin of the ingest path: clients
submit *batches* of queries -- exactly the shape the paper's compressed
path trees reward, since ``l`` path/connectivity queries against one CPT
cost ``O(l lg(1 + n/l))`` total (Theorem 3.2) rather than ``l``
independent ``O(lg n)`` searches -- and the service routes each batch to
the **least-lagged live follower**, falling back to the primary when no
replica can serve.

Consistency is by LSN token.  Every ``ReplicatedService.write`` returns
the LSN of its round; a read tagged ``at_least=lsn`` is answered only by
a replica that has replayed *past* that round (read-your-writes).  When
the best replica is behind, the ``on_lag`` policy decides:

- ``"catch_up"`` (default): replay the missing rounds inline on the
  chosen replica -- deterministic, ideal for tests and examples;
- ``"wait"``: block until some replica catches up (the background
  replication threads do the work), raising :class:`StalenessExceeded`
  at ``wait_timeout`` -- the realistic server policy, used by the read
  benchmark;
- ``"redirect"``: answer from the primary (strongly consistent, but
  contends with ingest -- the degenerate mode the follower tier exists
  to avoid).

``max_staleness=k`` is the inverse escape hatch: a *bounded-staleness*
read that any replica within ``k`` rounds of the primary's durable tip
may answer, regardless of tokens.

Query batches are lists of tuples::

    ("connected", u, v)     window connectivity (batched via one CPT)
    ("path_max", u, v)      heaviest (weight, eid) on the tree path
    ("components",)         number of connected components
    ("weight",)             (approximate) MSF weight
    ("certificate",)        k-connectivity certificate edge set
    ("k_connected",)        whether the window graph is k-connected
    ("lower_bound",)        certified connectivity lower bound
    ("has_cycle",)          cycle-freeness monitor
    ("is_bipartite",)       bipartiteness monitor
    ("window_size",)        unexpired stream items

A query the served structure cannot answer raises
:class:`UnsupportedQuery` (e.g. ``("components",)`` against the lazy
Theorem 5.1 structure, which does not track them).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel


#: Returned by a replica's non-blocking ``try_query`` when its lock is
#: held (a replay in progress).  Defined here -- the service layer -- so
#: both the router and :class:`repro.replication.follower.Follower` can
#: share it without the service package importing the replication one.
BUSY = object()


class UnsupportedQuery(ValueError):
    """The served structure has no method answering this query kind."""


class StalenessExceeded(RuntimeError):
    """No replica reached the required LSN within ``wait_timeout``."""


@dataclass(frozen=True)
class ReadResult:
    """One answered batch.

    Attributes:
        answers: per-query answers, aligned with the submitted batch.
        lsn: rounds the serving replica had replayed at answer time
            (its consistency point; ``>= at_least + 1`` when a token was
            given).
        replica: ``"follower<fid>"`` or ``"primary"``.
    """

    answers: list
    lsn: int
    replica: str


#: ``kind -> (attribute, is_property)`` for the zero-argument queries.
_SCALAR_QUERIES = {
    "components": ("num_components", True),
    "weight": ("weight", False),
    "certificate": ("make_certificate", False),
    "k_connected": ("is_k_connected", False),
    "lower_bound": ("connectivity_lower_bound", False),
    "has_cycle": ("has_cycle", False),
    "is_bipartite": ("is_bipartite", False),
    "window_size": ("window_size", True),
}


def answer_queries(structure: Any, queries: Sequence[tuple]) -> list:
    """Answer one batch against ``structure`` directly (no routing).

    Groups the pair queries so all ``connected`` (and all ``path_max``)
    entries share a single CPT build via the structure's batched entry
    points when it has them.
    """
    answers: list = [None] * len(queries)
    connected: list[tuple[int, int, int]] = []
    path_max: list[tuple[int, int, int]] = []
    cost = getattr(structure, "cost", None)
    charge = cost if cost is not None else CostModel(enabled=False)
    with charge.phase("query-read", items=len(queries)):
        for i, q in enumerate(queries):
            kind = q[0]
            if kind == "connected":
                connected.append((i, int(q[1]), int(q[2])))
            elif kind == "path_max":
                path_max.append((i, int(q[1]), int(q[2])))
            elif kind in _SCALAR_QUERIES:
                attr, is_prop = _SCALAR_QUERIES[kind]
                target = getattr(structure, attr, None)
                if target is None:
                    raise UnsupportedQuery(
                        f"{type(structure).__name__} cannot answer {kind!r}"
                    )
                answers[i] = target if is_prop else target()
            else:
                raise UnsupportedQuery(f"unknown query kind {kind!r}")
        if connected:
            batch = getattr(structure, "batch_is_connected", None)
            if batch is not None:
                results = batch([(u, v) for _, u, v in connected])
            else:
                single = getattr(structure, "is_connected", None)
                if single is None:
                    raise UnsupportedQuery(
                        f"{type(structure).__name__} cannot answer 'connected'"
                    )
                results = [single(u, v) for _, u, v in connected]
            for (i, _, _), r in zip(connected, results):
                answers[i] = r
        if path_max:
            batch = getattr(structure, "batch_heaviest_edges", None)
            if batch is not None:
                results = batch([(u, v) for _, u, v in path_max])
            else:
                single = getattr(structure, "heaviest_edge", None)
                if single is None:
                    raise UnsupportedQuery(
                        f"{type(structure).__name__} cannot answer 'path_max'"
                    )
                results = [single(u, v) for _, u, v in path_max]
            for (i, _, _), r in zip(path_max, results):
                answers[i] = r
    return answers


class QueryService:
    """Routes read batches across a :class:`ReplicatedService`'s replicas.

    Args:
        service: the :class:`~repro.replication.replicated.ReplicatedService`
            to read from (duck-typed: needs ``primary``, ``followers``).
        on_lag: the behind-token policy -- ``"catch_up"``, ``"wait"``, or
            ``"redirect"`` (see module docstring).
        wait_timeout: seconds :class:`StalenessExceeded` fires after in
            ``"wait"`` mode.
        poll_interval: sleep between re-checks while waiting (sleeping
            releases the GIL, letting replication threads replay).
        spread_lag: how many rounds behind the freshest replica a replica
            may be and still serve reads (default 1).  Reads round-robin
            across every replica inside the band (that also satisfies the
            request's token), trading staleness -- never beyond the
            band or below the token -- for read spreading.
    """

    def __init__(
        self,
        service: Any,
        *,
        on_lag: str = "catch_up",
        wait_timeout: float = 5.0,
        poll_interval: float = 0.0005,
        spread_lag: int = 1,
    ) -> None:
        if on_lag not in ("catch_up", "wait", "redirect"):
            raise ValueError(f"unknown on_lag policy {on_lag!r}")
        if spread_lag < 0:
            raise ValueError("spread_lag must be >= 0")
        self.service = service
        self.on_lag = on_lag
        self.wait_timeout = wait_timeout
        self.poll_interval = poll_interval
        self.spread_lag = spread_lag
        self._rr = 0  # round-robin tie-break among least-lagged replicas

    def run(
        self,
        queries: Sequence[tuple],
        at_least: int | None = None,
        max_staleness: int | None = None,
    ) -> ReadResult:
        """Answer one batch under the requested consistency level.

        ``at_least=lsn`` demands the round committed as ``lsn`` be
        replayed (pass a :meth:`ReplicatedService.write` token for
        read-your-writes).  ``max_staleness=k`` demands the serving
        replica be within ``k`` rounds of the primary's durable tip.
        """
        queries = [tuple(q) for q in queries]
        t0 = time.perf_counter()
        required = 0 if at_least is None else at_least + 1
        if max_staleness is not None:
            if max_staleness < 0:
                raise ValueError("max_staleness must be >= 0")
            required = max(
                required, self.service.primary.next_lsn - max_staleness
            )
        m = get_metrics()
        answers, lsn, replica = self._route(queries, required)
        wall = time.perf_counter() - t0
        m.counter("query.batches").inc()
        m.counter("query.reads").inc(len(queries))
        m.histogram("query.batch_size").observe(len(queries))
        m.histogram("query.latency_ms").observe(wall * 1e3)
        return ReadResult(answers=answers, lsn=lsn, replica=replica)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(
        self, queries: Sequence[tuple], required: int
    ) -> tuple[list, int, str]:
        m = get_metrics()
        live = [f for f in self.service.followers if f.alive]
        if not live:
            return self._read_primary(queries)
        tip = max(f.replayed_lsn for f in live)
        # Least-lagged routing, spread round-robin across the replicas
        # within ``spread_lag`` rounds of the freshest (and satisfying the
        # token): concurrent readers then fan out over near-tied replicas
        # instead of serializing on one replica's lock, at a bounded
        # staleness cost beyond the best available.
        floor = max(required, tip - self.spread_lag)
        near = [f for f in live if f.replayed_lsn >= floor]
        if near:
            # Busy avoidance: starting at the round-robin offset, take the
            # first in-band replica whose lock is free (one mid-replay
            # does not stall the read); fall back to blocking on the
            # round-robin choice if every replica is busy.
            self._rr += 1
            order = [near[(self._rr + i) % len(near)] for i in range(len(near))]
            for f in order:
                res = f.try_query(lambda s: answer_queries(s, queries))
                if res is not BUSY:
                    lag = self.service.primary.next_lsn - f.replayed_lsn
                    m.histogram("query.lag_rounds").observe(lag)
                    return res, f.replayed_lsn, f"follower{f.fid}"
            best = order[0]
        else:
            best = max(live, key=lambda f: f.replayed_lsn)
        if best.replayed_lsn < required:
            if self.on_lag == "catch_up":
                m.counter("query.catch_ups").inc()
                best.catch_up()
                if best.replayed_lsn < required:
                    # The round is not durable yet (bad token) or the
                    # replica is fenced below it; the primary still holds
                    # the authoritative state.
                    return self._read_primary(queries)
            elif self.on_lag == "wait":
                best = self._wait_for(required)
            else:  # redirect
                return self._read_primary(queries)
        lag = self.service.primary.next_lsn - best.replayed_lsn
        m.histogram("query.lag_rounds").observe(lag)
        return (
            best.query(lambda s: answer_queries(s, queries)),
            best.replayed_lsn,
            f"follower{best.fid}",
        )

    def _wait_for(self, required: int):
        m = get_metrics()
        m.counter("query.waits").inc()
        deadline = time.monotonic() + self.wait_timeout
        while True:
            live = [f for f in self.service.followers if f.alive]
            ready = [f for f in live if f.replayed_lsn >= required]
            if ready:
                return max(ready, key=lambda f: f.replayed_lsn)
            if time.monotonic() >= deadline:
                tip = max(
                    (f.replayed_lsn for f in live), default=0
                )
                raise StalenessExceeded(
                    f"no replica reached lsn {required} within "
                    f"{self.wait_timeout}s (best: {tip})"
                )
            time.sleep(self.poll_interval)

    def _read_primary(
        self, queries: Sequence[tuple]
    ) -> tuple[list, int, str]:
        get_metrics().counter("query.redirects").inc()
        primary = self.service.primary
        answers = primary.query(lambda s: answer_queries(s, queries))
        return answers, primary.next_lsn, "primary"
