"""Durable streaming ingestion for the sliding-window structures.

:class:`StreamService` turns any Section 5 window structure (or anything
with the same ``batch_insert``/``batch_expire`` surface) into a small
service:

- **Adaptive micro-batching.**  Producers ``submit_insert`` /
  ``submit_expire`` into a pending buffer; a flush commits *everything*
  pending as one round, so batch size adapts to backlog automatically --
  exactly the lever the paper's ``O(l lg(1 + n/l))`` per-batch work bound
  rewards (larger ``l`` amortizes the logarithmic factor).  Flushes are
  size-triggered (``flush_edges``) and, when the background apply thread
  is running, deadline-triggered (``flush_interval``).
- **Single-writer apply loop.**  All mutation -- WAL append, structure
  apply, snapshot -- happens under one writer lock, either inline on the
  submitting thread (synchronous mode, deterministic, the default) or on
  the dedicated thread started by :meth:`StreamService.start`.
- **Durability.**  With a ``data_dir``, every round is appended to a
  write-ahead log *before* it is applied, and the structure is pickled to
  a checkpoint every ``snapshot_every`` rounds.  After a crash,
  :meth:`StreamService.open` restores the newest checkpoint and replays
  the WAL suffix; because the structures are deterministic given the op
  sequence, the recovered state answers queries byte-identically to an
  uninterrupted run.
- **Backpressure.**  The pending buffer is bounded (``max_pending``
  items: one per edge, one per expire op).  On overflow the service first
  sheds pending *expirations* if allowed (graceful degradation: the
  window goes stale rather than losing arrivals), then either flushes
  inline (synchronous mode) or raises :class:`Backpressure` (threaded
  mode) as admission control.

Failure injection: ``failpoints[point] = fn`` installs a predicate that,
when ``fn(lsn)`` is true, kills the apply loop at that point by raising
:class:`InjectedCrash` (the service then refuses further traffic, like a
dead process).  Points, in commit order: ``before-wal-append``,
``after-wal-append``, ``mid-apply``, ``after-apply``, ``before-snapshot``,
``after-snapshot``.  See ``docs/service.md`` for the full protocol.
"""

from __future__ import annotations

import os
import pathlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel
from repro.service.resilience import RetryPolicy, is_transient_io
from repro.service.snapshot import SnapshotStore
from repro.service.storage import StorageIO
from repro.service.wal import (
    OP_EXPIRE,
    OP_INSERT,
    Op,
    SegmentedWal,
    list_segments,
    read_wal_dir,
)

#: Pre-replication single-file WAL name; migrated into ``wal/`` on open.
WAL_FILENAME = "wal.jsonl"
WAL_DIRNAME = "wal"
SNAPSHOT_DIRNAME = "snapshots"


def wal_directory(data_dir: str | pathlib.Path) -> pathlib.Path:
    """The segmented-WAL directory of a service ``data_dir``, migrating a
    legacy single-file ``wal.jsonl`` into it (as segment 0) if present."""
    data_dir = pathlib.Path(data_dir)
    wal_dir = data_dir / WAL_DIRNAME
    legacy = data_dir / WAL_FILENAME
    if legacy.exists():
        wal_dir.mkdir(parents=True, exist_ok=True)
        target = wal_dir / "wal-000000000000-000000.jsonl"
        if target.exists():
            raise ValueError(
                f"{data_dir} holds both a legacy {WAL_FILENAME} and a "
                f"migrated segment; remove one"
            )
        os.replace(legacy, target)
    return wal_dir

#: Failpoint names, in the order the apply loop passes them per round.
FAILPOINTS = (
    "before-wal-append",
    "after-wal-append",
    "mid-apply",
    "after-apply",
    "before-snapshot",
    "after-snapshot",
)


class Backpressure(RuntimeError):
    """Admission control refused an op: the pending buffer is full."""


class InjectedCrash(RuntimeError):
    """A failpoint fired: the apply loop died mid-commit (simulated)."""


class ServiceClosed(RuntimeError):
    """The service is closed (or crashed) and takes no more traffic."""


@dataclass
class ServiceConfig:
    """Tuning knobs for :class:`StreamService`.

    Attributes:
        flush_edges: size trigger -- flush once this many pending items
            accumulate (an insert edge and an expire op each count 1).
        flush_interval: deadline trigger in seconds -- the background
            apply thread flushes any round that has been pending this
            long.  Ignored until :meth:`StreamService.start`.
        max_pending: bounded-queue capacity in items; overflow engages
            shedding, then inline flush (sync) or :class:`Backpressure`
            (threaded).
        shed_expirations: allow dropping pending expire ops under
            overload (insertions are never shed).  Shed counts appear in
            the ``service.expirations_shed`` metric.
        snapshot_every: checkpoint the structure every this many rounds
            (0 disables snapshots; the WAL alone still recovers, just
            with a full replay).
        retain_snapshots: how many checkpoints to keep on disk.
        fsync: force WAL appends and snapshots through the OS cache
            (slower, survives power loss rather than just process death).
        io: the storage seam every WAL/snapshot byte routes through
            (``None``: real I/O).  :class:`repro.chaos.faults.FaultyIO`
            plugs in here for deterministic fault injection.
        retry: a :class:`~repro.service.resilience.RetryPolicy` applied
            to *transient* WAL I/O errors in the commit path (``None``:
            no retries; the first storage error kills the service, the
            pre-resilience behaviour).  Corruption is never retried.
        recorder: optional trace-capture hook (duck-typed, normally a
            :class:`repro.trace.recorder.TraceRecorder`): after each
            round commits, ``recorder.record_round(lsn, ops)`` is called
            with the committed LSN and the flushed op list.  Capture is
            best-effort -- a recorder failure increments
            ``trace.record_failures`` and never fails the commit, since
            the round is already durable in the WAL.
    """

    flush_edges: int = 256
    flush_interval: float = 0.05
    max_pending: int = 4096
    shed_expirations: bool = False
    snapshot_every: int = 64
    retain_snapshots: int = 2
    fsync: bool = False
    io: StorageIO | None = None
    retry: RetryPolicy | None = None
    recorder: Any | None = None


def apply_ops(structure: Any, ops: Sequence[Op]) -> None:
    """Apply one round's ordered ops to ``structure`` (also used by replay)."""
    for kind, payload in ops:
        if kind == OP_INSERT:
            structure.batch_insert(payload)
        elif kind == OP_EXPIRE:
            structure.batch_expire(payload)
        else:  # pragma: no cover - records are validated on decode
            raise ValueError(f"unknown op kind {kind!r}")


class StreamService:
    """A durable, micro-batching front-end over one window structure.

    Args:
        structure: the sliding-window structure to serve; the service is
            its single writer from here on.
        data_dir: directory for the WAL and snapshots; ``None`` runs the
            service memory-only (micro-batching and backpressure without
            durability).  A directory that already holds a WAL must be
            reopened with :meth:`open` (which recovers) -- passing it
            here raises, so stale state is never silently shadowed.
        config: a :class:`ServiceConfig`; defaults throughout.

    Producers may call :meth:`submit_insert` / :meth:`submit_expire` from
    any thread.  Queries go through :meth:`query` (or :meth:`paused`),
    which serialize against the apply loop.
    """

    def __init__(
        self,
        structure: Any,
        data_dir: str | pathlib.Path | None = None,
        config: ServiceConfig | None = None,
        *,
        _resume: bool = False,
    ) -> None:
        self.structure = structure
        self.config = config if config is not None else ServiceConfig()
        cost = getattr(structure, "cost", None)
        self.cost: CostModel = cost if cost is not None else CostModel()

        self._wal: SegmentedWal | None = None
        self._snapshots: SnapshotStore | None = None
        self.data_dir = (
            pathlib.Path(data_dir) if data_dir is not None else None
        )
        if self.data_dir is not None:
            self._wal = SegmentedWal(
                wal_directory(self.data_dir),
                fsync=self.config.fsync,
                io=self.config.io,
            )
            if self._wal.next_lsn and not _resume:
                self._wal.close()
                raise ValueError(
                    f"{data_dir} already holds {self._wal.next_lsn} WAL rounds; "
                    "use StreamService.open() to recover them"
                )
            self._snapshots = SnapshotStore(
                self.data_dir / SNAPSHOT_DIRNAME,
                retain=self.config.retain_snapshots,
                fsync=self.config.fsync,
                io=self.config.io,
            )
        self._next_lsn = self._wal.next_lsn if self._wal else 0
        self._epoch = self._wal.epoch if self._wal else 0

        # Pending micro-batch: ordered ops, same-kind neighbours coalesced.
        self._pending: list[list] = []  # [kind, payload] with mutable payload
        self._pending_items = 0
        self._pending_since: float | None = None
        self._cond = threading.Condition(threading.Lock())
        self._writer = threading.RLock()

        self._thread: threading.Thread | None = None
        self._stop = False
        self._dead = False
        self._error: BaseException | None = None
        self._closed = False
        self._rounds_applied = 0
        self._rounds_since_snapshot = 0
        self.recovered_rounds = 0
        #: Wall-clock seconds of each committed flush (for latency tails).
        self.flush_wall: list[float] = []
        #: ``name -> fn(lsn) -> bool`` crash predicates (failure injection).
        self.failpoints: dict[str, Callable[[int], bool]] = {}

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        data_dir: str | pathlib.Path,
        factory: Callable[[], Any],
        config: ServiceConfig | None = None,
    ) -> "StreamService":
        """Recover (or freshly create) a durable service in ``data_dir``.

        ``factory`` builds the empty structure -- it must be deterministic
        and match the one that produced the log (same ``n``, ``seed``,
        ``engine``).  Recovery loads the newest loadable checkpoint (if
        any), replays every durable WAL round past it, and returns a
        service ready for traffic; a torn WAL tail from a crash
        mid-append is truncated.  Query answers after recovery are
        byte-identical to a run that never crashed.
        """
        cfg = config if config is not None else ServiceConfig()
        data_dir = pathlib.Path(data_dir)
        store = SnapshotStore(
            data_dir / SNAPSHOT_DIRNAME,
            retain=cfg.retain_snapshots,
            fsync=cfg.fsync,
            io=cfg.io,
        )
        wal_dir = wal_directory(data_dir)
        records, base = read_wal_dir(wal_dir, cfg.io)
        fences = [(s.start, s.epoch) for s in list_segments(wal_dir)]

        def _covers(lsn: int, epoch: int) -> bool:
            # A checkpoint is trustworthy iff the round it claims to end
            # at sits on the *winning* WAL chain under the same epoch --
            # anything else was taken by a fenced ex-primary after losing
            # a promotion (its state includes discarded rounds).
            if any(fe > epoch and lsn >= fs for fs, fe in fences):
                return False  # fenced: a newer epoch owns rounds <= lsn
            if lsn < base:
                return True  # predates the retained log; nothing to check
            i = lsn - base
            return i < len(records) and records[i].epoch == epoch

        snap = store.load_latest(valid=_covers)
        if snap is None:
            applied_lsn, structure = -1, factory()
        else:
            applied_lsn, structure = snap
        if applied_lsn + 1 < base:
            raise ValueError(
                f"{data_dir}: no loadable snapshot covers rounds up to the "
                f"WAL base {base}; cannot recover"
            )
        cost = getattr(structure, "cost", None)
        recovered = 0
        if cost is not None:
            ctx = cost.phase("service-recover")
        else:  # pragma: no cover - every shipped structure carries a cost
            ctx = None
        with ctx if ctx is not None else _null_phase() as ph:
            for rec in records:
                if rec.lsn <= applied_lsn:
                    continue
                apply_ops(structure, rec.ops)
                recovered += 1
            if ph is not None:
                ph.count(recovered)
        svc = cls(structure, data_dir=data_dir, config=cfg, _resume=True)
        svc.recovered_rounds = recovered
        get_metrics().counter("service.recovered_rounds").inc(recovered)
        return svc

    @classmethod
    def adopt(
        cls,
        structure: Any,
        data_dir: str | pathlib.Path,
        *,
        lsn: int,
        epoch: int,
        config: ServiceConfig | None = None,
    ) -> "StreamService":
        """Take over ``data_dir`` as the *new primary* at round ``lsn``.

        The promotion primitive of :mod:`repro.replication`:
        ``structure`` (a promoted follower's state, rounds ``0..lsn-1``
        applied) becomes the service's structure, the WAL is reset to a
        fresh segment starting at ``lsn`` under the strictly newer
        ``epoch`` -- fencing any appends the old primary makes afterwards
        -- and checkpoints covering discarded rounds are deleted so a
        later recovery cannot resurrect them.
        """
        svc = cls(structure, data_dir=data_dir, config=config, _resume=True)
        assert svc._wal is not None and svc._snapshots is not None
        svc._wal.reset_to(lsn, epoch)
        svc._snapshots.drop_from(lsn)
        svc._next_lsn = lsn
        svc._epoch = epoch
        get_metrics().counter("service.promotions").inc()
        return svc

    # ------------------------------------------------------------------
    # Producer surface
    # ------------------------------------------------------------------

    def submit_insert(self, edges: Sequence[Sequence]) -> None:
        """Enqueue edge arrivals ``(u, v[, w])`` for the next round.

        Raises :class:`Backpressure` when the buffer is full and the
        background apply thread is running (synchronous services flush
        inline instead and always accept).
        """
        rows = tuple(tuple(e) for e in edges)
        if not rows:
            return
        for i, row in enumerate(rows):
            if len(row) not in (2, 3):
                raise ValueError(
                    f"edge row {i} has {len(row)} fields, expected "
                    f"(u, v) or (u, v, w): {row!r}"
                )
        self._enqueue(OP_INSERT, rows, items=len(rows))
        get_metrics().counter("service.edges_accepted").inc(len(rows))

    def submit_expire(self, delta: int) -> None:
        """Enqueue an expiration of the ``delta`` oldest window items."""
        if delta < 0:
            raise ValueError("cannot expire a negative number of edges")
        if delta == 0:
            return
        self._enqueue(OP_EXPIRE, int(delta), items=1)

    def submit(self, batch: Any) -> None:
        """Enqueue one :class:`~repro.graphgen.streams.EdgeBatch` round."""
        self.submit_insert(batch.edges)
        if batch.expire:
            self.submit_expire(batch.expire)

    def _enqueue(self, kind: str, payload: Any, items: int) -> None:
        while True:
            self._check_alive()
            admitted = False
            flush_inline = False
            with self._cond:
                if self._admit(kind, items):
                    self._push(kind, payload, items)
                    admitted = True
                    if self._pending_items >= self.config.flush_edges:
                        if self._thread is not None:
                            self._cond.notify_all()
                        else:
                            flush_inline = True
                elif self.config.shed_expirations and kind == OP_EXPIRE:
                    # Under overload the incoming expiration itself is shed.
                    self._drop_pending_expires(extra=payload)
                    return
                elif self.config.shed_expirations and self._drop_pending_expires():
                    continue  # shedding freed room; retry admission
                elif self._thread is not None:
                    get_metrics().counter("service.rejected").inc()
                    raise Backpressure(
                        f"pending buffer full ({self._pending_items}/"
                        f"{self.config.max_pending} items)"
                    )
            if admitted:
                if flush_inline:
                    self.flush()
                return
            self.flush()  # sync-mode overflow: drain inline, retry admission

    def _admit(self, kind: str, items: int) -> bool:
        if self._pending_items + items <= self.config.max_pending:
            return True
        # An oversized single batch is admitted into an empty buffer.
        return not self._pending and items > self.config.max_pending

    def _push(self, kind: str, payload: Any, items: int) -> None:
        if self._pending and self._pending[-1][0] == kind:
            if kind == OP_INSERT:
                self._pending[-1][1].extend(payload)
            else:
                self._pending[-1][1] += payload
                items = 0  # merged expires stay one op
        else:
            self._pending.append(
                [kind, list(payload) if kind == OP_INSERT else payload]
            )
        self._pending_items += items
        if self._pending_since is None:
            self._pending_since = time.monotonic()
        get_metrics().gauge("service.queue_depth").set(self._pending_items)

    def _drop_pending_expires(self, extra: int = 0) -> bool:
        """Shed every pending expire op (graceful degradation under load).

        ``extra`` adds an incoming, never-enqueued expiration to the shed
        count.  Returns True when the buffer actually shrank.
        """
        had_expires = any(k == OP_EXPIRE for k, _ in self._pending)
        shed = extra
        if had_expires:
            kept = [op for op in self._pending if op[0] == OP_INSERT]
            shed += sum(p for k, p in self._pending if k == OP_EXPIRE)
            self._pending = kept
            self._pending_items = sum(len(p) for _, p in kept)
            get_metrics().gauge("service.queue_depth").set(self._pending_items)
        if shed:
            get_metrics().counter("service.expirations_shed").inc(shed)
        return had_expires

    # ------------------------------------------------------------------
    # The single-writer apply loop
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Commit everything pending as one round; returns its LSN.

        Returns -1 when nothing was pending.  The whole WAL-append /
        apply / snapshot sequence runs under the writer lock, so flushes
        from producers and the background thread serialize.
        """
        self._check_alive()
        with self._writer:
            with self._cond:
                ops = self._take_pending()
            if not ops:
                return -1
            return self._commit(ops)

    def drain(self) -> None:
        """Flush until the pending buffer is empty (a durability barrier)."""
        while True:
            with self._cond:
                empty = not self._pending
            if empty:
                return
            self.flush()

    def _take_pending(self) -> list[Op]:
        ops = [
            (kind, tuple(payload) if kind == OP_INSERT else payload)
            for kind, payload in self._pending
        ]
        self._pending.clear()
        self._pending_items = 0
        self._pending_since = None
        return ops

    def _commit(self, ops: Sequence[Op]) -> int:
        t0 = time.perf_counter()
        lsn = self._next_lsn
        n_edges = sum(len(p) for k, p in ops if k == OP_INSERT)
        try:
            self._fail("before-wal-append", lsn)
            if self._wal is not None:
                # A transient storage fault (EIO/ENOSPC/torn write/failed
                # fsync) is retried under the configured policy: the WAL
                # repaired itself back to the durable prefix, so the
                # retry re-appends the same LSN onto a clean tail.
                # Corruption and injected crashes are never retried.
                if self.config.retry is not None:
                    self.config.retry.call(
                        lambda: self._wal.append(ops, epoch=self._epoch)
                    )
                else:
                    self._wal.append(ops, epoch=self._epoch)
                get_metrics().gauge("service.wal_bytes").set(
                    self._wal.bytes_written
                )
            self._fail("after-wal-append", lsn)
            with self.cost.phase("service-flush", items=n_edges):
                applied = 0
                for kind, payload in ops:
                    if kind == OP_INSERT:
                        self.structure.batch_insert(payload)
                    else:
                        self.structure.batch_expire(payload)
                    applied += 1
                    if applied == 1:
                        self._fail("mid-apply", lsn)
            self._next_lsn = lsn + 1
            self._rounds_applied += 1
            self._rounds_since_snapshot += 1
            self._fail("after-apply", lsn)

            if (
                self._snapshots is not None
                and self.config.snapshot_every
                and self._rounds_since_snapshot >= self.config.snapshot_every
            ):
                self._fail("before-snapshot", lsn)
                try:
                    self._snapshot_and_rotate(lsn)
                except OSError as exc:
                    if not is_transient_io(exc):
                        raise
                    # Snapshot/rotation maintenance failing transiently
                    # (even past the retry budget) must not kill the
                    # service: the WAL already holds every round, so the
                    # only cost is a longer replay.  A failed save leaves
                    # the counter >= snapshot_every, so the next round
                    # tries again; a failed rotation waits for the next
                    # checkpoint.
                    get_metrics().counter("service.snapshots_skipped").inc()
                self._fail("after-snapshot", lsn)
        except Exception as exc:
            # Any failure mid-commit (injected or real) leaves the WAL,
            # structure, and counters possibly out of step; the only safe
            # state is dead -- further traffic gets ServiceClosed and the
            # on-disk log stays the source of truth for recovery.
            self._dead = True
            self._error = exc
            if self._wal is not None:
                self._wal.close()
            raise

        wall = time.perf_counter() - t0
        self.flush_wall.append(wall)
        if self.config.recorder is not None:
            # The round is durable; trace capture must not un-commit it.
            try:
                self.config.recorder.record_round(lsn, ops)
            except Exception:
                get_metrics().counter("trace.record_failures").inc()
        m = get_metrics()
        m.counter("service.rounds").inc()
        m.histogram("service.flush_edges").observe(n_edges)
        m.histogram("service.flush_latency_ms").observe(wall * 1e3)
        m.gauge("service.queue_depth").set(self._pending_items)
        return lsn

    def _snapshot_and_rotate(self, lsn: int) -> None:
        """Checkpoint the structure, then rotate/truncate the WAL.

        Runs under the commit path's writer lock.  Retried as a unit
        under the configured :class:`RetryPolicy` (each step is
        idempotent: a re-save overwrites atomically, a re-rotation
        reopens the same segment).
        """
        def once() -> None:
            # A fenced writer (it lost a promotion; a newer-epoch WAL
            # segment exists) may still checkpoint -- recovery rejects
            # its checkpoints by epoch -- but must not prune, rotate,
            # or truncate: that would destroy the shared prefix the
            # winning timeline recovers from.
            fenced = self._wal is not None and self._wal.is_fenced
            with self.cost.phase("service-snapshot"):
                self._snapshots.save(
                    self.structure, lsn, epoch=self._epoch,
                    prune=not fenced,
                )
            self._rounds_since_snapshot = 0
            get_metrics().counter("service.snapshots").inc()
            if fenced:
                get_metrics().counter("service.fenced_retention_skips").inc()
            elif self._wal is not None:
                # Bound WAL growth: rounds up to the *oldest retained*
                # checkpoint can never be replayed again (load_latest
                # falls back at most that far), so seal the current
                # segment and drop wholly dead ones.
                self._wal.rotate()
                oldest = self._snapshots.lsns()[0]
                dropped = self._wal.truncate_before(oldest + 1)
                m = get_metrics()
                m.counter("service.wal_rotations").inc()
                if dropped:
                    m.counter("service.wal_segments_truncated").inc(dropped)

        if self.config.retry is not None:
            self.config.retry.call(once)
        else:
            once()

    def _fail(self, point: str, lsn: int) -> None:
        fn = self.failpoints.get(point)
        if fn is not None and fn(lsn):
            # _commit's except clause marks the service dead and closes
            # the WAL, exactly as for a real (non-injected) failure.
            raise InjectedCrash(f"injected crash at {point!r}, lsn={lsn}")

    # ------------------------------------------------------------------
    # Background thread, queries, lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "StreamService":
        """Start the background apply thread (deadline flushes); returns self."""
        self._check_alive()
        with self._cond:  # two racing start()s must not spawn two loops
            if self._thread is None:
                self._stop = False
                self._thread = threading.Thread(
                    target=self._loop, name="repro-service-apply", daemon=True
                )
                self._thread.start()
        return self

    def _loop(self) -> None:
        interval = self.config.flush_interval or 0.05
        while not self._dead:
            with self._cond:
                if not self._pending:
                    if self._stop:
                        return
                    self._cond.wait(timeout=interval)
                if not self._pending:
                    continue
                age = time.monotonic() - (self._pending_since or 0.0)
                due = (
                    self._stop
                    or self._pending_items >= self.config.flush_edges
                    or age >= interval
                )
                if not due:
                    self._cond.wait(timeout=max(1e-4, interval - age))
                    continue
            try:
                self.flush()
            except (InjectedCrash, ServiceClosed):
                return
            except Exception as exc:  # flush already marked the service dead
                self._dead = True
                if self._error is None:
                    self._error = exc
                return

    def stop(self) -> None:
        """Stop the background thread, flushing what is pending first."""
        with self._cond:
            t = self._thread
            if t is None:
                return
            self._stop = True
            self._cond.notify_all()
        t.join()
        with self._cond:
            self._thread = None
            self._stop = False

    def query(self, fn: Callable[[Any], Any]) -> Any:
        """Run ``fn(structure)`` serialized against the apply loop."""
        with self._writer:
            return fn(self.structure)

    @contextmanager
    def paused(self) -> Iterator[Any]:
        """Hold the apply loop still; yields the structure for reading."""
        with self._writer:
            yield self.structure

    def close(self) -> None:
        """Stop, drain, and release the WAL (idempotent; safe after a crash)."""
        if self._closed:
            return
        self.stop()
        if not self._dead:
            try:
                self.drain()
            finally:
                self._closed = True
        else:
            self._closed = True
        if self._wal is not None:
            self._wal.close()

    def _check_alive(self) -> None:
        if self._dead:
            cause = self._error
            msg = "service crashed; recover with StreamService.open()"
            if cause is not None:
                msg += f" (cause: {cause!r})"
            raise ServiceClosed(msg) from cause
        if self._closed:
            raise ServiceClosed("service is closed")

    def __enter__(self) -> "StreamService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def next_lsn(self) -> int:
        """LSN the next committed round will carry (== durable rounds)."""
        return self._next_lsn

    @property
    def epoch(self) -> int:
        """The fencing epoch stamped into every WAL record this service
        appends (bumped only by promotion; see :mod:`repro.replication`)."""
        return self._epoch

    @property
    def wal_dir(self) -> pathlib.Path | None:
        """Directory of WAL segments followers tail (``None`` in-memory)."""
        return self._wal.directory if self._wal is not None else None

    @property
    def rounds_applied(self) -> int:
        """Rounds applied by *this* process (excludes recovery replay)."""
        return self._rounds_applied

    @property
    def queue_depth(self) -> int:
        """Items currently pending (insert edges + expire ops)."""
        with self._cond:
            return self._pending_items

    @property
    def durable(self) -> bool:
        """Whether the service carries a WAL (was given a ``data_dir``)."""
        return self._wal is not None

    @property
    def alive(self) -> bool:
        """Whether the service still takes traffic (not crashed or closed).

        The router's health probe: :class:`~repro.service.query.QueryService`
        consults this before reading the primary, because a service that
        died mid-commit may hold a structure one half-applied round ahead
        of its durable log.
        """
        return not self._dead and not self._closed

    @property
    def error(self) -> BaseException | None:
        """The exception that killed the service, or ``None`` while alive."""
        return self._error


@contextmanager
def _null_phase() -> Iterator[None]:
    yield None
