"""The storage I/O seam: every durable byte goes through one object.

:mod:`repro.service.wal` and :mod:`repro.service.snapshot` never touch
the filesystem directly for anything that matters to durability --
appends, fsyncs, renames, reads, truncations, unlinks all route through
a :class:`StorageIO` instance.  The default (:data:`REAL_IO`) is a thin
veneer over ``os``/``pathlib``; the point of the seam is that it is
*pluggable*: :class:`repro.chaos.faults.FaultyIO` subclasses it to
inject seeded, deterministic transient errors, torn writes, added
latency, and snapshot bit-flips -- the fault model the resilience
machinery (retry, circuit breaking, degraded serving) is tested
against.  See ``docs/resilience.md``.

The seam deliberately exposes *operations*, not file handles: a fault
injector needs to see "append this line" as one event (so it can tear
it), not a stream of buffered ``write`` calls.
"""

from __future__ import annotations

import os
import pathlib


class StorageIO:
    """Real storage operations (the production default).

    Subclass and override to interpose on any durable operation.  All
    paths are ``pathlib.Path``; file objects are binary-mode handles
    owned by the caller.
    """

    def append(self, f, data: bytes) -> None:
        """Append ``data`` to the open binary file ``f`` and flush it.

        On return the bytes are in the OS cache (crash-of-process
        durable); call :meth:`fsync` for crash-of-machine durability.
        """
        f.write(data)
        f.flush()

    def fsync(self, f) -> None:
        """Force ``f``'s written bytes through the OS cache to disk."""
        os.fsync(f.fileno())

    def fsync_dir(self, directory: str | pathlib.Path) -> None:
        """fsync a directory so entries created/renamed in it are durable.

        Creating a file makes its *bytes* durable only with an fsync of
        the file; the *name* is durable only after the containing
        directory is fsynced too -- a crash in between loses the
        directory entry (the failure mode WAL rotation must not have).
        """
        fd = os.open(str(directory), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def read_bytes(self, path: str | pathlib.Path) -> bytes:
        """The full contents of ``path``."""
        return pathlib.Path(path).read_bytes()

    def read_from(self, path: str | pathlib.Path, offset: int) -> bytes:
        """Bytes of ``path`` from ``offset`` to EOF (tailing reads)."""
        with open(path, "rb") as f:
            f.seek(offset)
            return f.read()

    def write_bytes(self, f, data: bytes) -> None:
        """Write ``data`` to the open binary file ``f`` and flush it."""
        f.write(data)
        f.flush()

    def replace(self, src: str | pathlib.Path, dst: str | pathlib.Path) -> None:
        """Atomically rename ``src`` over ``dst`` (the publish primitive)."""
        os.replace(src, dst)

    def truncate(self, f, size: int) -> None:
        """Truncate the open binary file ``f`` to ``size`` bytes."""
        f.flush()
        f.truncate(size)

    def unlink(self, path: str | pathlib.Path) -> None:
        """Delete ``path`` (callers treat ``OSError`` as best-effort)."""
        os.unlink(path)


#: The shared real-I/O instance used whenever no seam is injected.
REAL_IO = StorageIO()
