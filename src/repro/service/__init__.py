"""Durable streaming service layer over the sliding-window structures.

:class:`StreamService` accepts edge insertions and expirations from
concurrent producers, coalesces them into adaptive micro-batches (size-
and deadline-triggered flushes keep batches large enough to amortize the
per-batch ``lg(1 + n/l)`` factor), applies them behind a single-writer
apply loop, and -- given a data directory -- makes every round durable
via a segmented write-ahead log plus periodic snapshots, recovering
after a crash to a state whose query answers are byte-identical to an
uninterrupted run.  :class:`~repro.service.query.QueryService` adds the
consistent batch-read tier over :mod:`repro.replication` followers.  See
``docs/service.md`` / ``docs/replication.md`` for the architecture and
``python -m repro.service.demo`` for a live walkthrough.
"""

from repro.service.query import (
    QueryService,
    ReadResult,
    StalenessExceeded,
    UnsupportedQuery,
)
from repro.service.resilience import (
    CircuitBreaker,
    RetryPolicy,
    ServiceOverloaded,
    is_transient_io,
)
from repro.service.service import (
    FAILPOINTS,
    Backpressure,
    InjectedCrash,
    ServiceClosed,
    ServiceConfig,
    StreamService,
    apply_ops,
    wal_directory,
)
from repro.service.snapshot import SNAPSHOT_SCHEMA, SnapshotStore
from repro.service.storage import REAL_IO, StorageIO
from repro.service.wal import (
    WAL_SCHEMA,
    SegmentedWal,
    WalCorruption,
    WalCursor,
    WalRecord,
    WalTruncated,
    WriteAheadLog,
    read_wal,
    read_wal_dir,
    wal_summary,
)

__all__ = [
    "StreamService",
    "ServiceConfig",
    "Backpressure",
    "InjectedCrash",
    "ServiceClosed",
    "FAILPOINTS",
    "apply_ops",
    "wal_directory",
    "QueryService",
    "ReadResult",
    "StalenessExceeded",
    "UnsupportedQuery",
    "ServiceOverloaded",
    "RetryPolicy",
    "CircuitBreaker",
    "is_transient_io",
    "StorageIO",
    "REAL_IO",
    "SnapshotStore",
    "SNAPSHOT_SCHEMA",
    "WriteAheadLog",
    "SegmentedWal",
    "WalCursor",
    "WalRecord",
    "WalCorruption",
    "WalTruncated",
    "WAL_SCHEMA",
    "read_wal",
    "read_wal_dir",
    "wal_summary",
]
