"""Durable streaming service layer over the sliding-window structures.

:class:`StreamService` accepts edge insertions and expirations from
concurrent producers, coalesces them into adaptive micro-batches (size-
and deadline-triggered flushes keep batches large enough to amortize the
per-batch ``lg(1 + n/l)`` factor), applies them behind a single-writer
apply loop, and -- given a data directory -- makes every round durable
via a write-ahead log plus periodic snapshots, recovering after a crash
to a state whose query answers are byte-identical to an uninterrupted
run.  See ``docs/service.md`` for the architecture and
``python -m repro.service.demo`` for a live walkthrough.
"""

from repro.service.service import (
    FAILPOINTS,
    Backpressure,
    InjectedCrash,
    ServiceClosed,
    ServiceConfig,
    StreamService,
    apply_ops,
)
from repro.service.snapshot import SNAPSHOT_SCHEMA, SnapshotStore
from repro.service.wal import (
    WAL_SCHEMA,
    WalCorruption,
    WalRecord,
    WriteAheadLog,
    read_wal,
)

__all__ = [
    "StreamService",
    "ServiceConfig",
    "Backpressure",
    "InjectedCrash",
    "ServiceClosed",
    "FAILPOINTS",
    "apply_ops",
    "SnapshotStore",
    "SNAPSHOT_SCHEMA",
    "WriteAheadLog",
    "WalRecord",
    "WalCorruption",
    "WAL_SCHEMA",
    "read_wal",
]
