"""The shard-local window structure: one shard group's replica state.

Each shard group replicates a :class:`ShardMember` -- a thin adapter
over one of the Section 5 sliding-window connectivity structures that
makes it safe to drive from a *global* stream clock:

- insert rows carry their global stream position explicitly as
  ``(u, v, tau)``; the adapter forwards the ``tau`` subsequence to the
  inner structure's ``batch_insert(edges, taus=...)`` (the "structures
  sharing a parent clock" seam of :mod:`repro.sliding_window`), so every
  shard agrees byte-for-byte on edge weights (``-tau``) and ids
  (``tau``) with the unsharded oracle;
- expire ops carry the *effective* global window advance (the delta
  after the coordinator's clock capped it at the global arrival tip).
  The adapter accumulates them into the absolute global window start and
  applies ``expire_until`` -- accumulation keeps the op meaningful under
  the WAL's adjacent-expire coalescing (summed deltas are still the
  right target), and re-applying the target after every insert re-caps a
  shard whose local arrival tip had lagged the global window start.

Because the adapter speaks the ordinary ``batch_insert`` /
``batch_expire`` structure protocol, the *entire* durability and
replication stack -- :class:`~repro.service.service.StreamService` WAL
rounds, snapshots, :class:`~repro.replication.follower.Follower` tailing,
epoch fencing, promotion -- serves a shard group completely unchanged.

Reads exposed here are **shard-local**: ``batch_is_connected`` answers
connectivity *within this shard's subgraph* (sound as a global fast
path: a shard-local path is a global path), and ``shard_forest`` returns
the shard's maintained MSF edge set -- the contraction input the
:class:`~repro.sharding.boundary.BoundaryCoordinator` composes global
answers from.  Deliberately *not* exposed: ``num_components`` and
``window_size``, whose shard-local values are not global answers; the
:class:`~repro.sharding.sharded.ShardedService` answers those at the
coordinator instead.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.sliding_window.connectivity import SWConnectivity, SWConnectivityEager


class ShardMember:
    """One shard group's replicated structure (see module docstring).

    Args:
        inner: the shard-local window structure -- a
            :class:`~repro.sliding_window.connectivity.SWConnectivity`
            (lazy, Theorem 5.1) or
            :class:`~repro.sliding_window.connectivity.SWConnectivityEager`
            (eager, Theorem 5.2) spanning the full ``0..n-1`` vertex
            space (vertices homed elsewhere simply stay isolated here).
    """

    def __init__(self, inner: Any) -> None:
        self.inner = inner
        self.cost = inner.cost
        self.engine = inner.engine
        self._tw_target = 0  # absolute global window start, accumulated

    # -- write protocol (WAL round replay drives these) -----------------

    def batch_insert(self, rows: Sequence[Sequence]) -> None:
        """Apply one round's ``(u, v, tau)`` rows at their global taus."""
        if not rows:
            return
        edges = [(int(r[0]), int(r[1])) for r in rows]
        taus = [int(r[2]) for r in rows]
        self.inner.batch_insert(edges, taus=taus)
        if self._tw_target:
            # The local arrival tip may have lagged the global window
            # start when the last expire arrived (expire_until caps at
            # the local tip); now that the tip advanced, re-cap.
            self.inner.expire_until(self._tw_target)

    def batch_expire(self, delta: int) -> None:
        """Advance the global window start by an effective ``delta``."""
        self._tw_target += int(delta)
        self.inner.expire_until(self._tw_target)

    # -- shard-local reads ----------------------------------------------

    def is_connected(self, u: int, v: int) -> bool:
        """Connectivity within this shard's subgraph (global fast path)."""
        return self.inner.is_connected(u, v)

    def batch_is_connected(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[bool]:
        """Shard-local connectivity off one shared batch-query sweep."""
        return self.inner.batch_is_connected(pairs)

    def heaviest_edge(self, u: int, v: int):
        """Shard-local heaviest ``(weight, eid)`` on the tree path."""
        return self.inner.heaviest_edge(u, v)

    def batch_heaviest_edges(self, pairs: Sequence[tuple[int, int]]):
        """Shard-local path maxima off one shared batch-query sweep."""
        return self.inner.batch_heaviest_edges(pairs)

    def shard_forest(self) -> list[tuple[int, int, float, int]]:
        """The shard's maintained MSF edges as sorted ``(u, v, w, eid)``.

        This is the contraction input: the union of every shard's forest
        contains the global MSF (an edge outside its shard-local MSF is
        the heaviest on a cycle there, hence on the same cycle globally),
        so the coordinator recovers exact global answers from these
        O(window)-size summaries alone.  Sorted by ``eid`` so both
        RC-tree engines serialize the same bytes.
        """
        return sorted(self.inner._msf.msf_edges(), key=lambda e: e[3])

    @property
    def window_start(self) -> int:
        """The accumulated global window start this shard has applied."""
        return self._tw_target


def make_member_factory(
    n: int,
    seed: int = 0x5EED,
    engine: str | None = None,
    eager: bool = True,
) -> Callable[[], ShardMember]:
    """A deterministic :class:`ShardMember` factory for one shard group.

    The primary and every follower of a shard call the same factory, so
    it must be pure; ``eager=False`` serves the lazy Theorem 5.1
    structure (O(1) expiry, no component counting) instead.
    """
    cls = SWConnectivityEager if eager else SWConnectivity

    def factory() -> ShardMember:
        return ShardMember(cls(n, seed=seed, engine=engine))

    return factory
