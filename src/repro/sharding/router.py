"""Deterministic vertex partitioning for the sharded serving tier.

:class:`ShardRouter` maps every vertex of ``0..n-1`` onto one of ``K``
shard groups, and every edge onto a single stable *owner* shard -- the
shard whose group ingests the edge and holds it in its local window
structure.  Two schemes:

- ``"hash"`` (default): a seeded multiplicative mix of the vertex id.
  Spreads any vertex popularity skew evenly across the groups, at the
  price of making almost every locality-free edge a cut edge.
- ``"range"``: contiguous blocks -- vertex ``v`` lands on
  ``v * K // n``.  A stream with spatial locality (the partitionable
  streams of ``benchmarks/bench_shards.py``) stays almost entirely
  shard-local under it.

Edge ownership must not depend on endpoint order or on which replica
evaluates it, so :meth:`owner` assigns ``(u, v)`` to the shard of
``min(u, v)``: deterministic, symmetric, and stable for the lifetime of
the deployment.  A *cut edge* (endpoints on different shards) still has
exactly one owner; the owning shard holds it and the
:class:`~repro.sharding.boundary.BoundaryCoordinator` glues its
components to the neighbour shard's through the shared endpoint.

Routing is pure arithmetic on immutable state -- no locks, and the
loadgen process computes the same mapping the serving tier does (the
``partition_skew`` knob of :mod:`repro.loadgen` relies on exactly that).
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Multiplicative mixers of the splitmix64 finalizer -- the same
#: avalanche constants the RC-tree priority hash uses; stable across
#: processes and Python versions (``hash()`` randomization never enters).
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK = (1 << 64) - 1

SCHEMES = ("hash", "range")


def _mix(x: int) -> int:
    x &= _MASK
    x ^= x >> 30
    x = (x * _MIX1) & _MASK
    x ^= x >> 27
    x = (x * _MIX2) & _MASK
    x ^= x >> 31
    return x


class ShardRouter:
    """Deterministic vertex -> shard and edge -> owner assignment.

    Args:
        n: vertex id space (``0..n-1``), shared by every shard group.
        shards: number of shard groups ``K >= 1``.
        scheme: ``"hash"`` or ``"range"`` (see module docstring).
        seed: perturbs the hash scheme only, so two deployments can
            choose uncorrelated placements; the range scheme ignores it.
    """

    def __init__(
        self,
        n: int,
        shards: int,
        scheme: str = "hash",
        seed: int = 0x5EED,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if n < 1:
            raise ValueError(f"need a nonempty vertex space, got n={n}")
        if scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {scheme!r} (choose from {', '.join(SCHEMES)})"
            )
        self.n = n
        self.shards = shards
        self.scheme = scheme
        self.seed = seed

    # -- vertex and edge placement -------------------------------------

    def shard_of(self, v: int) -> int:
        """The home shard of vertex ``v`` (pure, O(1))."""
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside 0..{self.n - 1}")
        if self.shards == 1:
            return 0
        if self.scheme == "range":
            return min(v * self.shards // self.n, self.shards - 1)
        return _mix(v ^ _mix(self.seed)) % self.shards

    def owner(self, u: int, v: int) -> int:
        """The single shard that ingests and stores edge ``(u, v)``.

        Symmetric (``owner(u, v) == owner(v, u)``) and stable: the shard
        of the smaller endpoint.
        """
        return self.shard_of(min(u, v))

    def is_cut(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` spans two shard groups."""
        return self.shard_of(u) != self.shard_of(v)

    # -- batch helpers --------------------------------------------------

    def split(
        self, rows: Iterable[Sequence]
    ) -> dict[int, list[Sequence]]:
        """Partition edge ``rows`` (``(u, v, ...)``) by owner shard.

        Row order is preserved inside each shard's list -- the global
        arrival order restricted to that shard, which is what keeps the
        per-shard ``tau`` subsequences strictly increasing.
        """
        out: dict[int, list[Sequence]] = {}
        for row in rows:
            out.setdefault(self.owner(row[0], row[1]), []).append(row)
        return out

    def members(self, shard: int) -> list[int]:
        """Every vertex homed on ``shard`` (O(n); loadgen/bench setup)."""
        return [v for v in range(self.n) if self.shard_of(v) == shard]

    def describe(self) -> dict:
        """JSON-ready routing summary (the gateway health endpoint)."""
        return {
            "scheme": self.scheme,
            "shards": self.shards,
            "n": self.n,
            "seed": self.seed,
        }
