"""Horizontal sharding: K replicated shard groups, one global answer.

The serving tier's horizontal scaling story (``docs/sharding.md``):
vertices are partitioned across ``K`` shard groups by a deterministic
:class:`ShardRouter`; each group is a full
:class:`~repro.replication.replicated.ReplicatedService` over a
:class:`ShardMember` window structure driven by the *global* stream
clock; and a :class:`BoundaryCoordinator` composes exact global
``connected`` / ``path_max`` / ``components`` answers from the shards'
forest summaries via the paper's Section 5.7 Gazit-style contraction.
:class:`ShardedService` is the facade tying them together, with
per-shard LSN *vector* tokens for read-your-writes.
"""

from repro.sharding.boundary import BoundaryCoordinator
from repro.sharding.member import ShardMember, make_member_factory
from repro.sharding.router import SCHEMES, ShardRouter
from repro.sharding.sharded import (
    SHARDED_KINDS,
    ShardedService,
    ShardReadResult,
)

__all__ = [
    "BoundaryCoordinator",
    "SCHEMES",
    "SHARDED_KINDS",
    "ShardMember",
    "ShardReadResult",
    "ShardRouter",
    "ShardedService",
    "make_member_factory",
]
