"""The contracted boundary graph: global answers over shard summaries.

The paper's Section 5.7 connected-components construction contracts
Gazit-style: solve locally, then solve a *small* graph whose vertices
are the local solutions.  :class:`BoundaryCoordinator` is that idea
applied across shard groups.  Each shard maintains the MSF of its own
subgraph (the edges it owns); the coordinator caches those forests and
composes three global read kinds from them:

- **Contracted connectivity.**  One super-vertex per shard-local
  component that is incident to a *boundary vertex* (a vertex touched by
  forest edges in two or more shards -- the endpoint a cut edge shares
  with its neighbour shard); for every boundary vertex, star edges unite
  its super-vertices across shards.  Union-find over this contracted
  graph -- whose size is O(#components + #boundary vertices), not
  O(n + window) -- answers ``is_connected`` and ``components`` exactly:
  a global path exists iff the contracted super-vertices connect.
- **The boundary MSF.**  The union of the shard forests contains the
  global MSF (an edge evicted from a shard-local MSF is the heaviest on
  a cycle there, hence on that same cycle globally), and weights
  ``(w, eid)`` are globally distinct, so Kruskal over the cached
  forests -- O(window) input, not the whole stream -- rebuilds the
  *identical* forest the unsharded structure maintains.  ``path_max``
  walks it; the lazy structure's ``is_connected`` applies the
  recent-edge lemma (oldest ``tau`` on the path vs. the global window
  start) to the same walk.

**Incremental refresh.**  Per-shard state (forest cache, component
labels) recomputes only when that shard's version -- the LSN its fetched
forest reflects -- advances, from the delta against the cached forest;
the contracted graph and boundary MSF rebuild lazily on the next read
after any shard moved.  A quiet shard costs nothing on refresh no matter
how busy its neighbours are.

The coordinator holds no structure locks and never sees raw stream
edges: its inputs are exactly the ``("forest",)`` summaries the
per-shard :class:`~repro.service.query.QueryService` reads return, so
every consistency policy of the read tier (tokens, bounded staleness,
catch-up) applies to the contraction inputs unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.obs.metrics import get_metrics
from repro.runtime.cost import CostModel


class _UnionFind:
    """Small dict-keyed union-find (path halving + union by size)."""

    __slots__ = ("parent", "size")

    def __init__(self) -> None:
        self.parent: dict = {}
        self.size: dict = {}

    def find(self, x):
        parent = self.parent
        if x not in parent:
            parent[x] = x
            self.size[x] = 1
            return x
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


class BoundaryCoordinator:
    """Composes global reads from cached per-shard forest summaries.

    Args:
        n: the global vertex space ``0..n-1``.
        shards: number of shard groups feeding summaries.
        cost: shared :class:`CostModel`; refreshes are charged to the
            ``boundary-refresh`` phase on it.
    """

    def __init__(
        self, n: int, shards: int, cost: CostModel | None = None
    ) -> None:
        self.n = n
        self.shards = shards
        self.cost = cost if cost is not None else CostModel()
        #: shard -> {eid: (u, v, w)} -- the cached forest summaries.
        self._forests: dict[int, dict[int, tuple[int, int, float]]] = {
            k: {} for k in range(shards)
        }
        #: shard -> the LSN its cached forest reflects (-1: never fetched).
        self._versions: dict[int, int] = {k: -1 for k in range(shards)}
        #: shard -> {vertex: local component label} over touched vertices.
        self._labels: dict[int, dict[int, int]] = {k: {} for k in range(shards)}
        self._dirty = True
        # Rebuilt lazily from the caches above:
        self._cuf: _UnionFind | None = None  # contracted-graph classes
        self._node_of: dict[int, tuple] = {}  # vertex -> one contracted node
        self._touched = 0  # vertices appearing in any shard's labels
        self._adj: dict[int, list[tuple[int, float, int]]] = {}  # boundary MSF
        self._msf_edges = 0

    # -- refresh --------------------------------------------------------

    def version(self, shard: int) -> int:
        """The LSN ``shard``'s cached summary reflects (-1: none yet)."""
        return self._versions[shard]

    def update(
        self, shard: int, rows: Iterable[Sequence], version: int
    ) -> int:
        """Install ``shard``'s forest summary; returns the edge delta.

        ``rows`` is the shard's ``("forest",)`` answer --
        ``(u, v, w, eid)`` quadruples -- and ``version`` the LSN it
        reflects.  Only the changed shard's labels recompute; the global
        contraction is marked stale and rebuilds on the next read.
        """
        m = get_metrics()
        fresh = {int(r[3]): (int(r[0]), int(r[1]), float(r[2])) for r in rows}
        cached = self._forests[shard]
        delta = sum(1 for eid in fresh if eid not in cached) + sum(
            1 for eid in cached if eid not in fresh
        )
        with self.cost.phase("boundary-refresh", items=len(fresh)):
            self._versions[shard] = version
            if delta:
                self._forests[shard] = fresh
                self._labels[shard] = self._component_labels(fresh)
                self._dirty = True
        m.counter("shard.boundary_refreshes").inc()
        m.counter("shard.boundary_delta_edges").inc(delta)
        return delta

    def invalidate(self, shard: int) -> None:
        """Forget ``shard``'s version (failover may rewind its LSNs).

        The cached forest and labels stay -- they are usually still
        right -- but the next read re-fetches and re-verifies them, which
        the version check alone would skip whenever promotion discarded
        rounds and left the new durable tip *behind* the cached version.
        """
        self._versions[shard] = -1

    @staticmethod
    def _component_labels(
        forest: dict[int, tuple[int, int, float]]
    ) -> dict[int, int]:
        """``{vertex: component label}`` over one shard's forest edges.

        The label is the smallest vertex of the component -- a pure
        function of the edge set, so both RC-tree engines and every
        replica agree on it.
        """
        uf = _UnionFind()
        for u, v, _ in forest.values():
            uf.union(u, v)
        labels: dict[int, int] = {}
        rep_min: dict = {}
        for u, v, _ in forest.values():
            for x in (u, v):
                if x not in labels:
                    r = uf.find(x)
                    labels[x] = r
                    rep_min[r] = min(rep_min.get(r, x), x)
        return {x: rep_min[labels[x]] for x in labels}

    def _rebuild(self) -> None:
        """Recompute the contracted graph and the boundary MSF."""
        m = get_metrics()
        total = sum(len(f) for f in self._forests.values())
        with self.cost.phase("boundary-refresh", items=total):
            # Contracted connectivity: super-vertex per (shard, label),
            # star edges through every vertex shards share.
            cuf = _UnionFind()
            node_of: dict[int, tuple] = {}
            shared = 0
            for shard, labels in self._labels.items():
                for vertex, label in labels.items():
                    node = (shard, label)
                    cuf.find(node)
                    prev = node_of.get(vertex)
                    if prev is None:
                        node_of[vertex] = node
                    else:
                        shared += 1
                        cuf.union(prev, node)
            # The boundary MSF: Kruskal over the union of shard forests.
            # (w, eid) pairs are globally distinct, so this is the unique
            # global MSF -- identical to the unsharded structure's.
            rows = sorted(
                (w, eid, u, v)
                for forest in self._forests.values()
                for eid, (u, v, w) in forest.items()
            )
            muf = _UnionFind()
            adj: dict[int, list[tuple[int, float, int]]] = {}
            kept = 0
            for w, eid, u, v in rows:
                if muf.union(u, v):
                    adj.setdefault(u, []).append((v, w, eid))
                    adj.setdefault(v, []).append((u, w, eid))
                    kept += 1
            self._cuf = cuf
            self._node_of = node_of
            self._touched = len(node_of)
            self._adj = adj
            self._msf_edges = kept
            self._dirty = False
        m.counter("shard.boundary_rebuilds").inc()
        m.gauge("shard.boundary_nodes").set(len(cuf.parent))
        m.gauge("shard.boundary_shared_vertices").set(shared)
        m.gauge("shard.boundary_msf_edges").set(kept)

    def _fresh(self) -> None:
        if self._dirty:
            self._rebuild()

    # -- global reads ---------------------------------------------------

    def connected(self, u: int, v: int) -> bool:
        """Global connectivity over the contracted graph (eager shards)."""
        if u == v:
            return True
        self._fresh()
        nu = self._node_of.get(u)
        nv = self._node_of.get(v)
        if nu is None or nv is None:
            return False  # an untouched vertex is its own component
        assert self._cuf is not None
        return self._cuf.find(nu) == self._cuf.find(nv)

    def components(self) -> int:
        """Global component count: contracted classes + isolated vertices."""
        self._fresh()
        assert self._cuf is not None
        classes = {self._cuf.find(node) for node in self._cuf.parent}
        return len(classes) + (self.n - self._touched)

    def path_max(self, u: int, v: int) -> tuple[float, int] | None:
        """Heaviest ``(weight, eid)`` on the boundary-MSF path ``u--v``.

        Exactly the unsharded structure's ``heaviest_edge`` answer:
        ``None`` for ``u == v`` or a disconnected pair.  O(component)
        via a breadth-first walk of the cached forest -- the coordinator
        trades the per-shard structures' O(lg n) path queries for
        zero-copy composition over the O(window)-size summary.
        """
        if u == v:
            return None
        self._fresh()
        if u not in self._adj or v not in self._adj:
            return None
        parent: dict[int, tuple[int, float, int]] = {u: (u, 0.0, -1)}
        frontier = deque([u])
        while frontier:
            x = frontier.popleft()
            if x == v:
                break
            for y, w, eid in self._adj[x]:
                if y not in parent:
                    parent[y] = (x, w, eid)
                    frontier.append(y)
        if v not in parent:
            return None
        best: tuple[float, int] | None = None
        x = v
        while x != u:
            x, w, eid = parent[x]
            if best is None or (w, eid) > best:
                best = (w, eid)
        return best

    def connected_lazy(self, u: int, v: int, window_start: int) -> bool:
        """Lazy-structure connectivity: the recent-edge lemma over the
        boundary MSF -- the path's oldest ``tau`` (its heaviest edge's
        ``eid``) must be unexpired at the global ``window_start``."""
        if u == v:
            return True
        h = self.path_max(u, v)
        return h is not None and h[1] >= window_start

    def describe(self) -> dict:
        """JSON-ready coordinator state summary (health endpoint)."""
        self._fresh()
        assert self._cuf is not None
        return {
            "nodes": len(self._cuf.parent),
            "msf_edges": self._msf_edges,
            "touched_vertices": self._touched,
            "versions": [self._versions[k] for k in range(self.shards)],
        }
