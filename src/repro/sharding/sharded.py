"""K shard groups behind one write/read facade.

:class:`ShardedService` turns the single-primary serving tier into ``K``
horizontally partitioned shard groups.  Each group is a full
:class:`~repro.replication.replicated.ReplicatedService` -- its own WAL
directory, snapshots, epoch fencing, followers, and promotion -- over a
:class:`~repro.sharding.member.ShardMember` structure; the replication
stack is reused completely unchanged.

**Writes.**  The facade owns the *global* stream clock.  One ``write``
assigns global ``tau`` positions to its edges, routes each edge to its
owner shard (:class:`~repro.sharding.router.ShardRouter`), and commits
one WAL round per touched shard carrying the ``(u, v, tau)`` rows plus
the round's *effective* window advance (the expire delta after the
global clock capped it at the arrival tip -- so the sum of the expire
payloads every shard ever sees is exactly the global window start).  The
returned token is a **vector**: the committed LSN per shard, one
read-your-writes token per group.

**Reads.**  ``query`` composes global answers from shard-local state:

- ``connected`` pairs homed on one shard first try that shard's
  batched fast path (a shard-local path is a global path -- and a shard
  whose window the global clock emptied answers ``False``, keeping the
  one-sided check sound on lagging shards);
- everything else -- cross-shard or locally-disconnected ``connected``,
  ``path_max``, ``components`` -- goes through the
  :class:`~repro.sharding.boundary.BoundaryCoordinator`: per-shard
  ``("forest",)`` summaries are fetched through each group's
  :class:`~repro.service.query.QueryService` (so lag policies, circuit
  breakers, and follower routing all apply), cached by LSN version, and
  contracted into a boundary graph plus the exact global MSF.

Reads refresh a shard's summary only when its cached version is behind
that group's durable tip: a quiet shard costs nothing no matter how busy
its neighbours are.

**Failover.**  :meth:`promote` fails one shard group over exactly as the
unsharded tier does; the coordinator's cached summary for that shard is
invalidated, because promotion may have discarded rounds (the new tip
can be *behind* the cached version).
"""

from __future__ import annotations

import pathlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.obs.metrics import get_metrics
from repro.replication.replicated import ReplicatedService
from repro.runtime.cost import CostModel
from repro.service.query import QueryService, UnsupportedQuery
from repro.service.resilience import RetryPolicy
from repro.service.service import ServiceConfig
from repro.service.wal import OP_EXPIRE, OP_INSERT
from repro.sharding.boundary import BoundaryCoordinator
from repro.sharding.member import ShardMember
from repro.sharding.router import ShardRouter
from repro.sliding_window.base import WindowClock


@dataclass(frozen=True)
class ShardReadResult:
    """One answered batch, with its per-shard consistency points.

    Attributes:
        answers: per-query answers, aligned with the submitted batch.
        vector: per-shard LSNs the answer reflects -- shard ``k``'s entry
            is the rounds replayed by whatever served its part (forest
            summary or fast-path read); ``-1`` for a shard no part of
            this batch needed.
        replica: always ``"sharded"`` (the facade composes replicas).
        stale: True when any component read was served degraded.
    """

    answers: list
    vector: list[int]
    replica: str = "sharded"
    stale: bool = False


#: Query kinds the sharded tier can compose globally.  The remaining
#: kinds of :data:`repro.service.query._SCALAR_QUERIES` (certificates,
#: cycle/bipartite monitors, ...) are properties of the whole edge set
#: that shard-local summaries cannot reconstruct; they raise
#: :class:`UnsupportedQuery` exactly like a structure without the method.
SHARDED_KINDS = ("connected", "path_max", "components", "window_size")


class ShardedService:
    """K replicated shard groups behind one write/read facade.

    Args:
        factory: builds one empty :class:`ShardMember` (see
            :func:`~repro.sharding.member.make_member_factory`); every
            shard's primary and followers call the same factory.
        data_dir: parent storage directory; shard ``k`` owns
            ``data_dir/shard<k>`` (WAL + snapshots).
        router: the vertex partitioning (``router.shards`` groups over
            ``0..router.n-1``).
        config: per-shard primary :class:`ServiceConfig` (shared).
        followers: replicas attached to *each* shard group.
        follower_retry: optional per-follower transient-fault retry.
        query: keyword options for each group's :class:`QueryService`
            (e.g. ``{"on_lag": "wait"}``); default policies otherwise.
        parallel: fan writes out to touched shards on a thread pool
            instead of sequentially.  Same WAL bytes either way (each
            shard's round is independent); it only overlaps the fsyncs.
        cost: shared :class:`CostModel`; routing is charged to the
            ``shard-route`` phase, contraction to ``boundary-refresh``.
    """

    #: The gateway (and anything else duck-typing the serving tier)
    #: branches on this instead of importing the class.
    is_sharded = True

    def __init__(
        self,
        factory: Callable[[], ShardMember],
        data_dir: str | pathlib.Path,
        router: ShardRouter,
        config: ServiceConfig | None = None,
        followers: int = 0,
        follower_retry: RetryPolicy | None = None,
        query: dict | None = None,
        parallel: bool = False,
        cost: CostModel | None = None,
    ) -> None:
        self.router = router
        self.shards = router.shards
        self.n = router.n
        self.cost = cost if cost is not None else CostModel()
        self.clock = WindowClock()
        self.data_dir = pathlib.Path(data_dir)
        self.groups: list[ReplicatedService] = [
            ReplicatedService(
                factory,
                self.data_dir / f"shard{k}",
                config,
                followers=followers,
                follower_retry=follower_retry,
            )
            for k in range(self.shards)
        ]
        self._queries: list[QueryService] = [
            QueryService(g, **(query or {})) for g in self.groups
        ]
        self.coordinator = BoundaryCoordinator(
            self.n, self.shards, cost=self.cost
        )
        # The structure class is shared by construction (one factory), so
        # probe shard 0: the lazy Theorem 5.1 member has no component
        # counter, and the sharded tier must refuse ``components`` the
        # same way the unsharded QueryService does.
        inner = self.groups[0].primary.structure.inner
        self._eager = hasattr(inner, "num_components")
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self.shards, thread_name_prefix="repro-shard"
            )
            if parallel and self.shards > 1
            else None
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write(
        self, edges: Sequence[Sequence] = (), expire: int = 0
    ) -> list[int]:
        """Commit one global round; returns the per-shard LSN vector.

        Every edge gets its global ``tau``, lands on its owner shard's
        WAL, and -- when the round expires -- every shard's round also
        carries the effective global window advance.  The vector entry
        for an untouched shard is its current newest committed LSN, so
        the whole vector is always a valid read-your-writes token.
        """
        m = get_metrics()
        with self.cost.phase("shard-route", items=len(edges)):
            taus = self.clock.assign(len(edges))
            rows = [
                (int(u), int(v), tau) for (u, v), tau in zip(edges, taus)
            ]
            cross = sum(1 for u, v, _ in rows if self.router.is_cut(u, v))
            split = self.router.split(rows)
        old_tw = self.clock.tw
        if expire:
            self.clock.expire(expire)
        eff = self.clock.tw - old_tw
        per_shard: list = [None] * self.shards
        for k in range(self.shards):
            ops = []
            if k in split:
                ops.append((OP_INSERT, split[k]))
            if eff:
                ops.append((OP_EXPIRE, eff))
            per_shard[k] = ops
        touched = [k for k in range(self.shards) if per_shard[k]]
        if self._pool is not None and len(touched) > 1:
            futures = {
                k: self._pool.submit(self.groups[k].write_ops, per_shard[k])
                for k in touched
            }
            lsns = {k: fut.result() for k, fut in futures.items()}
        else:
            lsns = {k: self.groups[k].write_ops(per_shard[k]) for k in touched}
        vector = [
            lsns.get(k, self.groups[k].primary.next_lsn - 1)
            for k in range(self.shards)
        ]
        m.counter("shard.writes").inc()
        m.counter("shard.write_edges").inc(len(rows))
        m.counter("shard.cross_edges").inc(cross)
        m.histogram("shard.fanout").observe(len(touched))
        return vector

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def _check_vector(self, at_least: Sequence[int] | None) -> list[int]:
        if at_least is None:
            return [-1] * self.shards
        vec = [int(x) for x in at_least]
        if len(vec) != self.shards:
            raise ValueError(
                f"token vector has {len(vec)} entries for "
                f"{self.shards} shards"
            )
        return vec

    def _refresh(self, shard: int, token: int) -> int:
        """Bring ``shard``'s cached forest summary up to its durable tip.

        Returns the LSN the installed summary reflects.  The read goes
        through the group's :class:`QueryService` with a token demanding
        the durable tip (so it lands on a caught-up replica -- or the
        primary), which is also what makes the cache effective: once the
        version equals the tip, a quiet shard skips this entirely.
        """
        tip = self.groups[shard].primary.next_lsn
        if self.coordinator.version(shard) >= max(tip, token + 1):
            return self.coordinator.version(shard)
        res = self._queries[shard].run(
            [("forest",)], at_least=max(token, tip - 1)
        )
        self.coordinator.update(shard, res.answers[0], res.lsn)
        return res.lsn

    def query(
        self,
        queries: Sequence[tuple],
        at_least: Sequence[int] | None = None,
        max_staleness: int | None = None,
    ) -> ShardReadResult:
        """Answer one batch globally; ``at_least`` is a length-K vector.

        Supported kinds: ``connected``, ``path_max``, ``components``,
        ``window_size`` (see :data:`SHARDED_KINDS`).  ``max_staleness``
        bounds every component read the same way it bounds an unsharded
        one.
        """
        m = get_metrics()
        queries = [tuple(q) for q in queries]
        tokens = self._check_vector(at_least)
        if max_staleness is not None:
            if max_staleness < 0:
                raise ValueError("max_staleness must be >= 0")
            tokens = [
                max(t, self.groups[k].primary.next_lsn - max_staleness - 1)
                for k, t in enumerate(tokens)
            ]
        answers: list = [None] * len(queries)
        served: dict[int, int] = {}
        fast: dict[int, list[tuple[int, int, int]]] = {}
        deferred: list[tuple[int, tuple]] = []
        for i, q in enumerate(queries):
            kind = q[0]
            if kind == "window_size":
                # The facade owns the global clock; identical arithmetic
                # to the unsharded structure's property.
                answers[i] = self.clock.window_size
            elif kind == "components":
                if not self._eager:
                    raise UnsupportedQuery(
                        "the lazy structure does not track components"
                    )
                deferred.append((i, q))
            elif kind in ("connected", "path_max"):
                u, v = int(q[1]), int(q[2])
                if kind == "connected" and not self.router.is_cut(u, v):
                    fast.setdefault(self.router.shard_of(u), []).append(
                        (i, u, v)
                    )
                else:
                    deferred.append((i, (kind, u, v)))
            else:
                raise UnsupportedQuery(
                    f"sharded reads cannot answer {kind!r} "
                    f"(supported: {', '.join(SHARDED_KINDS)})"
                )
        # Fast path: same-home ``connected`` pairs ride one shard-local
        # batched sweep each.  True is final (a local path is a global
        # path); False defers to the coordinator -- the pair may connect
        # through other shards.
        stale = False
        for shard, items in fast.items():
            tip = self.groups[shard].primary.next_lsn
            res = self._queries[shard].run(
                [("connected", u, v) for _, u, v in items],
                at_least=max(tokens[shard], tip - 1),
            )
            served[shard] = max(served.get(shard, -1), res.lsn)
            stale = stale or res.stale
            for (i, u, v), ans in zip(items, res.answers):
                if ans:
                    answers[i] = True
                    m.counter("shard.fastpath_hits").inc()
                else:
                    deferred.append((i, ("connected", u, v)))
                    m.counter("shard.fastpath_misses").inc()
        if deferred:
            m.counter("shard.global_queries").inc(len(deferred))
            for k in range(self.shards):
                served[k] = max(served.get(k, -1), self._refresh(k, tokens[k]))
            coord = self.coordinator
            for i, q in deferred:
                if q[0] == "components":
                    answers[i] = coord.components()
                elif self._eager:
                    answers[i] = coord.connected(q[1], q[2]) if (
                        q[0] == "connected"
                    ) else coord.path_max(q[1], q[2])
                elif q[0] == "connected":
                    answers[i] = coord.connected_lazy(
                        q[1], q[2], self.clock.tw
                    )
                else:
                    answers[i] = coord.path_max(q[1], q[2])
        vector = [served.get(k, -1) for k in range(self.shards)]
        m.counter("query.batches").inc()
        m.counter("query.reads").inc(len(queries))
        return ShardReadResult(
            answers=answers, vector=vector, stale=stale
        )

    # ------------------------------------------------------------------
    # Topology and failover
    # ------------------------------------------------------------------

    @property
    def epochs(self) -> list[int]:
        """Per-shard fencing epochs (the write-response metadata)."""
        return [g.epoch for g in self.groups]

    def query_service(self, shard: int) -> QueryService:
        """The read router of one shard group (tests, gateway health)."""
        return self._queries[shard]

    def promote(
        self, shard: int, follower: Any | None = None, catch_up: bool = True
    ):
        """Fail one shard group over; returns the fenced zombie primary.

        ``follower`` defaults to the group's most caught-up live replica.
        The coordinator's cached summary for the shard is invalidated:
        promotion without catch-up discards rounds, so the new durable
        tip may be *behind* the cached version and the version check
        alone would keep serving the stale forest forever.
        """
        group = self.groups[shard]
        if follower is None:
            live = [f for f in group.followers if f.alive]
            if not live:
                raise ValueError(f"shard {shard} has no live follower")
            follower = max(live, key=lambda f: f.replayed_lsn)
        zombie = group.promote(follower, catch_up=catch_up)
        self.coordinator.invalidate(shard)
        get_metrics().counter("shard.promotions").inc()
        return zombie

    # ------------------------------------------------------------------
    # Replication plumbing (fans out to every group)
    # ------------------------------------------------------------------

    def start_replication(
        self, interval: float = 0.002, max_records: int | None = None
    ) -> None:
        """Start background tailing threads on every shard group."""
        for g in self.groups:
            g.start_replication(interval, max_records)

    def stop_replication(self) -> None:
        """Stop every group's tailing threads."""
        for g in self.groups:
            g.stop_replication()

    def poll(self) -> dict[int, dict[int, int]]:
        """Catch every group's followers up; ``{shard: {fid: lsn}}``."""
        return {k: g.poll() for k, g in enumerate(self.groups)}

    def lag(self) -> dict[int, dict[int, int]]:
        """Per-shard follower lag maps."""
        return {k: g.lag() for k, g in enumerate(self.groups)}

    def describe(self) -> dict:
        """JSON-ready fleet summary (the gateway health endpoint)."""
        return {
            "router": self.router.describe(),
            "boundary": self.coordinator.describe(),
            "clock": {"t": self.clock.t, "tw": self.clock.tw},
            "groups": [
                {
                    "shard": k,
                    "epoch": g.epoch,
                    "next_lsn": g.primary.next_lsn,
                    "followers": [
                        {
                            "fid": f.fid,
                            "alive": f.alive,
                            "replayed_lsn": f.replayed_lsn,
                        }
                        for f in g.followers
                    ],
                }
                for k, g in enumerate(self.groups)
            ],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop replication and close every shard primary (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for g in self.groups:
            g.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
