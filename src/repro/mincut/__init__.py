"""Global minimum cut (Stoer-Wagner), used to test k-connectivity of
certificates (Section 5.4: "the certificate generated can be used to test
k-connectivity via a parallel global min-cut algorithm")."""

from repro.mincut.stoer_wagner import global_min_cut

__all__ = ["global_min_cut"]
