"""Stoer-Wagner global minimum cut on a dense numpy adjacency matrix.

The paper invokes a parallel global min-cut [27, 28] only on k-certificates,
which have ``O(k n)`` edges, so an ``O(n^3)``-ish dense implementation with
numpy-vectorized minimum-cut-phase inner loops is entirely adequate for the
reproduction; we charge the cost of the parallel algorithm it stands in for
(``O(m lg m + n lg^4 n)`` work, polylog span [28], see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.runtime.cost import CostModel, log2ceil


def global_min_cut(
    n: int,
    edges: Sequence[tuple[int, int]] | Sequence[tuple[int, int, float]],
    cost: CostModel | None = None,
) -> float:
    """Weight of a global minimum edge cut of the multigraph.

    Unweighted edges (pairs) count 1 each.  Returns ``inf`` for ``n <= 1``
    and ``0.0`` for disconnected graphs.  Parallel edges accumulate.
    """
    if n <= 1:
        return float("inf")
    w = np.zeros((n, n), dtype=np.float64)
    m = 0
    for row in edges:
        if len(row) == 2:
            u, v = row
            c = 1.0
        else:
            u, v, c = row
        if u == v:
            continue
        w[u, v] += c
        w[v, u] += c
        m += 1
    if cost is not None:
        cost.add(
            work=m * log2ceil(max(m, 2)) + n * log2ceil(max(n, 2)) ** 4,
            span=log2ceil(max(n, 2)) ** 3,
        )

    active = np.ones(n, dtype=bool)
    num_active = n
    best = float("inf")
    while num_active > 1:
        # Minimum cut phase: maximum adjacency ordering from an arbitrary
        # start; the last two vertices give a cut-of-the-phase.
        idx = np.nonzero(active)[0]
        a = int(idx[0])
        in_a = ~active.copy()  # inactive vertices never selectable
        in_a[a] = True
        weights = w[a].copy()
        s = t = a
        for _ in range(num_active - 1):
            masked = np.where(in_a, -np.inf, weights)
            nxt = int(np.argmax(masked))
            s, t = t, nxt
            in_a[nxt] = True
            weights += w[nxt]
        cut_of_phase = float(w[t, active].sum())
        best = min(best, cut_of_phase)
        # Merge t into s.
        w[s, :] += w[t, :]
        w[:, s] += w[:, t]
        w[s, s] = 0.0
        w[t, :] = 0.0
        w[:, t] = 0.0
        active[t] = False
        num_active -= 1
    return best


def is_k_connected(
    n: int,
    edges: Sequence[tuple[int, int]],
    k: int,
    cost: CostModel | None = None,
) -> bool:
    """Whether the graph is k-edge-connected (global min cut >= k)."""
    if n <= 1:
        return True
    return global_min_cut(n, edges, cost=cost) >= k
