"""Boruvka's MSF algorithm, fully vectorized.

Each round every component hooks on its (weight, eid)-minimal incident edge
and components are contracted by pointer jumping -- the direct PRAM
formulation.  ``O(m)`` work and ``O(lg n)`` span per round, ``O(lg n)``
rounds, hence ``O(m lg n)`` work and ``O(lg^2 n)`` span; it is also the
contraction step inside KKT.
"""

from __future__ import annotations

import numpy as np

from repro.msf.graph import EdgeArray
from repro.runtime.cost import CostModel, log2ceil


def _pointer_jump(parent: np.ndarray) -> np.ndarray:
    """Contract a forest of hooks to its roots (parallel pointer jumping)."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def boruvka_msf(
    edges: EdgeArray,
    cost: CostModel | None = None,
    max_rounds: int | None = None,
) -> np.ndarray:
    """Return positions (into ``edges``) of the unique MSF.

    If ``max_rounds`` is given, stop early and return the positions selected
    so far (used by KKT, which interleaves Boruvka rounds with sampling);
    callers can recover the partially contracted graph via
    :func:`boruvka_contract`.
    """
    sel, _, _ = boruvka_contract(edges, cost=cost, max_rounds=max_rounds)
    sel_arr = np.asarray(sorted(sel), dtype=np.int64)
    return sel_arr


def boruvka_contract(
    edges: EdgeArray,
    cost: CostModel | None = None,
    max_rounds: int | None = None,
) -> tuple[list[int], np.ndarray, np.ndarray]:
    """Run Boruvka rounds; return (selected positions, comp labels, live mask).

    ``comp`` maps each vertex to its component representative after the
    executed rounds; ``live`` flags edge positions whose endpoints are still
    in different components.
    """
    n, m = edges.n, edges.m
    comp = np.arange(n, dtype=np.int64)
    if m == 0:
        return [], comp, np.zeros(0, dtype=bool)

    # Global (weight, eid) ranks: computed once, reused every round so the
    # per-round component-minimum is a pure O(m) scatter-min.
    order = edges.weight_order()
    rank_of_pos = np.empty(m, dtype=np.int64)
    rank_of_pos[order] = np.arange(m, dtype=np.int64)
    pos_of_rank = order

    live = edges.u != edges.v
    selected: list[int] = []
    rounds = 0
    lg_n = log2ceil(max(n, 2))

    while True:
        if max_rounds is not None and rounds >= max_rounds:
            break
        idx = np.nonzero(live)[0]
        if idx.size == 0:
            break
        cu = comp[edges.u[idx]]
        cv = comp[edges.v[idx]]
        cross = cu != cv
        if not np.any(cross):
            live[idx] = False
            break
        idx = idx[cross]
        cu, cv = cu[cross], cv[cross]
        r = rank_of_pos[idx]

        if cost is not None:
            # One round: O(live edges) work, O(lg n) span (scatter-min +
            # pointer jumping).
            cost.add(work=int(idx.size) + n, span=lg_n)

        sentinel = np.int64(m)
        best = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(best, cu, r)
        np.minimum.at(best, cv, r)

        comps = np.unique(np.concatenate([cu, cv]))
        hook = np.arange(n, dtype=np.int64)
        chosen_rank = best[comps]
        chosen_pos = pos_of_rank[chosen_rank]
        other = np.where(
            comp[edges.u[chosen_pos]] == comps,
            comp[edges.v[chosen_pos]],
            comp[edges.u[chosen_pos]],
        )
        hook[comps] = other
        # Break mutual hooks (2-cycles): the smaller id becomes the root.
        mutual = (hook[hook] == np.arange(n)) & (np.arange(n) < hook)
        hook[mutual] = np.nonzero(mutual)[0]
        roots = _pointer_jump(hook)
        comp = roots[comp]

        selected.extend(int(p) for p in np.unique(chosen_pos))
        live_now = comp[edges.u[idx]] != comp[edges.v[idx]]
        dead = idx[~live_now]
        live[dead] = False
        rounds += 1

    return selected, comp, live
