"""MSF verification: batch path-maximum queries via the Kruskal tree.

The KKT filtering step must discard every edge that is *F-heavy* -- heavier
than the heaviest edge on the path between its endpoints in a sampled forest
F.  We answer all queries offline with the classic *Kruskal tree* (also
called the Boruvka/minimax tree): insert F's edges in increasing weight
order, creating one internal node per union; the heaviest edge on the path
between two leaves is then the edge at their LCA.  LCAs are answered with an
Euler tour and a numpy sparse table, so a batch of q queries over an
n-vertex forest costs ``O((n + q) lg n)`` work.

The oracle doubles as an independent correctness check for compressed path
trees in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.msf.graph import EdgeArray
from repro.runtime.cost import CostModel, log2ceil


class KruskalTreeOracle:
    """Offline heaviest-edge-on-path oracle for a static forest."""

    def __init__(self, forest: EdgeArray, cost: CostModel | None = None) -> None:
        n = forest.n
        if cost is not None:
            # Charged at the Komlos linear-work verification bound that the
            # Cole-Klein-Tarjan analysis assumes; our realisation pays an
            # extra lg factor in wall-clock (sparse-table LCA), which only
            # affects constants of the simulation, not measured structure
            # sizes (see DESIGN.md substitution 2).
            cost.add(work=n + forest.m, span=log2ceil(max(n, 2)))
        order = forest.weight_order()
        total = n + order.shape[0]
        # Node layout: 0..n-1 are vertex leaves; internal nodes follow in
        # edge-insertion order.  Internal node k stores the forest edge that
        # created it.
        left = np.full(total, -1, dtype=np.int64)
        right = np.full(total, -1, dtype=np.int64)
        node_w = np.full(total, -np.inf, dtype=np.float64)
        node_eid = np.full(total, -1, dtype=np.int64)
        node_pos = np.full(total, -1, dtype=np.int64)

        parent = np.arange(total, dtype=np.int64)  # union-find over nodes

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, int(parent[x])
            return root

        nxt = n
        for pos in order:
            a = find(int(forest.u[pos]))
            b = find(int(forest.v[pos]))
            if a == b:
                raise ValueError("input edges do not form a forest")
            left[nxt], right[nxt] = a, b
            node_w[nxt] = float(forest.w[pos])
            node_eid[nxt] = int(forest.eid[pos])
            node_pos[nxt] = int(pos)
            parent[a] = parent[b] = nxt
            nxt += 1

        self.n = n
        self._node_w = node_w
        self._node_eid = node_eid
        self._node_pos = node_pos
        # Component roots: per leaf, its topmost ancestor.
        self._root = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
        self._build_euler(total, left, right)

    def _build_euler(self, total: int, left: np.ndarray, right: np.ndarray) -> None:
        first = np.full(total, -1, dtype=np.int64)
        euler: list[int] = []
        depth_list: list[int] = []
        is_root = np.ones(total, dtype=bool)
        for k in range(total):
            for c in (left[k], right[k]):
                if c >= 0:
                    is_root[c] = False
        for r in np.nonzero(is_root)[0]:
            # Iterative Euler tour: (node, depth, child-phase).
            stack: list[tuple[int, int, int]] = [(int(r), 0, 0)]
            while stack:
                node, d, phase = stack.pop()
                if first[node] < 0:
                    first[node] = len(euler)
                euler.append(node)
                depth_list.append(d)
                children = [c for c in (left[node], right[node]) if c >= 0]
                if phase < len(children):
                    stack.append((node, d, phase + 1))
                    stack.append((int(children[phase]), d + 1, 0))

        self._first = first
        self._euler = np.asarray(euler, dtype=np.int64)
        depth = np.asarray(depth_list, dtype=np.int64)
        m = depth.shape[0]
        levels = max(1, m.bit_length())
        # Sparse table over Euler depths; store the argmin position.
        table = np.empty((levels, m), dtype=np.int64)
        table[0] = np.arange(m, dtype=np.int64)
        j = 1
        while (1 << j) <= m:
            span = 1 << (j - 1)
            prev = table[j - 1]
            a = prev[: m - 2 * span + 1]
            b = prev[span : m - span + 1]
            table[j, : m - 2 * span + 1] = np.where(depth[a] <= depth[b], a, b)
            j += 1
        self._depth = depth
        self._table = table[:j]

    def _lca(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        lo = self._first[us]
        hi = self._first[vs]
        lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
        length = hi - lo + 1
        k = np.maximum(np.int64(0), (np.ceil(np.log2(length + 1)) - 1).astype(np.int64))
        # Clamp k so 2^k <= length.
        too_big = (np.int64(1) << k) > length
        k = np.where(too_big, k - 1, k)
        a = self._table[k, lo]
        b = self._table[k, hi - (np.int64(1) << k) + 1]
        arg = np.where(self._depth[a] <= self._depth[b], a, b)
        return self._euler[arg]

    def connected(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized same-tree test for each pair ``us[i], vs[i]``."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        return self._root[us] == self._root[vs]

    def path_max(
        self, us: np.ndarray, vs: np.ndarray, cost: CostModel | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Heaviest edge on each path ``us[i] -- vs[i]``.

        Returns ``(weights, eids, forest_positions, connected_mask)``; entries
        for disconnected or identical endpoints have weight ``-inf`` and ids
        ``-1`` (connected is True for identical endpoints).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if cost is not None:
            cost.add(work=us.shape[0], span=log2ceil(max(self.n, 2)))
        conn = self._root[us] == self._root[vs]
        w = np.full(us.shape[0], -np.inf, dtype=np.float64)
        eid = np.full(us.shape[0], -1, dtype=np.int64)
        fpos = np.full(us.shape[0], -1, dtype=np.int64)
        mask = conn & (us != vs)
        if np.any(mask):
            lca = self._lca(us[mask], vs[mask])
            w[mask] = self._node_w[lca]
            eid[mask] = self._node_eid[lca]
            fpos[mask] = self._node_pos[lca]
        return w, eid, fpos, conn


def filter_forest_heavy(
    edges: EdgeArray, forest: EdgeArray, cost: CostModel | None = None
) -> np.ndarray:
    """Positions (into ``edges``) of the *F-light* edges w.r.t. ``forest``.

    An edge is F-light if its endpoints are disconnected in the forest, or if
    it is no heavier (in (weight, eid) order) than the heaviest edge on the
    forest path between its endpoints.  Only F-light edges can appear in the
    final MSF (KKT sampling lemma).
    """
    if edges.m == 0:
        return np.empty(0, dtype=np.int64)
    oracle = KruskalTreeOracle(forest, cost=cost)
    w, eid, _, conn = oracle.path_max(edges.u, edges.v, cost=cost)
    not_loop = edges.u != edges.v
    lighter = (edges.w < w) | ((edges.w == w) & (edges.eid <= eid))
    light = not_loop & (~conn | lighter)
    return np.nonzero(light)[0]


def verify_msf(
    edges: EdgeArray,
    forest_positions: np.ndarray,
    cost: CostModel | None = None,
) -> bool:
    """Check that ``forest_positions`` select the (unique) MSF of ``edges``.

    Conditions checked (Komlos-style verification, ``O(m)`` charged):

    1. the selection is a forest spanning the same components as the graph;
    2. no non-selected edge is lighter (in (weight, eid) order) than the
       heaviest edge on the forest path between its endpoints.

    With the library's tie-breaking the MSF is unique, so this accepts
    exactly one selection per input.
    """
    m = edges.m
    sel = np.zeros(m, dtype=bool)
    sel[forest_positions] = True
    forest = edges.take(np.nonzero(sel)[0])
    try:
        oracle = KruskalTreeOracle(forest, cost=cost)
    except ValueError:  # selection contains a cycle
        return False

    # Spanning: every graph edge's endpoints are connected in the forest.
    conn = oracle.connected(edges.u, edges.v)
    if not bool(np.all(conn | (edges.u == edges.v))):
        return False

    # Cut/cycle optimality: every edge is >= the forest path maximum between
    # its endpoints; forest edges achieve equality with themselves.
    w, eid, _, _ = oracle.path_max(edges.u, edges.v, cost=cost)
    not_loop = edges.u != edges.v
    lighter = (edges.w < w) | ((edges.w == w) & (edges.eid < eid))
    if bool(np.any(lighter & not_loop)):
        return False
    # Finally, each selected edge must be the one its own query returns.
    fw, feid, _, _ = oracle.path_max(forest.u, forest.v, cost=cost)
    return bool(np.all((fw == forest.w) & (feid == forest.eid)))
