"""Prim's (Jarnik's) MSF algorithm with a binary heap.

``O(m lg n)`` work, inherently sequential; included as the classical
textbook baseline in the kernel ablation (DESIGN.md, ABL-msf).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.msf.graph import EdgeArray
from repro.runtime.cost import CostModel, log2ceil


def prim_msf(edges: EdgeArray, cost: CostModel | None = None) -> np.ndarray:
    """Return positions (into ``edges``) of the unique MSF.

    Runs Prim from every not-yet-visited vertex, so disconnected graphs are
    handled; ties break by edge id to match the library's total order.
    """
    n, m = edges.n, edges.m
    if cost is not None and m > 0:
        cost.add(work=m * log2ceil(max(n, 2)), span=m)  # sequential algorithm
    if m == 0:
        return np.empty(0, dtype=np.int64)

    adj: list[list[tuple[float, int, int, int]]] = [[] for _ in range(n)]
    for pos in range(m):
        a, b = int(edges.u[pos]), int(edges.v[pos])
        if a == b:
            continue
        w, e = float(edges.w[pos]), int(edges.eid[pos])
        adj[a].append((w, e, pos, b))
        adj[b].append((w, e, pos, a))

    visited = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        heap: list[tuple[float, int, int, int]] = list(adj[start])
        heapq.heapify(heap)
        while heap:
            w, e, pos, to = heapq.heappop(heap)
            if visited[to]:
                continue
            visited[to] = True
            chosen.append(pos)
            for item in adj[to]:
                if not visited[item[3]]:
                    heapq.heappush(heap, item)

    out = np.asarray(chosen, dtype=np.int64)
    out.sort()
    return out
