"""Karger-Klein-Tarjan randomized MSF: expected linear work.

This is the sequential formulation [37] of the parallel Cole-Klein-Tarjan
algorithm [12] that Algorithm 2 invokes on the O(l)-size graph
``CPT + new edges``.  Structure per recursion level:

1. Two Boruvka rounds (selects some MSF edges, contracts components, and at
   least quarters the vertex count).
2. Sample each surviving edge independently with probability 1/2; recursively
   compute the MSF ``F`` of the sample.
3. Discard all *F-heavy* edges (sampling lemma: only expected ``2 n'`` edges
   survive), then recurse on the survivors; their MSF plus the Boruvka edges
   is the answer.

Sampling uses the library's deterministic splitmix64 bits keyed by edge id
and recursion salt, so the algorithm is reproducible given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.msf.boruvka import boruvka_contract
from repro.msf.graph import EdgeArray
from repro.msf.kruskal import kruskal_msf
from repro.msf.verify import filter_forest_heavy
from repro.runtime.cost import CostModel, log2ceil
from repro.runtime.hashing import splitmix64

_BASE_CASE = 48


def kkt_msf(
    edges: EdgeArray,
    cost: CostModel | None = None,
    seed: int = 0xC0FFEE,
) -> np.ndarray:
    """Return positions (into ``edges``) of the unique MSF.

    Expected ``O(m)`` work; span charged at the CKT ``O(lg m)``-per-level
    bound.  Deterministic given ``seed``.
    """
    pos = _kkt(edges, np.arange(edges.m, dtype=np.int64), cost, seed, 0)
    pos.sort()
    return pos


def _dedup_parallel(edges: EdgeArray, orig: np.ndarray) -> tuple[EdgeArray, np.ndarray]:
    """Drop self-loops and parallel duplicates, tracking original positions."""
    if edges.m == 0:
        return edges, orig
    keep = np.nonzero(edges.u != edges.v)[0]
    e, o = edges.take(keep), orig[keep]
    if e.m == 0:
        return e, o
    a = np.minimum(e.u, e.v)
    b = np.maximum(e.u, e.v)
    order = np.lexsort((e.eid, e.w, b, a))
    a, b = a[order], b[order]
    first = np.ones(e.m, dtype=bool)
    first[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    sel = order[first]
    return e.take(sel), o[sel]


def _kkt(
    edges: EdgeArray,
    orig: np.ndarray,
    cost: CostModel | None,
    seed: int,
    depth: int,
) -> np.ndarray:
    m = edges.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    if m <= _BASE_CASE:
        local = kruskal_msf(edges, cost=None)
        if cost is not None:
            cost.add(work=m, span=log2ceil(max(m, 2)))
        return orig[local]

    # Step 1: two Boruvka rounds; contract.
    selected_local, comp, live = boruvka_contract(edges, cost=cost, max_rounds=2)
    picked = orig[np.asarray(selected_local, dtype=np.int64)] if selected_local else np.empty(0, dtype=np.int64)

    live_idx = np.nonzero(live)[0]
    cu = comp[edges.u[live_idx]]
    cv = comp[edges.v[live_idx]]
    cross = cu != cv
    live_idx = live_idx[cross]
    if live_idx.size == 0:
        return picked
    cu, cv = cu[cross], cv[cross]

    # Relabel contracted components densely.
    verts, inv = np.unique(np.concatenate([cu, cv]), return_inverse=True)
    k = inv.shape[0] // 2
    contracted = EdgeArray(
        int(verts.shape[0]),
        inv[:k].astype(np.int64),
        inv[k:].astype(np.int64),
        edges.w[live_idx],
        edges.eid[live_idx],
    )
    contracted, sub_orig = _dedup_parallel(contracted, orig[live_idx])
    if cost is not None:
        cost.add(work=contracted.m, span=log2ceil(max(contracted.m, 2)))
    if contracted.m == 0:
        return picked

    # Step 2: sample with probability 1/2 and recurse.
    salt = splitmix64(seed ^ (depth * 0x9E3779B97F4A7C15))
    bits = np.fromiter(
        (splitmix64(salt ^ int(e)) & 1 for e in contracted.eid),
        dtype=bool,
        count=contracted.m,
    )
    sample_idx = np.nonzero(bits)[0]
    sample = contracted.take(sample_idx)
    f_orig = _kkt(sample, sub_orig[sample_idx], cost, seed, depth * 2 + 1)

    # Recover the sampled forest F as rows of `contracted`.
    in_f = np.isin(sub_orig, f_orig)
    forest = contracted.take(np.nonzero(in_f)[0])

    # Step 3: discard F-heavy edges and recurse on the survivors.
    light = filter_forest_heavy(contracted, forest, cost=cost)
    rest = _kkt(contracted.take(light), sub_orig[light], cost, seed, depth * 2 + 2)
    return np.concatenate([picked, rest])
