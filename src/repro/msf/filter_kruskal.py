"""Filter-Kruskal (Osipov, Sanders, Singler, ALENEX 2009).

A practical bridge between Kruskal and KKT: quicksort-style pivoting on
edge weights, recursing on the light half first and *filtering* heavy edges
whose endpoints the light half already connected.  Expected
``O(m + n lg n lg(m/n))`` work on random weights -- usually the fastest
sequential kernel in practice, included as a fifth option in the Algorithm 2
kernel ablation.
"""

from __future__ import annotations

import numpy as np

from repro.msf.graph import EdgeArray
from repro.msf.kruskal import _UnionFind
from repro.runtime.cost import CostModel, log2ceil

_BASE = 64


def filter_kruskal_msf(
    edges: EdgeArray, cost: CostModel | None = None
) -> np.ndarray:
    """Return positions (into ``edges``) of the unique MSF.

    Ties break by edge id (same total order as every other kernel).
    """
    m = edges.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    if cost is not None:
        # Expected near-linear; charge one unit per edge per partition level.
        cost.add(work=m + edges.n, span=log2ceil(max(m, 2)) ** 2)

    uf = _UnionFind(edges.n)
    chosen: list[int] = []
    us, vs, ws, eids = edges.u, edges.v, edges.w, edges.eid

    def kruskal(pos: np.ndarray) -> None:
        order = pos[np.lexsort((eids[pos], ws[pos]))]
        for p in order:
            a, b = int(us[p]), int(vs[p])
            if a != b and uf.union(a, b):
                chosen.append(int(p))

    def rec(pos: np.ndarray) -> None:
        if pos.size <= _BASE:
            kruskal(pos)
            return
        # Median-of-positions pivot on (w, eid).
        mid = pos[pos.size // 2]
        pw, pe = ws[mid], eids[mid]
        keys_lt = (ws[pos] < pw) | ((ws[pos] == pw) & (eids[pos] <= pe))
        light, heavy = pos[keys_lt], pos[~keys_lt]
        if light.size == 0 or heavy.size == 0:  # degenerate pivot: finish flat
            kruskal(pos)
            return
        rec(light)
        # Filter: drop heavy edges already intra-component.
        keep = np.fromiter(
            (uf.find(int(us[p])) != uf.find(int(vs[p])) for p in heavy),
            dtype=bool,
            count=heavy.size,
        )
        if cost is not None:
            cost.add(work=int(heavy.size))
        heavy = heavy[keep]
        if heavy.size:
            rec(heavy)

    rec(np.arange(m, dtype=np.int64))
    out = np.asarray(chosen, dtype=np.int64)
    out.sort()
    return out
