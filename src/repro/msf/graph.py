"""Struct-of-arrays edge list representation for static MSF kernels.

The static algorithms are numpy-vectorized, so edges live in parallel arrays
(``u``, ``v``, ``w``, ``eid``) rather than objects.  ``eid`` is a caller
supplied identity used both for tie-breaking (making the MSF unique) and for
relating selected edges back to the dynamic structures they came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class EdgeArray:
    """An immutable weighted edge list over vertices ``0..n-1``.

    Attributes:
        n: number of vertices.
        u, v: int64 endpoint arrays.
        w: float64 weight array.
        eid: int64 edge identity array (unique per edge; ties broken by it).
    """

    n: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    eid: np.ndarray

    def __post_init__(self) -> None:
        m = self.u.shape[0]
        if not (self.v.shape[0] == self.w.shape[0] == self.eid.shape[0] == m):
            raise ValueError("edge arrays must have equal length")
        if m > 0:
            lo = min(int(self.u.min()), int(self.v.min()))
            hi = max(int(self.u.max()), int(self.v.max()))
            if lo < 0 or hi >= self.n:
                raise ValueError(f"endpoint out of range [0, {self.n})")

    @property
    def m(self) -> int:
        """Number of edges."""
        return int(self.u.shape[0])

    @staticmethod
    def from_tuples(
        n: int, edges: Iterable[tuple[int, int, float]] | Sequence
    ) -> "EdgeArray":
        """Build from ``(u, v, w)`` or ``(u, v, w, eid)`` tuples.

        When eids are omitted, positions are used as eids.
        """
        rows = list(edges)
        if not rows:
            z = np.empty(0, dtype=np.int64)
            return EdgeArray(n, z, z.copy(), np.empty(0, dtype=np.float64), z.copy())
        width = len(rows[0])
        us = np.fromiter((r[0] for r in rows), dtype=np.int64, count=len(rows))
        vs = np.fromiter((r[1] for r in rows), dtype=np.int64, count=len(rows))
        ws = np.fromiter((r[2] for r in rows), dtype=np.float64, count=len(rows))
        if width >= 4:
            ids = np.fromiter((r[3] for r in rows), dtype=np.int64, count=len(rows))
        else:
            ids = np.arange(len(rows), dtype=np.int64)
        return EdgeArray(n, us, vs, ws, ids)

    def take(self, idx: np.ndarray) -> "EdgeArray":
        """Sub-edge-list at positions ``idx`` (same vertex set)."""
        return EdgeArray(self.n, self.u[idx], self.v[idx], self.w[idx], self.eid[idx])

    def concat(self, other: "EdgeArray") -> "EdgeArray":
        """Concatenate two edge lists over the same vertex set."""
        if other.n != self.n:
            raise ValueError("vertex counts differ")
        return EdgeArray(
            self.n,
            np.concatenate([self.u, other.u]),
            np.concatenate([self.v, other.v]),
            np.concatenate([self.w, other.w]),
            np.concatenate([self.eid, other.eid]),
        )

    def iter_tuples(self) -> Iterator[tuple[int, int, float, int]]:
        """Yield edges as ``(u, v, w, eid)`` tuples."""
        for i in range(self.m):
            yield (int(self.u[i]), int(self.v[i]), float(self.w[i]), int(self.eid[i]))

    def weight_order(self) -> np.ndarray:
        """Positions sorted by (weight, eid) -- the library's total order."""
        return np.lexsort((self.eid, self.w))

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(self.w.sum())


def canonical_edges(edges: EdgeArray) -> EdgeArray:
    """Drop self-loops and keep, per unordered endpoint pair, only the
    (weight, eid)-minimal edge.

    Parallel edges can never both be in an MSF, so static kernels may run on
    the canonical form; expected ``O(m)`` work via semisort (here: lexsort).
    """
    if edges.m == 0:
        return edges
    keep = edges.u != edges.v
    e = edges.take(np.nonzero(keep)[0])
    if e.m == 0:
        return e
    a = np.minimum(e.u, e.v)
    b = np.maximum(e.u, e.v)
    order = np.lexsort((e.eid, e.w, b, a))
    a, b = a[order], b[order]
    first = np.ones(e.m, dtype=bool)
    first[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    return e.take(order[first])
