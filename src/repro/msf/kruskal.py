"""Kruskal's MSF algorithm (sequential baseline and small-case kernel).

``O(m lg m)`` work; used both as an oracle in tests and as the base case of
the recursive KKT algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.msf.graph import EdgeArray
from repro.runtime.cost import CostModel, log2ceil


class _UnionFind:
    """Union by rank + path halving; near-constant amortized finds."""

    __slots__ = ("parent", "rank")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.rank = [0] * n

    def find(self, x: int) -> int:
        """Representative of x (path halving)."""
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Join two components; False if already joined."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True


def kruskal_msf(edges: EdgeArray, cost: CostModel | None = None) -> np.ndarray:
    """Return positions (into ``edges``) of the unique MSF.

    Ties are broken by edge id, so the result is deterministic.
    """
    m = edges.m
    if cost is not None and m > 0:
        # Comparison sort dominates: O(m lg m) work, O(lg m) span (parallel sort).
        cost.add(work=m * log2ceil(max(m, 2)), span=log2ceil(max(m, 2)))
    if m == 0:
        return np.empty(0, dtype=np.int64)
    order = edges.weight_order()
    uf = _UnionFind(edges.n)
    chosen: list[int] = []
    us, vs = edges.u, edges.v
    for pos in order:
        a, b = int(us[pos]), int(vs[pos])
        if a != b and uf.union(a, b):
            chosen.append(int(pos))
    out = np.asarray(chosen, dtype=np.int64)
    out.sort()
    return out
