"""Static minimum spanning forest algorithms and MSF verification.

Algorithm 2 of the paper computes, per batch, the MSF of a graph of size
``O(l)`` (the compressed path trees plus the new edges).  The paper uses the
expected linear-work, logarithmic-span algorithm of Cole, Klein and Tarjan,
which parallelises the sequential Karger-Klein-Tarjan (KKT) algorithm.  This
package provides KKT (:func:`kkt_msf`) together with the classical
comparison baselines (:func:`kruskal_msf`, :func:`boruvka_msf`,
:func:`prim_msf`) and the Kruskal-tree based batch path-maximum oracle used
for KKT's F-heavy edge filtering (:mod:`repro.msf.verify`).

All algorithms break weight ties by edge id, so the MSF is unique and
algorithms are cross-checkable edge-for-edge.
"""

from repro.msf.graph import EdgeArray, canonical_edges
from repro.msf.kruskal import kruskal_msf
from repro.msf.boruvka import boruvka_msf
from repro.msf.prim import prim_msf
from repro.msf.kkt import kkt_msf
from repro.msf.filter_kruskal import filter_kruskal_msf
from repro.msf.verify import KruskalTreeOracle, filter_forest_heavy, verify_msf

__all__ = [
    "EdgeArray",
    "canonical_edges",
    "kruskal_msf",
    "filter_kruskal_msf",
    "boruvka_msf",
    "prim_msf",
    "kkt_msf",
    "KruskalTreeOracle",
    "filter_forest_heavy",
    "verify_msf",
]
