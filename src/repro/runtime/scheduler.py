"""Pluggable execution backends for bulk (embarrassingly parallel) stages.

The library's inner loops are level-synchronous and numpy-vectorized, so the
default :class:`SequentialScheduler` is usually fastest under the GIL.  A
:class:`ThreadPoolScheduler` is provided for coarse-grained stages that
release the GIL (large numpy kernels) or do I/O; it demonstrates how the
algorithms map onto real workers without changing any algorithm code.

Schedulers are about *execution*; they are deliberately independent of the
:class:`~repro.runtime.cost.CostModel`, which simulates the PRAM the paper's
bounds are stated on.  Swapping a scheduler never changes measured work or
span -- only wall-clock.

Examples:
    >>> s = SequentialScheduler()
    >>> s.map(lambda x: x * x, range(5))
    [0, 1, 4, 9, 16]
    >>> s.starmap(lambda a, b: a - b, [(5, 2), (9, 4)])
    [3, 5]

    Schedulers are context managers; the pool variant shuts down its
    workers on exit:

    >>> with ThreadPoolScheduler(max_workers=2) as pool:
    ...     pool.map(lambda x: x + 1, [1, 2, 3])
    [2, 3, 4]
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence


class Scheduler:
    """Interface: apply a function over items, conceptually in parallel.

    Implementations must preserve input order in the returned list and
    propagate the first exception raised by ``fn``.  They are reusable
    across calls and usable as context managers (:meth:`close` runs on
    exit).
    """

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, conceptually in parallel."""
        raise NotImplementedError

    def starmap(
        self, fn: Callable[..., Any], items: Iterable[Sequence[Any]]
    ) -> list[Any]:
        """Like :meth:`map` with argument tuples unpacked."""
        return self.map(lambda args: fn(*args), items)

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future":
        """Launch one task; returns a :class:`~concurrent.futures.Future`.

        The sequential backend runs ``fn`` inline and returns an
        already-resolved future, so callers (e.g. the producer fan-out in
        ``repro.service.demo``) are backend-agnostic.

        >>> SequentialScheduler().submit(lambda a, b: a + b, 2, 3).result()
        5
        """
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - mirror executor behavior
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release any worker resources (no-op for sequential backends)."""

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SequentialScheduler(Scheduler):
    """Run tasks in order on the calling thread (deterministic, default)."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Sequential in-order application."""
        return [fn(x) for x in items]


class ThreadPoolScheduler(Scheduler):
    """Run tasks on a shared thread pool.

    Only profitable when ``fn`` releases the GIL; provided so that users on
    free-threaded builds or with GIL-releasing kernels can opt in.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Pool-backed application (profitable only when fn drops the GIL)."""
        return list(self._pool.map(fn, items))

    def submit(self, fn: Callable[..., Any], *args: Any) -> "Future":
        """Launch one task on the pool; returns its future."""
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


_default: Scheduler = SequentialScheduler()


def get_default_scheduler() -> Scheduler:
    """The process-wide default scheduler.

    >>> isinstance(get_default_scheduler(), Scheduler)
    True
    """
    return _default


def set_default_scheduler(scheduler: Scheduler) -> Scheduler:
    """Install ``scheduler`` as the process-wide default; returns the old one.

    >>> prev = set_default_scheduler(SequentialScheduler())
    >>> _ = set_default_scheduler(prev)   # restore
    """
    global _default
    old = _default
    _default = scheduler
    return old
