"""Pluggable execution backends for bulk (embarrassingly parallel) stages.

The library's inner loops are level-synchronous and numpy-vectorized, so the
default :class:`SequentialScheduler` is usually fastest under the GIL.  A
:class:`ThreadPoolScheduler` is provided for coarse-grained stages that
release the GIL (large numpy kernels) or do I/O; it demonstrates how the
algorithms map onto real workers without changing any algorithm code.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence


class Scheduler:
    """Interface: apply a function over items, conceptually in parallel."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every item, conceptually in parallel."""
        raise NotImplementedError

    def starmap(
        self, fn: Callable[..., Any], items: Iterable[Sequence[Any]]
    ) -> list[Any]:
        """Like :meth:`map` with argument tuples unpacked."""
        return self.map(lambda args: fn(*args), items)

    def close(self) -> None:
        """Release any worker resources (no-op for sequential backends)."""

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SequentialScheduler(Scheduler):
    """Run tasks in order on the calling thread (deterministic, default)."""

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Sequential in-order application."""
        return [fn(x) for x in items]


class ThreadPoolScheduler(Scheduler):
    """Run tasks on a shared thread pool.

    Only profitable when ``fn`` releases the GIL; provided so that users on
    free-threaded builds or with GIL-releasing kernels can opt in.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> list[Any]:
        """Pool-backed application (profitable only when fn drops the GIL)."""
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._pool.shutdown(wait=True)


_default: Scheduler = SequentialScheduler()


def get_default_scheduler() -> Scheduler:
    """The process-wide default scheduler."""
    return _default


def set_default_scheduler(scheduler: Scheduler) -> Scheduler:
    """Install ``scheduler`` as the process-wide default; returns the old one."""
    global _default
    old = _default
    _default = scheduler
    return old
