"""Work-span accounting for the simulated CRCW PRAM.

Every data structure in this library threads a :class:`CostModel` through its
operations.  Sequential composition adds both work and span; parallel
composition adds work but takes the maximum span of its branches.  Algorithms
charge costs at the granularity the paper analyses them: one unit per vertex
or edge touched, one round of span per level-synchronous step, ``lg n`` span
per scan/sort primitive.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Cost:
    """An immutable (work, span) pair, e.g. the cost of one operation."""

    work: int
    span: int

    def __add__(self, other: "Cost") -> "Cost":
        """Sequential composition: work and span both add."""
        return Cost(self.work + other.work, self.span + other.span)

    def __or__(self, other: "Cost") -> "Cost":
        """Parallel composition: work adds, span takes the max."""
        return Cost(self.work + other.work, max(self.span, other.span))

    @staticmethod
    def zero() -> "Cost":
        """The identity of both compositions."""
        return Cost(0, 0)


def log2ceil(x: float) -> int:
    """``ceil(lg x)`` clamped below at 1; the span of an x-way primitive."""
    if x <= 2:
        return 1
    return int(math.ceil(math.log2(x)))


class CostModel:
    """Mutable accumulator of work and span.

    The model supports nested parallel blocks::

        with cost.parallel() as fork:
            for item in items:
                with fork.branch():
                    ...   # charges inside run "in parallel"

    Inside a ``parallel`` block each ``branch`` accumulates into its own
    sub-counter; on exit the block contributes the sum of branch work and the
    maximum branch span to the enclosing scope.
    """

    __slots__ = ("work", "span", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self.work = 0
        self.span = 0
        self.enabled = enabled

    def add(self, work: int = 0, span: int = 0) -> None:
        """Charge ``work`` units and ``span`` rounds sequentially."""
        if self.enabled:
            self.work += work
            self.span += span

    def add_cost(self, cost: Cost) -> None:
        """Charge a :class:`Cost` pair sequentially."""
        if self.enabled:
            self.work += cost.work
            self.span += cost.span

    def bulk(self, n: int) -> None:
        """Charge one n-element data-parallel primitive: n work, lg n span."""
        if self.enabled and n > 0:
            self.work += n
            self.span += log2ceil(n)

    def snapshot(self) -> Cost:
        """The current totals, for later :meth:`since` deltas."""
        return Cost(self.work, self.span)

    def since(self, snap: Cost) -> Cost:
        """The (work, span) accumulated since ``snap``."""
        return Cost(self.work - snap.work, self.span - snap.span)

    def reset(self) -> None:
        """Zero both counters."""
        self.work = 0
        self.span = 0

    @contextmanager
    def parallel(self) -> Iterator["_ParallelBlock"]:
        """Open a parallel block: branches compose as sum-work/max-span."""
        block = _ParallelBlock(self)
        yield block
        block._commit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostModel(work={self.work}, span={self.span})"


class _ParallelBlock:
    """Collects branch costs and commits (sum-work, max-span) to the parent."""

    __slots__ = ("_parent", "_work", "_max_span", "_open")

    def __init__(self, parent: CostModel) -> None:
        self._parent = parent
        self._work = 0
        self._max_span = 0
        self._open = True

    @contextmanager
    def branch(self) -> Iterator[CostModel]:
        """One parallel branch; charges inside go to a fresh sub-model."""
        sub = CostModel(enabled=self._parent.enabled)
        yield sub
        self._work += sub.work
        if sub.span > self._max_span:
            self._max_span = sub.span

    def _commit(self) -> None:
        if self._open:
            self._parent.add(self._work, self._max_span)
            self._open = False


@contextmanager
def measure(cost: CostModel) -> Iterator["Measurement"]:
    """Measure the (work, span) delta of a block against ``cost``."""
    m = Measurement()
    snap = cost.snapshot()
    yield m
    delta = cost.since(snap)
    m.work = delta.work
    m.span = delta.span


class Measurement:
    """Result of a :func:`measure` block."""

    __slots__ = ("work", "span")

    def __init__(self) -> None:
        self.work = 0
        self.span = 0

    def cost(self) -> Cost:
        """The measured delta as a :class:`Cost` pair."""
        return Cost(self.work, self.span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Measurement(work={self.work}, span={self.span})"


def parallel_regions(parent: CostModel, regions) -> list:
    """Run sub-structure operations that are conceptually parallel.

    ``regions`` is an iterable of ``(sub_model, thunk)`` pairs, where each
    sub-structure charges its own :class:`CostModel`.  The thunks execute
    sequentially (this is a simulation), their per-model (work, span)
    deltas are measured, and the parent is charged their **sum of work and
    maximum span** -- the parallel composition rule the paper's composed
    structures (R approximate-MSF levels, the sparsifier's instance stack)
    are analysed under.

    Returns the thunks' results in order.
    """
    regions = list(regions)
    snaps = [model.snapshot() for model, _ in regions]
    results = []
    total_work = 0
    max_span = 0
    for (model, thunk), snap in zip(regions, snaps):
        results.append(thunk())
        delta = model.since(snap)
        total_work += delta.work
        max_span = max(max_span, delta.span)
    parent.add(work=total_work, span=max_span)
    return results
