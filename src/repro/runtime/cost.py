"""Work-span accounting for the simulated CRCW PRAM.

Every data structure in this library threads a :class:`CostModel` through its
operations.  Sequential composition adds both work and span; parallel
composition adds work but takes the maximum span of its branches.  Algorithms
charge costs at the granularity the paper analyses them: one unit per vertex
or edge touched, one round of span per level-synchronous step, ``lg n`` span
per scan/sort primitive.

Beyond the two counters, a :class:`CostModel` can attribute its charges to
hierarchical **phase spans** (:meth:`CostModel.phase`): named, nestable
regions that record the work, span, wall time, entry count and item count
of everything charged while they are open.  Algorithm 2's four stages
(semisort -> CPT build -> MSF kernel -> forest splice) are instrumented this
way, so a benchmark can report *where* the ``O(l lg(1 + n/l))`` work went --
see ``docs/observability.md``.

Terminology note: a *phase span* is a tracing span (a region of execution);
the ``span`` field inside it is the PRAM critical-path length.  The two
uses of the word are both standard and always disambiguated by context
here ("phase" vs. "span" alone).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Cost:
    """An immutable (work, span) pair, e.g. the cost of one operation.

    Examples:
        Sequential composition adds both components; parallel composition
        adds work and takes the maximum span:

        >>> Cost(3, 2) + Cost(5, 7)
        Cost(work=8, span=9)
        >>> Cost(3, 2) | Cost(5, 7)
        Cost(work=8, span=7)
        >>> Cost(3, 2) + Cost.zero() == Cost(3, 2)
        True
    """

    work: int
    span: int

    def __add__(self, other: "Cost") -> "Cost":
        """Sequential composition: work and span both add."""
        return Cost(self.work + other.work, self.span + other.span)

    def __or__(self, other: "Cost") -> "Cost":
        """Parallel composition: work adds, span takes the max."""
        return Cost(self.work + other.work, max(self.span, other.span))

    @staticmethod
    def zero() -> "Cost":
        """The identity of both compositions."""
        return Cost(0, 0)


def log2ceil(x: float) -> int:
    """``ceil(lg x)`` clamped below at 1; the span of an x-way primitive.

    >>> [log2ceil(x) for x in (1, 2, 3, 4, 1024, 1025)]
    [1, 1, 2, 2, 10, 11]
    """
    if x <= 2:
        return 1
    return int(math.ceil(math.log2(x)))


class PhaseNode:
    """One node of a :class:`CostModel`'s phase tree.

    A phase accumulates over *every* entry with the same name at the same
    nesting position -- re-entering ``cost.phase("cpt-build")`` under the
    same parent merges into one node with ``calls == 2``.  Recorded per
    node:

    - ``work`` / ``span``: the cost-model units charged while the phase was
      open, **inclusive** of nested child phases;
    - ``wall``: wall-clock seconds spent inside (inclusive);
    - ``calls``: how many times the phase was entered;
    - ``items``: caller-supplied element count (batch sizes, edges touched);
    - ``children``: nested phases, in first-entry order.

    ``self_work`` / ``self_span`` subtract the children's (inclusive)
    totals, giving the exclusive cost of the node's own code.
    """

    __slots__ = ("name", "work", "span", "wall", "calls", "items", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.work = 0
        self.span = 0
        self.wall = 0.0
        self.calls = 0
        self.items = 0
        self.children: dict[str, "PhaseNode"] = {}

    # -- structure -----------------------------------------------------

    def child(self, name: str) -> "PhaseNode":
        """The child phase called ``name``, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = PhaseNode(name)
            self.children[name] = node
        return node

    def count(self, items: int) -> None:
        """Add ``items`` processed elements to this phase's tally."""
        self.items += items

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "PhaseNode"]]:
        """Yield ``(depth, node)`` over the subtree in pre-order."""
        yield (depth, self)
        for c in self.children.values():
            yield from c.walk(depth + 1)

    # -- derived values ------------------------------------------------

    @property
    def self_work(self) -> int:
        """Work charged in this phase but not in any child phase."""
        return self.work - sum(c.work for c in self.children.values())

    @property
    def self_span(self) -> int:
        """Span charged in this phase but not in any child phase."""
        return self.span - sum(c.span for c in self.children.values())

    # -- aggregation / serialization ------------------------------------

    def merge(self, other: "PhaseNode") -> None:
        """Accumulate ``other``'s subtree into this node (names must match).

        Used to aggregate phase trees across several :class:`CostModel`
        instances (e.g. one per benchmark configuration) into one record.
        """
        if other.name != self.name:
            raise ValueError(f"cannot merge phase {other.name!r} into {self.name!r}")
        self.work += other.work
        self.span += other.span
        self.wall += other.wall
        self.calls += other.calls
        self.items += other.items
        for name, child in other.children.items():
            self.child(name).merge(child)

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready); inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "work": self.work,
            "span": self.span,
            "wall_s": self.wall,
            "calls": self.calls,
            "items": self.items,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PhaseNode":
        """Rebuild a phase tree from :meth:`to_dict` output."""
        node = cls(d["name"])
        node.work = int(d.get("work", 0))
        node.span = int(d.get("span", 0))
        node.wall = float(d.get("wall_s", 0.0))
        node.calls = int(d.get("calls", 0))
        node.items = int(d.get("items", 0))
        for c in d.get("children", ()):
            child = cls.from_dict(c)
            node.children[child.name] = child
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseNode({self.name!r}, work={self.work}, span={self.span}, "
            f"calls={self.calls}, children={len(self.children)})"
        )


class CostModel:
    """Mutable accumulator of work and span.

    The model supports nested parallel blocks::

        with cost.parallel() as fork:
            for item in items:
                with fork.branch():
                    ...   # charges inside run "in parallel"

    Inside a ``parallel`` block each ``branch`` accumulates into its own
    sub-counter; on exit the block contributes the sum of branch work and the
    maximum branch span to the enclosing scope.

    Examples:
        Basic sequential charging:

        >>> cost = CostModel()
        >>> cost.add(work=10, span=3)
        >>> cost.bulk(1024)             # one 1024-way primitive
        >>> (cost.work, cost.span)
        (1034, 13)

        Parallel blocks follow the sum-work / max-span rule:

        >>> cost = CostModel()
        >>> with cost.parallel() as fork:
        ...     with fork.branch() as b1:
        ...         b1.add(work=10, span=4)
        ...     with fork.branch() as b2:
        ...         b2.add(work=20, span=9)
        >>> (cost.work, cost.span)
        (30, 9)

        Phase spans attribute charges to named, nestable regions without
        changing the totals:

        >>> cost = CostModel()
        >>> with cost.phase("build", items=100):
        ...     cost.add(work=70, span=5)
        ...     with cost.phase("inner"):
        ...         cost.add(work=30, span=2)
        >>> build = cost.phases.children["build"]
        >>> (build.work, build.self_work, build.children["inner"].work)
        (100, 70, 30)
        >>> (cost.work, cost.span)
        (100, 7)

        A disabled model ignores work/span charges entirely (phases still
        track wall time and call counts):

        >>> off = CostModel(enabled=False)
        >>> off.add(work=10, span=3)
        >>> (off.work, off.span)
        (0, 0)
    """

    __slots__ = ("work", "span", "enabled", "_phase_root", "_phase_stack")

    def __init__(self, enabled: bool = True) -> None:
        self.work = 0
        self.span = 0
        self.enabled = enabled
        self._phase_root: PhaseNode | None = None
        self._phase_stack: list[PhaseNode] | None = None

    def add(self, work: int = 0, span: int = 0) -> None:
        """Charge ``work`` units and ``span`` rounds sequentially."""
        if self.enabled:
            self.work += work
            self.span += span

    def add_cost(self, cost: Cost) -> None:
        """Charge a :class:`Cost` pair sequentially."""
        if self.enabled:
            self.work += cost.work
            self.span += cost.span

    def bulk(self, n: int) -> None:
        """Charge one n-element data-parallel primitive: n work, lg n span."""
        if self.enabled and n > 0:
            self.work += n
            self.span += log2ceil(n)

    def snapshot(self) -> Cost:
        """The current totals, for later :meth:`since` deltas."""
        return Cost(self.work, self.span)

    def since(self, snap: Cost) -> Cost:
        """The (work, span) accumulated since ``snap``."""
        return Cost(self.work - snap.work, self.span - snap.span)

    def reset(self) -> None:
        """Zero both counters and drop any recorded phases."""
        self.work = 0
        self.span = 0
        self._phase_root = None
        self._phase_stack = None

    # -- phase spans ---------------------------------------------------

    @property
    def phases(self) -> PhaseNode:
        """The root of the phase tree (an empty node before any phase).

        The root itself carries no charges; the interesting data is in
        ``phases.children`` -- the top-level phases.  Work charged while no
        phase is open appears in no child, so
        ``cost.work - sum(c.work for c in cost.phases.children.values())``
        is the *untracked* remainder (see :meth:`untracked_work`).
        """
        if self._phase_root is None:
            self._phase_root = PhaseNode("total")
        return self._phase_root

    def untracked_work(self) -> int:
        """Work charged outside every top-level phase."""
        if self._phase_root is None:
            return self.work
        return self.work - sum(
            c.work for c in self._phase_root.children.values()
        )

    @contextmanager
    def phase(self, name: str, items: int = 0) -> Iterator[PhaseNode]:
        """Open a named phase span; charges inside are attributed to it.

        Phases nest: a phase opened while another is open becomes (or merges
        into) a child of the open one.  Re-entering a name accumulates into
        the existing node.  The yielded :class:`PhaseNode` can tally
        elements via :meth:`PhaseNode.count` when the count is only known
        mid-phase.  Recursive re-entry of the *same* node (a phase nested
        directly inside itself) would double-charge and is not supported;
        instrument at the outermost call site instead.
        """
        root = self.phases
        if self._phase_stack is None:
            self._phase_stack = []
        parent = self._phase_stack[-1] if self._phase_stack else root
        node = parent.child(name)
        self._phase_stack.append(node)
        w0, s0 = self.work, self.span
        t0 = time.perf_counter()
        try:
            yield node
        finally:
            node.wall += time.perf_counter() - t0
            node.work += self.work - w0
            node.span += self.span - s0
            node.calls += 1
            node.items += items
            self._phase_stack.pop()

    @contextmanager
    def parallel(self) -> Iterator["_ParallelBlock"]:
        """Open a parallel block: branches compose as sum-work/max-span.

        Each :meth:`_ParallelBlock.branch` yields a fresh sub-
        :class:`CostModel`; on block exit the parent is charged the sum of
        branch work and the maximum branch span.  Phases recorded inside a
        branch belong to the branch's private sub-model and are discarded
        with it -- instrument phases on the shared parent model instead.
        """
        block = _ParallelBlock(self)
        yield block
        block._commit()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostModel(work={self.work}, span={self.span})"


class _ParallelBlock:
    """Collects branch costs and commits (sum-work, max-span) to the parent."""

    __slots__ = ("_parent", "_work", "_max_span", "_open")

    def __init__(self, parent: CostModel) -> None:
        self._parent = parent
        self._work = 0
        self._max_span = 0
        self._open = True

    @contextmanager
    def branch(self) -> Iterator[CostModel]:
        """One parallel branch; charges inside go to a fresh sub-model."""
        sub = CostModel(enabled=self._parent.enabled)
        yield sub
        self._work += sub.work
        if sub.span > self._max_span:
            self._max_span = sub.span

    def _commit(self) -> None:
        if self._open:
            self._parent.add(self._work, self._max_span)
            self._open = False


@contextmanager
def measure(cost: CostModel) -> Iterator["Measurement"]:
    """Measure the (work, span) delta of a block against ``cost``.

    >>> cost = CostModel()
    >>> cost.add(work=100, span=10)
    >>> with measure(cost) as m:
    ...     cost.add(work=7, span=3)
    >>> m.cost()
    Cost(work=7, span=3)
    """
    m = Measurement()
    snap = cost.snapshot()
    yield m
    delta = cost.since(snap)
    m.work = delta.work
    m.span = delta.span


class Measurement:
    """Result of a :func:`measure` block."""

    __slots__ = ("work", "span")

    def __init__(self) -> None:
        self.work = 0
        self.span = 0

    def cost(self) -> Cost:
        """The measured delta as a :class:`Cost` pair."""
        return Cost(self.work, self.span)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Measurement(work={self.work}, span={self.span})"


def parallel_regions(parent: CostModel, regions) -> list:
    """Run sub-structure operations that are conceptually parallel.

    ``regions`` is an iterable of ``(sub_model, thunk)`` pairs, where each
    sub-structure charges its own :class:`CostModel`.  The thunks execute
    sequentially (this is a simulation), their per-model (work, span)
    deltas are measured, and the parent is charged their **sum of work and
    maximum span** -- the parallel composition rule the paper's composed
    structures (R approximate-MSF levels, the sparsifier's instance stack)
    are analysed under.

    Returns the thunks' results in order.

    >>> parent, a, b = CostModel(), CostModel(), CostModel()
    >>> parallel_regions(parent, [
    ...     (a, lambda: a.add(work=10, span=4)),
    ...     (b, lambda: b.add(work=5, span=9)),
    ... ])
    [None, None]
    >>> (parent.work, parent.span)
    (15, 9)
    """
    regions = list(regions)
    snaps = [model.snapshot() for model, _ in regions]
    results = []
    total_work = 0
    max_span = 0
    for (model, thunk), snap in zip(regions, snaps):
        results.append(thunk())
        delta = model.since(snap)
        total_work += delta.work
        max_span = max(max_span, delta.span)
    parent.add(work=total_work, span=max_span)
    return results
