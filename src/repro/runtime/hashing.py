"""Deterministic counter-based hashing for randomized contraction.

Miller-Reif tree contraction flips an independent coin per (vertex, round).
We realise the coin flips with splitmix64, a statistically strong mixing
function, keyed by a per-structure seed.  Because the bits are a pure
function of ``(seed, vertex, round)``, the entire leveled contraction is a
pure function of the forest and the seed -- which lets the test suite assert
that change propagation reproduces a from-scratch rebuild *bit for bit*.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function (64-bit)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class HashBits:
    """A stateless source of per-(vertex, round) random bits and priorities."""

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0x5EED) -> None:
        self.seed = seed & _MASK

    def bit(self, vertex: int, round_: int) -> int:
        """An unbiased coin flip in {0, 1} for ``vertex`` at ``round_``."""
        return splitmix64(self.seed ^ (vertex * 0x100000001B3 + round_)) & 1

    def word(self, vertex: int, round_: int) -> int:
        """A full 64-bit hash word for ``vertex`` at ``round_``."""
        return splitmix64(self.seed ^ (vertex * 0x100000001B3 + round_))

    def priority(self, key: int) -> int:
        """A static 64-bit priority for treaps keyed by ``key``."""
        return splitmix64(self.seed ^ (key * 0x9E3779B97F4A7C15))
