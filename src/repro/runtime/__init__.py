"""Execution substrate: the work-span PRAM cost model and deterministic hashing.

The paper states every bound in the work-span model on an arbitrary-CRCW
PRAM (Section 2.1).  CPython cannot profitably run fine-grained fork-join
parallelism, so this package provides an *instrumented simulation*: algorithms
execute deterministically while a :class:`CostModel` records the work (total
unit operations) and span (length of the critical path of parallel rounds)
that the algorithm *would* incur on a PRAM.  Benchmarks then validate the
paper's bounds in exactly the quantities the theorems are stated in.
"""

from repro.runtime.cost import Cost, CostModel, PhaseNode, measure, parallel_regions
from repro.runtime.hashing import HashBits, splitmix64
from repro.runtime.scheduler import (
    Scheduler,
    SequentialScheduler,
    ThreadPoolScheduler,
    get_default_scheduler,
    set_default_scheduler,
)

__all__ = [
    "Cost",
    "CostModel",
    "PhaseNode",
    "measure",
    "parallel_regions",
    "HashBits",
    "splitmix64",
    "Scheduler",
    "SequentialScheduler",
    "ThreadPoolScheduler",
    "get_default_scheduler",
    "set_default_scheduler",
]
