"""Tests for the workload generators and the bound-fitting helpers."""

import math
import random

import networkx as nx
import pytest

from repro.analysis import BOUND_MODELS, fit_constant, format_table, goodness_of_fit
from repro.analysis.fitting import best_model
from repro.graphgen import (
    bipartite_stream,
    cycle_pulse_stream,
    gnm_edges,
    grid_edges,
    path_edges,
    preferential_attachment_edges,
    random_tree_edges,
    sliding_window_stream,
    star_edges,
    weighted_stream,
)


class TestGenerators:
    def test_gnm_shape(self):
        rng = random.Random(0)
        edges = gnm_edges(10, 25, rng)
        assert len(edges) == 25
        assert all(u != v and 0 <= u < 10 and 0 <= v < 10 for u, v, _ in edges)

    def test_path_star_tree_are_trees(self):
        rng = random.Random(1)
        for edges, n in [
            (path_edges(10), 10),
            (star_edges(10), 10),
            (random_tree_edges(10, rng), 10),
        ]:
            g = nx.Graph()
            g.add_nodes_from(range(n))
            g.add_edges_from((u, v) for u, v, _ in edges)
            assert nx.is_tree(g)

    def test_grid(self):
        edges = grid_edges(4)
        assert len(edges) == 2 * 4 * 3
        g = nx.Graph((u, v) for u, v, _ in edges)
        assert nx.is_connected(g)

    def test_preferential_attachment_connected_and_skewed(self):
        rng = random.Random(2)
        edges = preferential_attachment_edges(200, 2, rng)
        g = nx.Graph()
        g.add_nodes_from(range(200))
        g.add_edges_from((u, v) for u, v, _ in edges)
        assert nx.is_connected(g)
        degs = sorted((d for _, d in g.degree()), reverse=True)
        assert degs[0] >= 4 * (sum(degs) / len(degs))  # heavy head

    def test_stream_window_invariant(self):
        rng = random.Random(3)
        stream = sliding_window_stream(20, rounds=15, batch_size=6, window=20, rng=rng)
        live = 0
        for b in stream:
            live += len(b.edges) - b.expire
            assert live <= 20
            assert b.expire >= 0

    def test_weighted_stream_weights_in_range(self):
        rng = random.Random(4)
        stream = weighted_stream(10, 5, 4, 10, rng, weight_range=(1.0, 9.0))
        for b in stream:
            assert all(1.0 <= w <= 9.0 for _, _, w in b.edges)

    def test_bipartite_stream_violations(self):
        rng = random.Random(5)
        stream = bipartite_stream(20, rounds=10, batch_size=4, window=100, rng=rng, violation_every=2)
        intra = sum(
            1 for b in stream for u, v in b.edges if u % 2 == v % 2
        )
        assert intra >= 3  # violations do occur

    def test_cycle_pulse_stream(self):
        rng = random.Random(6)
        stream = cycle_pulse_stream(20, rounds=12, window=100, rng=rng, pulse_every=3)
        assert sum(len(b.edges) for b in stream) >= 36


class TestFitting:
    def test_fit_recovers_planted_constant(self):
        xs = [(ell, 1024) for ell in (1, 4, 16, 64, 256, 1024)]
        model = BOUND_MODELS["l*lg(1+n/l)"]
        ys = [3.7 * model(*x) for x in xs]
        c, resid = goodness_of_fit(xs, ys, model)
        assert c == pytest.approx(3.7)
        assert resid < 1e-12

    def test_wrong_model_fits_poorly(self):
        xs = [(ell, 4096) for ell in (1, 4, 16, 64, 256, 1024, 4096)]
        truth = BOUND_MODELS["l*lg(1+n/l)"]
        ys = [2.0 * truth(*x) for x in xs]
        _, resid_right = goodness_of_fit(xs, ys, truth)
        _, resid_const_n = goodness_of_fit(xs, ys, BOUND_MODELS["n"])
        assert resid_right < 0.01 < resid_const_n

    def test_best_model_selects_truth(self):
        xs = [(ell, 4096) for ell in (1, 8, 64, 512, 4096)]
        truth = BOUND_MODELS["l*lg(1+n/l)"]
        ys = [5.0 * truth(*x) + 0.5 for x in xs]
        name, _, _ = best_model(xs, ys, names=["l*lg(1+n/l)", "n", "lg^2(n)"])
        assert name == "l*lg(1+n/l)"

    def test_zero_model_raises(self):
        with pytest.raises(ValueError):
            fit_constant([(1, 1)], [1.0], lambda ell, n: 0.0)

    def test_models_are_sane(self):
        assert BOUND_MODELS["l"](7, 100) == 7.0
        assert BOUND_MODELS["n"](7, 100) == 100.0
        assert BOUND_MODELS["l*lg(n)"](2, 16) == pytest.approx(8.0)
        assert BOUND_MODELS["lg^2(n)"](1, 16) == pytest.approx(16.0)
        assert BOUND_MODELS["l*alpha(n)"](10, 10**6) == pytest.approx(40.0)
        # l*lg(1+n/l) at l=n is l*lg(2) = l.
        assert BOUND_MODELS["l*lg(1+n/l)"](64, 64) == pytest.approx(64.0)


class TestTable:
    def test_format_table_alignment(self):
        s = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = s.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2  # consistent widths

    def test_format_table_no_title(self):
        s = format_table(["x"], [["y"]])
        assert s.splitlines()[0].strip() == "x"
