"""Property: WAL replay + snapshot restore reproduce an uninterrupted run.

Hypothesis drives a random round sequence (inserts of arbitrary batches
interleaved with expirations), crashes the apply loop at a random WAL
offset and failpoint, recovers with :meth:`StreamService.open`, finishes
the run, and then requires the recovered structure to be *byte-identical*
to a twin that never went through a service at all: same RC-tree
contraction snapshot, same MSF edge set, same answer to every
connectivity query.  Both RC-tree engines are exercised.

The replicated twin (``test_replicated_followers_converge``) runs the
same property against :class:`~repro.replication.ReplicatedService`: a
random kill/restart schedule interrupts followers mid-stream, yet every
follower -- revived and caught up -- must land on the twin's exact
fingerprint, because followers replay the same WAL through the same
apply path (the split-brain variant lives in ``tests/test_replication``).
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import ReplicatedService
from repro.service import InjectedCrash, ServiceConfig, StreamService
from repro.sliding_window import SWConnectivityEager

N = 12
SEED = 0xC0FFEE

edge = st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)).filter(
    lambda e: e[0] != e[1]
)
# A round must commit something, so that one round == one WAL record and
# resuming from ``rounds[next_lsn:]`` is exact.
round_ = st.tuples(
    st.lists(edge, min_size=0, max_size=6), st.integers(0, 4)
).filter(lambda r: bool(r[0]) or r[1] > 0)
rounds_ = st.lists(round_, min_size=1, max_size=8)


def drive_direct(rounds):
    sw = SWConnectivityEager(N, seed=SEED)
    for edges, expire in rounds:
        if edges:
            sw.batch_insert(edges)
        if expire:
            sw.batch_expire(expire)
    return sw


def fingerprint(sw):
    return (
        sw.num_components,
        sorted(sw.forest_edges()),
        sw._msf.forest.rc.snapshot(),
        [(u, v, sw.is_connected(u, v)) for u in range(N) for v in range(u + 1, N)],
    )


@pytest.mark.parametrize("engine", ["object", "array"])
@settings(max_examples=30, deadline=None)
@given(
    rounds=rounds_,
    crash_frac=st.floats(0.0, 1.0),
    point=st.sampled_from(["before-wal-append", "after-wal-append", "mid-apply"]),
    snapshot_every=st.sampled_from([0, 1, 2]),
)
def test_crash_recover_matches_uninterrupted(
    tmp_path_factory, engine, rounds, crash_frac, point, snapshot_every
):
    tmp_path = tmp_path_factory.mktemp("svc")
    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=snapshot_every)

    def factory():
        return SWConnectivityEager(N, seed=SEED, engine=engine)

    twin = SWConnectivityEager(N, seed=SEED, engine=engine)
    for edges, expire in rounds:
        if edges:
            twin.batch_insert(edges)
        if expire:
            twin.batch_expire(expire)

    crash_lsn = min(int(crash_frac * len(rounds)), len(rounds) - 1)
    svc = StreamService(factory(), data_dir=tmp_path, config=cfg)
    svc.failpoints[point] = lambda lsn: lsn == crash_lsn
    died = False
    for edges, expire in rounds:
        try:
            if edges:
                svc.submit_insert(edges)
            if expire:
                svc.submit_expire(expire)
            svc.flush()
        except InjectedCrash:
            died = True
            break
    # If crash_lsn never committed (only possible when every remaining
    # round raised first), the run completes and recovery is a plain reopen.
    if not died:
        svc.close()

    svc2 = StreamService.open(tmp_path, factory, config=cfg)
    for edges, expire in rounds[svc2.next_lsn :]:
        if edges:
            svc2.submit_insert(edges)
        if expire:
            svc2.submit_expire(expire)
        svc2.flush()
    svc2.close()

    assert fingerprint(svc2.structure) == fingerprint(twin)


# One optional follower disruption per round: kill or revive replica 0/1.
action_ = st.sampled_from(
    [None, (0, "kill"), (0, "restart"), (1, "kill"), (1, "restart")]
)


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["object", "array"])
@settings(max_examples=20, deadline=None)
@given(
    rounds=rounds_,
    schedule=st.lists(action_, min_size=0, max_size=8),
    snapshot_every=st.sampled_from([0, 1, 2]),
)
def test_replicated_followers_converge(
    tmp_path_factory, engine, rounds, schedule, snapshot_every
):
    tmp_path = tmp_path_factory.mktemp("repl")
    cfg = ServiceConfig(flush_edges=10**9, snapshot_every=snapshot_every)

    def factory():
        return SWConnectivityEager(N, seed=SEED, engine=engine)

    twin = SWConnectivityEager(N, seed=SEED, engine=engine)
    for edges, expire in rounds:
        if edges:
            twin.batch_insert(edges)
        if expire:
            twin.batch_expire(expire)

    with ReplicatedService(factory, tmp_path, cfg, followers=2) as rs:
        for (edges, expire), action in itertools.zip_longest(
            rounds, schedule[: len(rounds)]
        ):
            if action is not None:
                f = rs.followers[action[0]]
                if action[1] == "kill" and f.alive:
                    f.kill()
                elif action[1] == "restart" and not f.alive:
                    f.restart()
            rs.write(edges, expire=expire)
            rs.poll()

        # Revive everything; a re-bootstrapped replica must converge too.
        for f in rs.followers:
            if not f.alive:
                f.restart()
        rs.poll()

        want = fingerprint(twin)
        assert rs.primary.query(fingerprint) == want
        for f in rs.followers:
            assert f.replayed_lsn == rs.primary.next_lsn
            assert f.query(fingerprint) == want
