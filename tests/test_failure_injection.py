"""Failure injection: malformed batches must raise *before* mutating state.

Every rejection path is followed by a full invariant check and a
from-scratch snapshot comparison, proving the failed call was atomic.
"""

import pytest

from repro.core import BatchIncrementalMSF
from repro.trees import DynamicForest


def snapshot_state(f: DynamicForest):
    return (f.rc.snapshot(), sorted(f.edges()), f.num_components)


@pytest.fixture()
def forest():
    f = DynamicForest(8, seed=5)
    f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1), (3, 4, 3.0, 2)])
    return f


class TestForestRejections:
    def test_cut_unknown_edge_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_cut([99])
        assert snapshot_state(forest) == before

    def test_cut_same_edge_twice_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_cut([0, 0])
        assert snapshot_state(forest) == before
        forest.batch_cut([0])  # a clean retry still works

    def test_mixed_batch_with_bad_cut_leaves_links_unapplied(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_update(links=[(5, 6, 1.0, 10)], cut_eids=[0, 77])
        assert snapshot_state(forest) == before
        assert not forest.has_edge(10)

    def test_self_loop_link_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 10), (7, 7, 1.0, 11)])
        assert snapshot_state(forest) == before

    def test_duplicate_eid_within_batch_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 10), (6, 7, 1.0, 10)])
        assert snapshot_state(forest) == before

    def test_reusing_live_eid_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 0)])
        assert snapshot_state(forest) == before

    def test_cut_and_relink_same_eid_in_one_batch_allowed(self, forest):
        forest.batch_update(links=[(5, 6, 9.0, 0)], cut_eids=[0])
        assert forest.edge_info(0) == (5, 6, 9.0)

    def test_out_of_range_endpoint_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(0, 99, 1.0, 10)])
        assert snapshot_state(forest) == before

    def test_negative_eid_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, -1)])
        assert snapshot_state(forest) == before


class TestForestChecking:
    def test_check_forest_rejects_cycle(self, forest):
        with pytest.raises(ValueError, match="cycle"):
            forest.batch_update(links=[(0, 2, 1.0, 10)], check_forest=True)
        assert not forest.has_edge(10)
        forest.rc.check_invariants()

    def test_check_forest_rejects_cycle_within_batch(self, forest):
        # The two links individually join distinct components, but together
        # they close a cycle.
        with pytest.raises(ValueError, match="cycle"):
            forest.batch_update(
                links=[(0, 3, 1.0, 10), (2, 4, 1.0, 11)], check_forest=True
            )
        forest.rc.check_invariants()

    def test_check_forest_accepts_valid_batch(self, forest):
        forest.batch_update(
            links=[(2, 3, 1.0, 10), (5, 6, 1.0, 11)], check_forest=True
        )
        assert forest.num_edges == 5
        forest.rc.check_invariants()

    def test_check_forest_allows_relink_after_cut(self, forest):
        # Cutting 0 disconnects {0} from {1,2}; relinking 0-2 is legal.
        forest.batch_update(
            links=[(0, 2, 7.0, 10)], cut_eids=[0], check_forest=True
        )
        assert forest.connected(0, 2)
        forest.rc.check_invariants()


class TestMSFRejections:
    def test_failed_batch_leaves_msf_intact(self):
        m = BatchIncrementalMSF(5)
        m.batch_insert([(0, 1, 1.0), (1, 2, 2.0)])
        before = sorted(m.msf_edges())
        with pytest.raises(ValueError):
            m.batch_insert([(0, 9, 1.0)])  # out of range
        assert sorted(m.msf_edges()) == before

    def test_forget_unknown_edge_raises(self):
        m = BatchIncrementalMSF(3)
        m.batch_insert([(0, 1, 1.0)])
        with pytest.raises(KeyError):
            m.forget_edges([42])
        assert m.num_msf_edges == 1
