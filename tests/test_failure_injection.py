"""Failure injection: malformed batches must raise *before* mutating state,
and a killed service apply loop must recover to the uninterrupted state.

Every rejection path is followed by a full invariant check and a
from-scratch snapshot comparison, proving the failed call was atomic.
The service section kills the apply loop at *every* WAL offset, at every
failpoint the commit sequence passes, on both RC-tree engines, and
requires recovery + resume to answer queries identically to a run that
never crashed.
"""

import random

import pytest

from repro.core import BatchIncrementalMSF
from repro.graphgen.streams import bursty_stream
from repro.service import InjectedCrash, ServiceClosed, ServiceConfig, StreamService
from repro.sliding_window import SWConnectivityEager
from repro.trees import DynamicForest


def snapshot_state(f: DynamicForest):
    return (f.rc.snapshot(), sorted(f.edges()), f.num_components)


@pytest.fixture()
def forest():
    f = DynamicForest(8, seed=5)
    f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1), (3, 4, 3.0, 2)])
    return f


class TestForestRejections:
    def test_cut_unknown_edge_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_cut([99])
        assert snapshot_state(forest) == before

    def test_cut_same_edge_twice_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_cut([0, 0])
        assert snapshot_state(forest) == before
        forest.batch_cut([0])  # a clean retry still works

    def test_mixed_batch_with_bad_cut_leaves_links_unapplied(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(KeyError):
            forest.batch_update(links=[(5, 6, 1.0, 10)], cut_eids=[0, 77])
        assert snapshot_state(forest) == before
        assert not forest.has_edge(10)

    def test_self_loop_link_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 10), (7, 7, 1.0, 11)])
        assert snapshot_state(forest) == before

    def test_duplicate_eid_within_batch_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 10), (6, 7, 1.0, 10)])
        assert snapshot_state(forest) == before

    def test_reusing_live_eid_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, 0)])
        assert snapshot_state(forest) == before

    def test_cut_and_relink_same_eid_in_one_batch_allowed(self, forest):
        forest.batch_update(links=[(5, 6, 9.0, 0)], cut_eids=[0])
        assert forest.edge_info(0) == (5, 6, 9.0)

    def test_out_of_range_endpoint_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(0, 99, 1.0, 10)])
        assert snapshot_state(forest) == before

    def test_negative_eid_is_atomic(self, forest):
        before = snapshot_state(forest)
        with pytest.raises(ValueError):
            forest.batch_link([(5, 6, 1.0, -1)])
        assert snapshot_state(forest) == before


class TestForestChecking:
    def test_check_forest_rejects_cycle(self, forest):
        with pytest.raises(ValueError, match="cycle"):
            forest.batch_update(links=[(0, 2, 1.0, 10)], check_forest=True)
        assert not forest.has_edge(10)
        forest.rc.check_invariants()

    def test_check_forest_rejects_cycle_within_batch(self, forest):
        # The two links individually join distinct components, but together
        # they close a cycle.
        with pytest.raises(ValueError, match="cycle"):
            forest.batch_update(
                links=[(0, 3, 1.0, 10), (2, 4, 1.0, 11)], check_forest=True
            )
        forest.rc.check_invariants()

    def test_check_forest_accepts_valid_batch(self, forest):
        forest.batch_update(
            links=[(2, 3, 1.0, 10), (5, 6, 1.0, 11)], check_forest=True
        )
        assert forest.num_edges == 5
        forest.rc.check_invariants()

    def test_check_forest_allows_relink_after_cut(self, forest):
        # Cutting 0 disconnects {0} from {1,2}; relinking 0-2 is legal.
        forest.batch_update(
            links=[(0, 2, 7.0, 10)], cut_eids=[0], check_forest=True
        )
        assert forest.connected(0, 2)
        forest.rc.check_invariants()


class TestMSFRejections:
    def test_failed_batch_leaves_msf_intact(self):
        m = BatchIncrementalMSF(5)
        m.batch_insert([(0, 1, 1.0), (1, 2, 2.0)])
        before = sorted(m.msf_edges())
        with pytest.raises(ValueError):
            m.batch_insert([(0, 9, 1.0)])  # out of range
        assert sorted(m.msf_edges()) == before

    def test_forget_unknown_edge_raises(self):
        m = BatchIncrementalMSF(3)
        m.batch_insert([(0, 1, 1.0)])
        with pytest.raises(KeyError):
            m.forget_edges([42])
        assert m.num_msf_edges == 1


# ----------------------------------------------------------------------
# Service crash recovery: kill the apply loop at every WAL offset
# ----------------------------------------------------------------------

SVC_N = 32
SVC_SEED = 21
SVC_ROUNDS = 6


def _svc_stream():
    rng = random.Random(SVC_SEED)
    return bursty_stream(
        SVC_N, rounds=SVC_ROUNDS, base_batch=4, burst_batch=12, window=24, rng=rng
    )


def _svc_config():
    # One flush per round; snapshot cadence 2 so replay crosses checkpoints.
    return ServiceConfig(flush_edges=10**9, snapshot_every=2)


def _svc_fingerprint(sw):
    return (
        sw.num_components,
        sorted(sw.forest_edges()),
        sw._msf.forest.rc.snapshot(),
        [
            (u, v, sw.is_connected(u, v))
            for u in range(SVC_N)
            for v in range(u + 1, SVC_N)
        ],
    )


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["object", "array"])
class TestServiceCrashRecovery:
    def _uninterrupted(self, engine):
        sw = SWConnectivityEager(SVC_N, seed=SVC_SEED, engine=engine)
        for b in _svc_stream():
            sw.batch_insert(list(b.edges))
            if b.expire:
                sw.batch_expire(b.expire)
        return sw

    @pytest.mark.parametrize(
        "point", ["before-wal-append", "after-wal-append", "mid-apply", "after-apply"]
    )
    def test_kill_at_every_wal_offset(self, tmp_path, engine, point):
        expected = _svc_fingerprint(self._uninterrupted(engine))
        stream = _svc_stream()

        def factory():
            return SWConnectivityEager(SVC_N, seed=SVC_SEED, engine=engine)

        for crash_lsn in range(SVC_ROUNDS):
            data_dir = tmp_path / f"{point}-{crash_lsn}"
            svc = StreamService(factory(), data_dir=data_dir, config=_svc_config())
            svc.failpoints[point] = lambda lsn, k=crash_lsn: lsn == k
            died = False
            for b in stream:
                try:
                    svc.submit(b)
                    svc.flush()
                except InjectedCrash:
                    died = True
                    break
            assert died, (point, crash_lsn)
            # The dead service behaves like a dead process.
            with pytest.raises(ServiceClosed):
                svc.submit_insert([(0, 1)])

            svc2 = StreamService.open(data_dir, factory, config=_svc_config())
            for b in stream[svc2.next_lsn :]:
                svc2.submit(b)
                svc2.flush()
            svc2.close()
            assert _svc_fingerprint(svc2.structure) == expected, (point, crash_lsn)

    @pytest.mark.parametrize("point", ["before-snapshot", "after-snapshot"])
    def test_kill_during_snapshot(self, tmp_path, engine, point):
        expected = _svc_fingerprint(self._uninterrupted(engine))
        stream = _svc_stream()

        def factory():
            return SWConnectivityEager(SVC_N, seed=SVC_SEED, engine=engine)

        # With snapshot_every=2 the cadence fires at lsn 1, 3, 5.
        crash_lsn = 3
        data_dir = tmp_path / f"{point}-{crash_lsn}"
        svc = StreamService(factory(), data_dir=data_dir, config=_svc_config())
        svc.failpoints[point] = lambda lsn: lsn == crash_lsn
        died = False
        for b in stream:
            try:
                svc.submit(b)
                svc.flush()
            except InjectedCrash:
                died = True
                break
        assert died
        svc2 = StreamService.open(data_dir, factory, config=_svc_config())
        for b in stream[svc2.next_lsn :]:
            svc2.submit(b)
            svc2.flush()
        svc2.close()
        assert _svc_fingerprint(svc2.structure) == expected
