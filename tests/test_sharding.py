"""Sharded serving tier: routing, contraction, and the differential contract.

The acceptance test of :mod:`repro.sharding` is byte-identity: a batch
answered by :class:`~repro.sharding.sharded.ShardedService` -- composed
from K shard-local structures through the contracted boundary graph --
must serialize to exactly the bytes the unsharded
:class:`~repro.service.query.QueryService` produces for the same stream
under the same token, on both engines, both partitioning schemes, both
window structures, and across a mid-stream shard failover.  The unit
tests around it pin the pieces that make the composition sound: stable
edge ownership, exact ``partition_skew`` conditioning in the loadgen
sampler, global-tau replay in the member adapter, and version-cached
contraction in the coordinator.
"""

from __future__ import annotations

import json
import pathlib
import random
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import Gateway, GatewayConfig
from repro.gateway.protocol import (
    BadRequest,
    dumps,
    jsonable,
    parse_consistency,
)
from repro.loadgen import PartitionSampler, _Zipfish
from repro.replication import ReplicatedService
from repro.service import ServiceConfig
from repro.service.query import QueryService, UnsupportedQuery
from repro.sharding import (
    SCHEMES,
    BoundaryCoordinator,
    ShardMember,
    ShardRouter,
    ShardedService,
    make_member_factory,
)
from repro.sliding_window.connectivity import (
    SWConnectivity,
    SWConnectivityEager,
)

N = 32
SEED = 13


def svc_config(**kw) -> ServiceConfig:
    return ServiceConfig(fsync=False, snapshot_every=0, **kw)


def canon(value) -> bytes:
    """The canonical wire bytes of a value -- the byte-identity yardstick."""
    return dumps(jsonable(value))


# -- router units -------------------------------------------------------


class TestShardRouter:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_placement_is_deterministic_and_total(self, scheme, k):
        a = ShardRouter(N, k, scheme=scheme)
        b = ShardRouter(N, k, scheme=scheme)
        for v in range(N):
            assert 0 <= a.shard_of(v) < k
            assert a.shard_of(v) == b.shard_of(v)
        if k == 1:
            assert all(a.shard_of(v) == 0 for v in range(N))
        # Every shard group must own at least one vertex at these sizes,
        # or the partition degenerates.
        assert {a.shard_of(v) for v in range(N)} == set(range(k))

    def test_range_blocks_are_contiguous(self):
        r = ShardRouter(N, 4, scheme="range")
        homes = [r.shard_of(v) for v in range(N)]
        assert homes == sorted(homes)

    def test_hash_seed_decorrelates_placements(self):
        a = ShardRouter(256, 4, scheme="hash", seed=1)
        b = ShardRouter(256, 4, scheme="hash", seed=2)
        assert any(a.shard_of(v) != b.shard_of(v) for v in range(256))

    def test_owner_is_symmetric_and_cut_detection_matches(self):
        r = ShardRouter(N, 3, scheme="hash")
        for u in range(N):
            for v in range(N):
                assert r.owner(u, v) == r.owner(v, u)
                assert r.owner(u, v) == r.shard_of(min(u, v))
                assert r.is_cut(u, v) == (r.shard_of(u) != r.shard_of(v))

    def test_split_partitions_and_preserves_order(self):
        r = ShardRouter(N, 4, scheme="range")
        rng = random.Random(SEED)
        rows = [
            (rng.randrange(N), rng.randrange(N), tau) for tau in range(50)
        ]
        split = r.split(rows)
        merged = sorted(
            (row for part in split.values() for row in part),
            key=lambda row: row[2],
        )
        assert merged == rows
        for shard, part in split.items():
            assert all(r.owner(u, v) == shard for u, v, _ in part)
            taus = [row[2] for row in part]
            assert taus == sorted(taus)  # per-shard tau subsequence

    def test_members_covers_the_vertex_space(self):
        r = ShardRouter(N, 3, scheme="hash")
        seen = [v for k in range(3) for v in r.members(k)]
        assert sorted(seen) == list(range(N))

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter(N, 0)
        with pytest.raises(ValueError, match="nonempty vertex space"):
            ShardRouter(0, 2)
        with pytest.raises(ValueError, match="unknown scheme"):
            ShardRouter(N, 2, scheme="round-robin")
        with pytest.raises(ValueError, match="outside"):
            ShardRouter(N, 2).shard_of(N)


# -- loadgen partition sampler ------------------------------------------


class TestPartitionSampler:
    def test_local_fraction_tracks_partition_skew(self):
        # The knob's contract: P(local) == partition_skew exactly, for
        # both conditioning directions.
        router = ShardRouter(64, 4, scheme="hash")
        for p in (0.25, 0.8):
            sampler = PartitionSampler(
                64, 1.1, router=router, partition_skew=p
            )
            rng = random.Random(SEED)
            draws = 3000
            local = sum(
                1
                for _ in range(draws)
                if not router.is_cut(*sampler.draw_pair(rng))
            )
            assert abs(local / draws - p) < 0.04

    def test_extremes_are_exact(self):
        router = ShardRouter(64, 4, scheme="range")
        rng = random.Random(SEED)
        allin = PartitionSampler(64, 1.1, router=router, partition_skew=1.0)
        assert all(
            not router.is_cut(*allin.draw_pair(rng)) for _ in range(300)
        )
        allout = PartitionSampler(64, 1.1, router=router, partition_skew=0.0)
        assert all(
            router.is_cut(*allout.draw_pair(rng)) for _ in range(300)
        )

    def test_single_shard_is_the_plain_popularity_law(self):
        # K=1 drops the router entirely: identical draws to two
        # unconditioned _Zipfish samples under the same rng stream.
        sampler = PartitionSampler(
            64, 1.1, router=ShardRouter(64, 1), partition_skew=0.5
        )
        base = _Zipfish(64, 1.1)
        a, b = random.Random(SEED), random.Random(SEED)
        for _ in range(100):
            assert sampler.draw_pair(a) == (base.draw(b), base.draw(b))

    def test_partition_skew_is_validated(self):
        with pytest.raises(ValueError, match="partition_skew"):
            PartitionSampler(8, 1.0, partition_skew=1.5)


# -- member adapter ------------------------------------------------------


class TestShardMember:
    def test_global_taus_drive_weights_and_expiry(self):
        m = ShardMember(SWConnectivityEager(8, seed=1))
        # Rows carry non-contiguous global taus -- the shard sees only
        # its subsequence of the global stream.
        m.batch_insert([(0, 1, 0), (1, 2, 3)])
        assert m.is_connected(0, 2)
        m.batch_expire(1)  # global window start -> 1: tau 0 expires
        assert m.window_start == 1
        assert not m.is_connected(0, 1)
        assert m.is_connected(1, 2)

    def test_reapplies_window_start_after_catching_up(self):
        # An expire past the local arrival tip caps there; the next
        # insert advances the tip and must re-cap to the global target.
        m = ShardMember(SWConnectivityEager(8, seed=1))
        m.batch_insert([(0, 1, 0)])
        m.batch_expire(5)  # target 5, local tip is only 1
        m.batch_insert([(2, 3, 6), (3, 4, 7)])
        assert m.window_start == 5
        assert not m.is_connected(0, 1)  # tau 0 expired on the re-cap
        assert m.is_connected(2, 4)

    def test_shard_forest_is_eid_sorted_quadruples(self):
        m = ShardMember(SWConnectivityEager(8, seed=1))
        m.batch_insert([(4, 5, 0), (0, 1, 1), (1, 2, 2)])
        forest = m.shard_forest()
        assert [e[3] for e in forest] == sorted(e[3] for e in forest)
        assert all(len(e) == 4 for e in forest)
        assert {e[3] for e in forest} == {0, 1, 2}


# -- boundary coordinator -----------------------------------------------


def _rows(*edges):
    """``(u, v, tau)`` edges -> forest rows ``(u, v, -tau, tau)``."""
    return [(u, v, float(-tau), tau) for u, v, tau in edges]


class TestBoundaryCoordinator:
    def test_versions_deltas_and_invalidate(self):
        c = BoundaryCoordinator(8, 2)
        assert c.version(0) == -1
        assert c.update(0, _rows((0, 1, 0), (1, 2, 1)), version=3) == 2
        assert c.version(0) == 3
        # Same forest again: zero delta, version still advances.
        assert c.update(0, _rows((0, 1, 0), (1, 2, 1)), version=5) == 0
        assert c.version(0) == 5
        c.invalidate(0)
        assert c.version(0) == -1
        # The cached forest survives invalidation (only trust is lost).
        assert c.connected(0, 2)

    def test_star_union_glues_shards_through_shared_vertices(self):
        c = BoundaryCoordinator(8, 2)
        c.update(0, _rows((0, 1, 0), (2, 3, 1)), version=1)
        c.update(1, _rows((1, 2, 2)), version=1)  # bridges both locals
        assert c.connected(0, 3)
        assert c.connected(0, 0)
        assert not c.connected(0, 5)  # 5 untouched: isolated
        # Components: one glued class {0,1,2,3} + 4 isolated vertices.
        assert c.components() == 5

    def test_path_max_is_the_global_msf_answer(self):
        c = BoundaryCoordinator(8, 2)
        c.update(0, _rows((0, 1, 5), (1, 2, 1)), version=1)
        c.update(1, _rows((2, 3, 4)), version=1)
        # Weights are -tau: the heaviest edge on 0--3 is the oldest tau.
        assert c.path_max(0, 3) == (-1.0, 1)
        assert c.path_max(0, 0) is None
        assert c.path_max(0, 7) is None

    def test_connected_lazy_applies_the_recent_edge_lemma(self):
        c = BoundaryCoordinator(8, 1)
        c.update(0, _rows((0, 1, 2), (1, 2, 7)), version=1)
        assert c.connected_lazy(0, 2, window_start=2)
        # Window start moves past tau 2: the path's oldest edge is
        # logically expired even though the lazy forest still holds it.
        assert not c.connected_lazy(0, 2, window_start=3)
        assert c.connected_lazy(1, 2, window_start=3)
        assert c.connected_lazy(5, 5, window_start=99)


# -- the differential contract ------------------------------------------


def _mixed_batch(sampler, rng, eager):
    batch = [("window_size",)]
    if eager:
        batch.append(("components",))
    for i in range(6):
        kind = "connected" if i % 2 == 0 else "path_max"
        batch.append((kind, *sampler.draw_pair(rng)))
    u = rng.randrange(N)
    batch.append(("connected", u, u))
    batch.append(("path_max", u, u))
    return batch


def _drive_differential(
    tmp_path, *, eager, scheme, k, engine, rounds=30, promote_at=None
):
    """One seeded stream through both tiers, comparing canonical bytes.

    Returns the sharded service (inside the caller's ``with``) so tests
    can poke at topology afterwards.
    """
    cls = SWConnectivityEager if eager else SWConnectivity
    router = ShardRouter(N, k, scheme=scheme)
    oracle = ReplicatedService(
        lambda: cls(N, seed=SEED, engine=engine),
        tmp_path / "oracle",
        svc_config(),
    )
    oq = QueryService(oracle)
    svc = ShardedService(
        make_member_factory(N, seed=SEED, engine=engine, eager=eager),
        tmp_path / "sharded",
        router,
        svc_config(),
        followers=2 if promote_at is not None else 0,
    )
    sampler = PartitionSampler(N, 1.1, router=router, partition_skew=0.7)
    rng = random.Random(SEED)
    try:
        for step in range(rounds):
            edges = [sampler.draw_pair(rng) for _ in range(4)]
            expire = rng.choice((0, 0, 1, 3))
            token = oracle.write(edges, expire)
            vector = svc.write(edges, expire=expire)
            if promote_at is not None and step == promote_at[0]:
                svc.poll()
                zombie = svc.promote(promote_at[1])
                zombie.close()
                assert svc.epochs[promote_at[1]] == 1
            if step % 3 == 2 or step == rounds - 1:
                batch = _mixed_batch(sampler, rng, eager)
                want = oq.run(batch, at_least=token)
                got = svc.query(batch, at_least=vector)
                assert canon(got.answers) == canon(want.answers), (
                    f"step {step}: {got.answers} != {want.answers}"
                )
    finally:
        oracle.close()
        svc.close()


@pytest.mark.parametrize(
    ("eager", "scheme", "k", "engine"),
    [
        (True, "hash", 2, None),
        (True, "range", 4, "array"),
        (False, "range", 3, None),
        (False, "hash", 2, "object"),
        (True, "hash", 1, None),  # K=1 facade == the unsharded tier
    ],
    ids=["eager-hash-k2", "eager-range-k4", "lazy-range-k3",
         "lazy-hash-k2-object", "eager-k1"],
)
def test_sharded_answers_match_the_unsharded_oracle(
    tmp_path, eager, scheme, k, engine
):
    _drive_differential(
        tmp_path, eager=eager, scheme=scheme, k=k, engine=engine
    )


def test_failover_mid_stream_keeps_the_differential(tmp_path):
    # Kill/promote shard 1's primary mid-stream; answers must stay
    # byte-identical and the shard's epoch must fence forward.
    _drive_differential(
        tmp_path,
        eager=True,
        scheme="hash",
        k=3,
        engine=None,
        promote_at=(12, 1),
    )


@settings(deadline=None, max_examples=12)
@given(
    step=st.integers(3, 18),
    shard=st.integers(0, 1),
    catch_up=st.booleans(),
)
def test_failover_schedule_differential(step, shard, catch_up):
    # Hypothesis moves the failover point, the victim shard, and the
    # promotion mode; the post-promotion tier must still answer exactly
    # like a fresh oracle replaying the *surviving* log.  With
    # catch_up=True nothing is lost and the original oracle stays valid.
    rounds = 22
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = pathlib.Path(tmp)
        router = ShardRouter(N, 2, scheme="hash")
        svc = ShardedService(
            make_member_factory(N, seed=SEED),
            tmp_path / "sharded",
            router,
            svc_config(),
            followers=1,
        )
        oracle = ReplicatedService(
            lambda: SWConnectivityEager(N, seed=SEED),
            tmp_path / "oracle",
            svc_config(),
        )
        oq = QueryService(oracle)
        sampler = PartitionSampler(N, 1.1, router=router, partition_skew=0.7)
        rng = random.Random(SEED)
        try:
            vector = token = None
            for i in range(rounds):
                edges = [sampler.draw_pair(rng) for _ in range(3)]
                expire = 1 if i % 4 == 3 else 0
                token = oracle.write(edges, expire)
                vector = svc.write(edges, expire=expire)
                if i == step:
                    svc.poll()  # catch the follower up: nothing to lose
                    zombie = svc.promote(shard, catch_up=catch_up)
                    zombie.close()
                    assert svc.epochs[shard] == 1
            batch = _mixed_batch(sampler, rng, eager=True)
            want = oq.run(batch, at_least=token)
            got = svc.query(batch, at_least=vector)
            assert canon(got.answers) == canon(want.answers)
        finally:
            oracle.close()
            svc.close()


# -- facade semantics ----------------------------------------------------


class TestShardedServiceFacade:
    def make(self, tmp_path, k=2, **kw):
        router = ShardRouter(N, k, scheme="hash")
        return ShardedService(
            make_member_factory(N, seed=SEED, **{
                key: kw.pop(key) for key in ("eager",) if key in kw
            }),
            tmp_path,
            router,
            svc_config(),
            **kw,
        )

    def test_write_returns_a_full_vector_token(self, tmp_path):
        with self.make(tmp_path, k=3) as svc:
            vec = svc.write([(0, 1)])
            assert len(vec) == 3
            # Untouched shards report their committed tip (-1 + 0 rounds)
            owner = svc.router.owner(0, 1)
            assert vec[owner] == 0
            assert all(v == -1 for k, v in enumerate(vec) if k != owner)

    def test_vector_length_is_validated(self, tmp_path):
        with self.make(tmp_path, k=2) as svc:
            svc.write([(0, 1)])
            with pytest.raises(ValueError, match="2 shards"):
                svc.query([("window_size",)], at_least=[0])

    def test_unsupported_kinds_raise(self, tmp_path):
        with self.make(tmp_path, k=2) as svc:
            svc.write([(0, 1)])
            with pytest.raises(UnsupportedQuery, match="sharded reads"):
                svc.query([("msf_weight",)])

    def test_lazy_tier_refuses_components(self, tmp_path):
        with self.make(tmp_path, k=2, eager=False) as svc:
            svc.write([(0, 1)])
            with pytest.raises(UnsupportedQuery, match="components"):
                svc.query([("components",)])

    def test_parallel_fanout_commits_the_same_vector(self, tmp_path):
        router = ShardRouter(N, 2, scheme="range")
        edges = [(0, 1), (N - 2, N - 1), (1, N - 1)]
        with ShardedService(
            make_member_factory(N, seed=SEED),
            tmp_path / "par",
            router,
            svc_config(),
            parallel=True,
        ) as par, ShardedService(
            make_member_factory(N, seed=SEED),
            tmp_path / "seq",
            router,
            svc_config(),
        ) as seq:
            assert par.write(edges) == seq.write(edges)
            batch = [("connected", 0, N - 1), ("path_max", 1, N - 2)]
            assert canon(par.query(batch).answers) == canon(
                seq.query(batch).answers
            )

    def test_describe_reports_the_fleet(self, tmp_path):
        with self.make(tmp_path, k=2, followers=1) as svc:
            svc.write([(0, 1), (2, 3)], expire=1)
            d = svc.describe()
            assert d["router"]["shards"] == 2
            assert d["clock"] == {"t": 2, "tw": 1}
            assert len(d["groups"]) == 2
            assert all(len(g["followers"]) == 1 for g in d["groups"])
            json.dumps(d)  # health endpoint payload must be JSON-ready

    def test_promote_requires_a_live_follower(self, tmp_path):
        with self.make(tmp_path, k=2, followers=0) as svc:
            with pytest.raises(ValueError, match="no live follower"):
                svc.promote(0)


# -- gateway integration -------------------------------------------------


class _Client:
    def __init__(self, gw: Gateway) -> None:
        import http.client

        host, port = gw.address
        self.conn = http.client.HTTPConnection(host, port, timeout=10)

    def request(self, method, path, body=None):
        headers = {"Content-Type": "application/json"} if body else {}
        self.conn.request(method, path, body=body, headers=headers)
        resp = self.conn.getresponse()
        return resp.status, resp.read()

    def post(self, path, payload):
        status, raw = self.request("POST", path, json.dumps(payload).encode())
        return status, raw

    def close(self):
        self.conn.close()


@pytest.fixture
def sharded_gateway(tmp_path):
    router = ShardRouter(N, 2, scheme="hash")
    with ShardedService(
        make_member_factory(N, seed=SEED),
        tmp_path / "sharded",
        router,
        svc_config(),
    ) as svc:
        gw = Gateway(svc, GatewayConfig(port=0)).start()
        try:
            yield gw, svc
        finally:
            gw.close()


class TestShardedGateway:
    def test_write_read_differential_through_http(
        self, sharded_gateway, tmp_path
    ):
        gw, svc = sharded_gateway
        oracle = ReplicatedService(
            lambda: SWConnectivityEager(N, seed=SEED),
            tmp_path / "oracle",
            svc_config(),
        )
        oq = QueryService(oracle)
        client = _Client(gw)
        rng = random.Random(SEED)
        try:
            vector = token = None
            for i in range(10):
                edges = [
                    [rng.randrange(N), rng.randrange(N)] for _ in range(3)
                ]
                expire = 1 if i % 3 == 2 else 0
                status, raw = client.post(
                    "/v1/write", {"edges": edges, "expire": expire}
                )
                assert status == 200
                body = json.loads(raw)
                vector = body["lsn"]
                assert body["epoch"] == [0, 0]
                token = oracle.write(
                    [tuple(e) for e in edges], expire
                )
            assert len(vector) == 2
            queries = [
                ["connected", 0, 5],
                ["path_max", 1, 9],
                ["components"],
                ["window_size"],
            ]
            status, raw = client.post(
                "/v1/read", {"queries": queries, "at_least": vector}
            )
            assert status == 200
            prefix = b'{"answers":'
            assert raw.startswith(prefix)
            got = raw[len(prefix): raw.index(b',"lsn":')]
            want = oq.run(
                [tuple(q) for q in queries], at_least=token
            ).answers
            assert got == canon(want)
            body = json.loads(raw)
            assert body["replica"] == "sharded"
            assert len(body["lsn"]) == 2
        finally:
            client.close()
            oracle.close()

    def test_health_reports_the_sharded_fleet(self, sharded_gateway):
        gw, _ = sharded_gateway
        client = _Client(gw)
        try:
            status, raw = client.request("GET", "/v1/health")
            assert status == 200
            body = json.loads(raw)
            assert body["sharded"] is True
            assert body["status"] == "ok"
            assert body["router"]["shards"] == 2
            assert len(body["shards"]) == 2
        finally:
            client.close()

    def test_scalar_token_is_rejected_against_sharded_backend(
        self, sharded_gateway
    ):
        gw, _ = sharded_gateway
        client = _Client(gw)
        try:
            status, raw = client.post(
                "/v1/read",
                {"queries": [["window_size"]], "at_least": 3},
            )
            assert status == 400
            assert "per-shard" in json.loads(raw)["error"]["message"]
        finally:
            client.close()


class TestVectorConsistencyParsing:
    def test_vector_tokens_parse_against_sharded_backends(self):
        assert parse_consistency(
            {"at_least": [0, -1, 7]}, shards=3
        ) == ([0, -1, 7], None)
        assert parse_consistency({}, shards=3) == (None, None)

    @pytest.mark.parametrize(
        "bad", [3, [0], [0, 1, 2, 3], [0, "x", 1], [0, -2, 1]]
    )
    def test_malformed_vectors_are_bad_requests(self, bad):
        with pytest.raises(BadRequest):
            parse_consistency({"at_least": bad}, shards=3)

    def test_unsharded_path_is_unchanged(self):
        assert parse_consistency({"at_least": 4}) == (4, None)
        with pytest.raises(BadRequest):
            parse_consistency({"at_least": [1, 2]})


# -- multi-directory WAL report (satellite) ------------------------------


class TestMultiDirWalReport:
    def _sharded_dirs(self, tmp_path):
        router = ShardRouter(N, 2, scheme="range")
        with ShardedService(
            make_member_factory(N, seed=SEED),
            tmp_path,
            router,
            svc_config(),
        ) as svc:
            for i in range(4):
                svc.write([(i, i + 1), (N - 2 - i, N - 1 - i)])
        return [tmp_path / "shard0", tmp_path / "shard1"]

    def test_per_shard_lines_plus_combined_summary(self, tmp_path, capsys):
        from repro.report import main

        dirs = self._sharded_dirs(tmp_path)
        assert main(["--wal", str(dirs[0]), str(dirs[1])]) == 0
        out = capsys.readouterr().out
        assert out.count("segment(s)") == 3  # two shards + combined
        assert "combined: 2/2 dirs" in out
        assert "8 rounds" in out  # 4 rounds x 2 shards

    def test_single_dir_keeps_the_original_format(self, tmp_path, capsys):
        from repro.report import main

        dirs = self._sharded_dirs(tmp_path)
        assert main(["--wal", str(dirs[0])]) == 0
        out = capsys.readouterr().out
        assert "combined" not in out

    def test_one_bad_dir_fails_but_reports_the_rest(self, tmp_path, capsys):
        from repro.report import main

        dirs = self._sharded_dirs(tmp_path)
        assert main(["--wal", str(dirs[0]), str(tmp_path / "nope")]) == 1
        captured = capsys.readouterr()
        assert "lsn [0, 4)" in captured.out
        assert "combined: 1/2 dirs" in captured.out
        assert "no WAL" in captured.err
