"""Unit, oracle and property tests for the static MSF kernels.

All four kernels (Kruskal, Boruvka, Prim, KKT) must select the *identical*
edge set because ties break by edge id, making the MSF unique.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.msf import (
    EdgeArray,
    boruvka_msf,
    canonical_edges,
    filter_kruskal_msf,
    kkt_msf,
    kruskal_msf,
    prim_msf,
)
from repro.runtime import CostModel

from tests.helpers import (
    is_forest,
    msf_weight_of,
    nx_msf_weight,
    random_edge_array,
    spans_same_components,
)

KERNELS = {
    "kruskal": kruskal_msf,
    "filter-kruskal": filter_kruskal_msf,
    "boruvka": boruvka_msf,
    "prim": prim_msf,
    "kkt": kkt_msf,
}


@pytest.fixture(params=sorted(KERNELS))
def kernel(request):
    return KERNELS[request.param]


class TestEdgeArray:
    def test_from_tuples_assigns_eids(self):
        e = EdgeArray.from_tuples(3, [(0, 1, 0.5), (1, 2, 0.25)])
        assert e.eid.tolist() == [0, 1]
        assert e.m == 2

    def test_explicit_eids(self):
        e = EdgeArray.from_tuples(3, [(0, 1, 0.5, 10), (1, 2, 0.25, 20)])
        assert e.eid.tolist() == [10, 20]

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(ValueError):
            EdgeArray.from_tuples(2, [(0, 2, 1.0)])

    def test_mismatched_arrays_raise(self):
        z = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            EdgeArray(3, z, z, np.zeros(3), z)

    def test_weight_order_breaks_ties_by_eid(self):
        e = EdgeArray.from_tuples(4, [(0, 1, 1.0, 5), (1, 2, 1.0, 2), (2, 3, 0.5, 9)])
        assert e.weight_order().tolist() == [2, 1, 0]

    def test_concat_and_take(self):
        a = EdgeArray.from_tuples(4, [(0, 1, 1.0)])
        b = EdgeArray.from_tuples(4, [(2, 3, 2.0, 7)])
        c = a.concat(b)
        assert c.m == 2
        sub = c.take(np.array([1]))
        assert sub.u.tolist() == [2]

    def test_concat_vertex_mismatch_raises(self):
        a = EdgeArray.from_tuples(4, [])
        b = EdgeArray.from_tuples(5, [])
        with pytest.raises(ValueError):
            a.concat(b)

    def test_canonical_drops_loops_and_parallels(self):
        e = EdgeArray.from_tuples(
            3,
            [(0, 0, 1.0, 0), (0, 1, 2.0, 1), (1, 0, 1.5, 2), (1, 2, 3.0, 3)],
        )
        c = canonical_edges(e)
        assert c.m == 2
        assert set(c.eid.tolist()) == {2, 3}  # keeps the lighter parallel edge

    def test_canonical_parallel_tie_breaks_by_eid(self):
        e = EdgeArray.from_tuples(2, [(0, 1, 1.0, 9), (1, 0, 1.0, 3)])
        c = canonical_edges(e)
        assert c.eid.tolist() == [3]


class TestKernelsSmall:
    def test_triangle(self, kernel):
        e = EdgeArray.from_tuples(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        pos = kernel(e)
        assert sorted(pos.tolist()) == [0, 1]

    def test_empty_graph(self, kernel):
        e = EdgeArray.from_tuples(5, [])
        assert kernel(e).size == 0

    def test_single_edge(self, kernel):
        e = EdgeArray.from_tuples(2, [(0, 1, 1.0)])
        assert kernel(e).tolist() == [0]

    def test_self_loops_ignored(self, kernel):
        e = EdgeArray.from_tuples(2, [(0, 0, 0.1), (0, 1, 5.0), (1, 1, 0.2)])
        assert kernel(e).tolist() == [1]

    def test_parallel_edges_pick_lightest(self, kernel):
        e = EdgeArray.from_tuples(2, [(0, 1, 5.0), (0, 1, 1.0), (1, 0, 3.0)])
        assert kernel(e).tolist() == [1]

    def test_disconnected_components(self, kernel):
        e = EdgeArray.from_tuples(
            6, [(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0), (4, 5, 9.0)]
        )
        assert sorted(kernel(e).tolist()) == [0, 1, 2, 3]

    def test_equal_weights_unique_by_eid(self, kernel):
        # A 4-cycle with all-equal weights: the unique MSF drops eid 3.
        e = EdgeArray.from_tuples(
            4, [(0, 1, 1.0, 0), (1, 2, 1.0, 1), (2, 3, 1.0, 2), (3, 0, 1.0, 3)]
        )
        assert sorted(kernel(e).tolist()) == [0, 1, 2]


class TestKernelsRandomOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_weight(self, kernel, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 60)
        m = rng.randrange(0, 180)
        e = random_edge_array(n, m, rng)
        pos = kernel(e)
        assert is_forest(e, pos)
        assert spans_same_components(e, pos)
        assert msf_weight_of(e, pos) == pytest.approx(nx_msf_weight(e))

    @pytest.mark.parametrize("seed", range(6))
    def test_all_kernels_identical_selection(self, seed):
        rng = random.Random(100 + seed)
        e = random_edge_array(40, 150, rng)
        results = {name: sorted(k(e).tolist()) for name, k in KERNELS.items()}
        vals = list(results.values())
        assert all(v == vals[0] for v in vals), results

    def test_kkt_deterministic_given_seed(self):
        rng = random.Random(5)
        e = random_edge_array(80, 400, rng)
        a = kkt_msf(e, seed=1).tolist()
        b = kkt_msf(e, seed=1).tolist()
        c = kkt_msf(e, seed=2).tolist()
        assert a == b == c  # selection is unique regardless of seed

    def test_larger_graph(self):
        rng = random.Random(11)
        e = random_edge_array(500, 3000, rng)
        k = sorted(kruskal_msf(e).tolist())
        assert sorted(kkt_msf(e).tolist()) == k
        assert sorted(boruvka_msf(e).tolist()) == k


class TestKernelCosts:
    def test_kruskal_charges_sort_work(self):
        cm = CostModel()
        e = random_edge_array(32, 128, random.Random(0))
        kruskal_msf(e, cost=cm)
        assert cm.work >= 128 * 7

    def test_boruvka_work_scales_linearithmic(self):
        rng = random.Random(1)
        e = random_edge_array(256, 1024, rng)
        cm = CostModel()
        boruvka_msf(e, cost=cm)
        assert 0 < cm.work < 40 * 1024  # O(m lg n) with small constants

    def test_kkt_work_linear_ish(self):
        rng = random.Random(2)
        small = random_edge_array(128, 512, rng)
        big = random_edge_array(1024, 4096, rng)
        c1, c2 = CostModel(), CostModel()
        kkt_msf(small, cost=c1)
        kkt_msf(big, cost=c2)
        # 8x the edges should cost within ~16x the work (near-linear).
        assert c2.work < 16 * max(c1.work, 1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 25),
    edges=st.lists(
        st.tuples(st.integers(0, 24), st.integers(0, 24), st.integers(0, 20)),
        max_size=80,
    ),
)
def test_property_all_kernels_agree(n, edges):
    rows = [(u % n, v % n, float(w), i) for i, (u, v, w) in enumerate(edges)]
    e = EdgeArray.from_tuples(n, rows)
    expected = sorted(kruskal_msf(e).tolist())
    assert sorted(boruvka_msf(e).tolist()) == expected
    assert sorted(prim_msf(e).tolist()) == expected
    assert sorted(kkt_msf(e).tolist()) == expected
    assert sorted(filter_kruskal_msf(e).tolist()) == expected
