"""Tests for the verify_msf utility, the euclidean generator, and the
report aggregator CLI."""

import pathlib
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphgen.random_graphs import euclidean_knn_edges
from repro.msf import EdgeArray, kruskal_msf, verify_msf
from repro.report import build_report, main as report_main


class TestVerifyMSF:
    def _graph(self, seed, n=20, m=60):
        rng = random.Random(seed)
        rows = [
            (rng.randrange(n), rng.randrange(n), round(rng.uniform(0, 5), 2), i)
            for i in range(m)
        ]
        return EdgeArray.from_tuples(n, [r for r in rows if r[0] != r[1]])

    @pytest.mark.parametrize("seed", range(6))
    def test_accepts_true_msf(self, seed):
        e = self._graph(seed)
        assert verify_msf(e, kruskal_msf(e))

    @pytest.mark.parametrize("seed", range(6))
    def test_rejects_swapped_edge(self, seed):
        e = self._graph(seed)
        pos = kruskal_msf(e)
        rejected = sorted(set(range(e.m)) - set(pos.tolist()))
        if not rejected or not len(pos):
            pytest.skip("degenerate graph")
        bad = sorted(set(pos.tolist()) - {int(pos[0])} | {rejected[0]})
        assert not verify_msf(e, np.asarray(bad, dtype=np.int64))

    def test_rejects_non_spanning(self):
        e = EdgeArray.from_tuples(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert verify_msf(e, np.array([0, 1]))
        assert not verify_msf(e, np.array([0]))

    def test_rejects_cycle(self):
        e = EdgeArray.from_tuples(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert not verify_msf(e, np.array([0, 1, 2]))

    def test_rejects_heavier_parallel_choice(self):
        e = EdgeArray.from_tuples(2, [(0, 1, 1.0, 0), (0, 1, 5.0, 1)])
        assert verify_msf(e, np.array([0]))
        assert not verify_msf(e, np.array([1]))

    def test_tie_break_uniqueness(self):
        e = EdgeArray.from_tuples(3, [(0, 1, 1.0, 0), (1, 2, 1.0, 1), (2, 0, 1.0, 2)])
        assert verify_msf(e, np.array([0, 1]))  # the unique (w, eid) MSF
        assert not verify_msf(e, np.array([1, 2]))  # equal weight, wrong ids

    def test_empty_graph(self):
        e = EdgeArray.from_tuples(4, [])
        assert verify_msf(e, np.empty(0, dtype=np.int64))

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 15),
        rows=st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 14), st.integers(0, 9)),
            max_size=40,
        ),
    )
    def test_property_kruskal_always_verifies(self, n, rows):
        rows = [(u % n, v % n, float(w), i) for i, (u, v, w) in enumerate(rows)]
        rows = [r for r in rows if r[0] != r[1]]
        e = EdgeArray.from_tuples(n, rows)
        assert verify_msf(e, kruskal_msf(e))


class TestEuclideanGenerator:
    def test_knn_shape(self):
        pts = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (10.0, 0.0)]
        edges = euclidean_knn_edges(pts, k=1)
        pairs = {(min(u, v), max(u, v)) for u, v, _ in edges}
        assert (0, 1) in pairs and (1, 2) in pairs
        assert all(w > 0 for _, _, w in edges)

    def test_knn_dedupes_symmetric_pairs(self):
        pts = [(0.0, 0.0), (1.0, 0.0)]
        edges = euclidean_knn_edges(pts, k=1)
        assert len(edges) == 1

    def test_weights_are_distances(self):
        pts = [(0.0, 0.0), (3.0, 4.0)]
        ((_, _, w),) = euclidean_knn_edges(pts, k=1)
        assert w == pytest.approx(5.0)


class TestReport:
    def test_build_report_collects_tables(self, tmp_path: pathlib.Path):
        (tmp_path / "thm11_work_scaling.txt").write_text("THE TABLE")
        (tmp_path / "custom_extra.txt").write_text("EXTRA")
        report = build_report(tmp_path)
        assert "Theorem 1.1" in report
        assert "THE TABLE" in report
        assert "Other results" in report and "EXTRA" in report

    def test_main_writes_report(self, tmp_path: pathlib.Path):
        (tmp_path / "table1_msf.txt").write_text("ROW")
        assert report_main([str(tmp_path)]) == 0
        assert "ROW" in (tmp_path / "REPORT.md").read_text()

    def test_main_missing_dir(self, tmp_path: pathlib.Path):
        assert report_main([str(tmp_path / "nope")]) == 1

    def test_build_report_places_gateway_in_service_layer(
        self, tmp_path: pathlib.Path
    ):
        (tmp_path / "gateway.txt").write_text("GATEWAY TABLE")
        report = build_report(tmp_path)
        assert "Service layer" in report and "GATEWAY TABLE" in report

    def test_trace_renders_committed_gateway_record(self, capsys):
        """``--trace`` on the committed gateway benchmark artifact."""
        rec = (
            pathlib.Path(__file__).resolve().parent.parent
            / "bench_results" / "gateway.json"
        )
        assert report_main(["--trace", str(rec)]) == 0
        out = capsys.readouterr().out
        assert "gateway" in out
        # The sweep configuration is stamped into the record's params.
        assert "params:" in out and "workers=" in out
