"""Tests for the batch-dynamic RC forest (contraction + change propagation).

The strongest check exploits determinism: the leveled contraction is a pure
function of (edge set, seed), so after any sequence of batch updates the
full state snapshot must be *identical* to that of a freshly built forest
over the same edges.
"""

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import CostModel
from repro.trees.cluster import ClusterKind
from repro.trees.rcforest import RCForest
from repro.trees.ternary import InternalLink


def path_links(k, w0=0.0):
    return [InternalLink(i, i + 1, w0 + i, 1000 + i) for i in range(k - 1)]


class TestBuild:
    def test_empty_forest(self):
        f = RCForest(vertices=range(5))
        f.check_invariants()
        assert f.num_vertices == 5 and f.num_edges == 0
        assert not f.connected(0, 1)

    def test_isolated_vertices_are_nullary_roots(self):
        f = RCForest(vertices=range(3))
        for v in range(3):
            assert f.root_cluster(v).kind is ClusterKind.NULLARY
            assert f.root_cluster(v).rep == v

    def test_single_edge(self):
        f = RCForest(vertices=range(2))
        f.batch_update(links=[InternalLink(0, 1, 5.0, 0)])
        f.check_invariants()
        assert f.connected(0, 1)
        assert f.num_edges == 1

    def test_path_contracts_logarithmically(self):
        f = RCForest(vertices=range(256), seed=11)
        f.batch_update(links=path_links(256))
        f.check_invariants()
        assert f.connected(0, 255)
        assert f.num_levels <= 40  # O(lg n) levels w.h.p.

    def test_star_contracts(self):
        f = RCForest(vertices=range(64))
        f.batch_update(links=[InternalLink(0, i, 1.0, i) for i in range(1, 64)])
        f.check_invariants()
        assert all(f.connected(0, i) for i in range(1, 64))

    def test_two_vertex_tree_tiebreak(self):
        f = RCForest(vertices=[7, 3])
        f.batch_update(links=[InternalLink(7, 3, 1.0, 0)])
        f.check_invariants()
        # The smaller id rakes; the larger finalizes as the root.
        assert f.root_cluster(3).rep == 7
        assert f.comp[3].kind is ClusterKind.UNARY

    def test_duplicate_link_raises(self):
        f = RCForest(vertices=range(2))
        f.batch_update(links=[InternalLink(0, 1, 1.0, 0)])
        with pytest.raises(ValueError):
            f.batch_update(links=[InternalLink(1, 0, 2.0, 1)])

    def test_duplicate_eid_raises(self):
        f = RCForest(vertices=range(4))
        f.batch_update(links=[InternalLink(0, 1, 1.0, 0)])
        with pytest.raises(ValueError):
            f.batch_update(links=[InternalLink(2, 3, 1.0, 0)])

    def test_cut_unknown_edge_raises(self):
        f = RCForest(vertices=range(2))
        with pytest.raises(KeyError):
            f.batch_update(cuts=[(0, 1, 5)])

    def test_ensure_vertex_dynamic(self):
        f = RCForest(vertices=range(2))
        f.batch_update(links=[InternalLink(0, 5, 1.0, 0)])  # vertex 5 appears
        f.check_invariants()
        assert f.connected(0, 5)


class TestDeterminism:
    def test_build_matches_rebuild(self):
        f = RCForest(vertices=range(40), seed=123)
        f.batch_update(links=path_links(40))
        assert f.snapshot() == f.rebuilt_copy().snapshot()

    def test_incremental_equals_batch(self):
        # Linking one at a time or all at once must give identical state.
        links = path_links(32)
        one = RCForest(vertices=range(32), seed=5)
        for l in links:
            one.batch_update(links=[l])
        allatonce = RCForest(vertices=range(32), seed=5)
        allatonce.batch_update(links=links)
        assert one.snapshot() == allatonce.snapshot()

    def test_cut_then_relink_restores_state(self):
        links = path_links(20)
        f = RCForest(vertices=range(20), seed=5)
        f.batch_update(links=links)
        before = f.snapshot()
        l = links[10]
        f.batch_update(cuts=[(l.a, l.b, l.eid)])
        assert f.snapshot() != before
        f.batch_update(links=[l])
        assert f.snapshot() == before

    def test_different_seeds_differ_structurally(self):
        a = RCForest(vertices=range(64), seed=1)
        a.batch_update(links=path_links(64))
        b = RCForest(vertices=range(64), seed=2)
        b.batch_update(links=path_links(64))
        assert a.snapshot() != b.snapshot()


class TestPathAugmentation:
    def test_root_of_path_sees_heaviest_somewhere(self):
        f = RCForest(vertices=range(8), seed=3)
        f.batch_update(links=path_links(8))
        f.check_invariants()  # includes binary path-max consistency

    def test_binary_cluster_weight_raises_on_unary(self):
        f = RCForest(vertices=range(2))
        f.batch_update(links=[InternalLink(0, 1, 1.0, 0)])
        root = f.root_cluster(0)
        with pytest.raises(ValueError):
            root.weight()


class TestRandomStress:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_link_cut_sequences(self, seed):
        rng = random.Random(seed)
        n = 48
        f = RCForest(vertices=range(n), seed=seed + 100)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        live = {}
        eid = 0
        for step in range(50):
            cuts = []
            for e in list(live):
                if rng.random() < 0.3:
                    a, b = live.pop(e)
                    cuts.append((a, b, e))
                    g.remove_edge(a, b)
            links = []
            for _ in range(rng.randrange(0, 7)):
                a, b = rng.randrange(n), rng.randrange(n)
                if a == b or nx.has_path(g, a, b):
                    continue
                links.append(InternalLink(a, b, rng.random(), eid))
                live[eid] = (a, b)
                g.add_edge(a, b)
                eid += 1
            f.batch_update(links=links, cuts=cuts)
            f.check_invariants()
            assert f.snapshot() == f.rebuilt_copy().snapshot(), f"step {step}"
            for _ in range(8):
                a, b = rng.randrange(n), rng.randrange(n)
                assert f.connected(a, b) == nx.has_path(g, a, b)

    def test_heights_logarithmic_on_large_path(self):
        n = 1024
        f = RCForest(vertices=range(n), seed=17)
        f.batch_update(links=path_links(n))
        heights = [f.rc_height(v) for v in range(0, n, 37)]
        assert max(heights) <= 60  # O(lg n) w.h.p.; lg(1024) = 10


class TestCostAccounting:
    def test_batch_work_sublinear_in_n_for_small_batches(self):
        n = 4096
        cost = CostModel()
        f = RCForest(vertices=range(n), seed=23, cost=cost)
        f.batch_update(links=path_links(n))
        build_work = cost.work
        snap = cost.snapshot()
        # One extra link into the big path: work should be much less than n.
        f.batch_update(
            cuts=[(100, 101, 1100)],
        )
        delta = cost.since(snap)
        assert 0 < delta.work < n // 4
        assert build_work > n  # the build itself is Omega(n)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_propagation_equals_rebuild(data):
    n = data.draw(st.integers(2, 24))
    seed = data.draw(st.integers(0, 2**20))
    f = RCForest(vertices=range(n), seed=seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    live = {}
    eid = 0
    for _ in range(data.draw(st.integers(1, 6))):
        cuts = []
        for e in list(live):
            if data.draw(st.booleans()):
                a, b = live.pop(e)
                cuts.append((a, b, e))
                g.remove_edge(a, b)
        links = []
        for _ in range(data.draw(st.integers(0, 5))):
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(0, n - 1))
            if a == b or nx.has_path(g, a, b):
                continue
            links.append(InternalLink(a, b, 1.0, eid))
            live[eid] = (a, b)
            g.add_edge(a, b)
            eid += 1
        f.batch_update(links=links, cuts=cuts)
    f.check_invariants()
    assert f.snapshot() == f.rebuilt_copy().snapshot()


class TestCompressRules:
    """The ordered compress rule (conclusion's 'faster RC tree' direction)
    must be exactly as correct as Miller-Reif, only shallower."""

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            RCForest(vertices=range(3), compress_rule="quantum")

    @pytest.mark.parametrize("rule", ["mr", "ordered"])
    def test_propagation_equals_rebuild(self, rule):
        rng = random.Random(5)
        n = 40
        f = RCForest(vertices=range(n), seed=9, compress_rule=rule)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        live = {}
        eid = 0
        for step in range(40):
            cuts = []
            for e in list(live):
                if rng.random() < 0.3:
                    a, b = live.pop(e)
                    cuts.append((a, b, e))
                    g.remove_edge(a, b)
            links = []
            for _ in range(rng.randrange(0, 6)):
                a, b = rng.randrange(n), rng.randrange(n)
                if a == b or nx.has_path(g, a, b):
                    continue
                links.append(InternalLink(a, b, rng.random(), eid))
                live[eid] = (a, b)
                g.add_edge(a, b)
                eid += 1
            f.batch_update(links=links, cuts=cuts)
            f.check_invariants()
            assert f.snapshot() == f.rebuilt_copy().snapshot(), step
            for _ in range(6):
                a, b = rng.randrange(n), rng.randrange(n)
                assert f.connected(a, b) == nx.has_path(g, a, b)

    def test_ordered_rule_contracts_faster_on_paths(self):
        n = 1024
        depths = {}
        for rule in ("mr", "ordered"):
            f = RCForest(vertices=range(n), seed=3, compress_rule=rule)
            f.batch_update(links=path_links(n))
            depths[rule] = len(f.level_statistics())
        assert depths["ordered"] < depths["mr"]

    def test_no_adjacent_compressions_under_ordered_rule(self):
        # Directly audit every level: two adjacent vertices never both
        # compress in the same round.
        n = 512
        f = RCForest(vertices=range(n), seed=11, compress_rule="ordered")
        f.batch_update(links=path_links(n))
        for i, dec in enumerate(f._dec):
            compressing = {v for v, d in dec.items() if d[0] == "C"}
            for v in compressing:
                for x in f._adj[i][v]:
                    assert x not in compressing, (i, v, x)

    def test_rules_give_same_msf(self):
        from repro.core import BatchIncrementalMSF

        rng = random.Random(2)
        edges = [
            (rng.randrange(60), rng.randrange(60), rng.uniform(0, 9))
            for _ in range(200)
        ]
        edges = [(u, v, w, i) for i, (u, v, w) in enumerate(edges) if u != v]
        outs = []
        for rule in ("mr", "ordered"):
            m = BatchIncrementalMSF(60, seed=4, compress_rule=rule)
            for i in range(0, len(edges), 25):
                m.batch_insert(edges[i : i + 25])
            outs.append(m.msf_edges())
        assert outs[0] == outs[1]
