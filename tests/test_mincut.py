"""Tests for the Stoer-Wagner global minimum cut."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mincut import global_min_cut
from repro.mincut.stoer_wagner import is_k_connected


def nx_min_cut(n, edges):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for u, v in edges:
        if g.has_edge(u, v):
            g[u][v]["weight"] += 1
        else:
            g.add_edge(u, v, weight=1)
    if nx.number_connected_components(g) > 1:
        return 0.0
    value, _ = nx.stoer_wagner(g)
    return float(value)


class TestSmall:
    def test_trivial_graphs(self):
        assert global_min_cut(0, []) == float("inf")
        assert global_min_cut(1, []) == float("inf")
        assert global_min_cut(2, []) == 0.0
        assert global_min_cut(2, [(0, 1)]) == 1.0

    def test_self_loops_ignored(self):
        assert global_min_cut(2, [(0, 0), (0, 1), (1, 1)]) == 1.0

    def test_parallel_edges_accumulate(self):
        assert global_min_cut(2, [(0, 1), (0, 1), (1, 0)]) == 3.0

    def test_triangle(self):
        assert global_min_cut(3, [(0, 1), (1, 2), (2, 0)]) == 2.0

    def test_weighted_edges(self):
        assert global_min_cut(3, [(0, 1, 5.0), (1, 2, 2.0), (2, 0, 1.0)]) == 3.0

    def test_bridge(self):
        # Two triangles joined by one edge: min cut is the bridge.
        edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
        assert global_min_cut(6, edges) == 1.0

    def test_complete_graph(self):
        n = 6
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        assert global_min_cut(n, edges) == n - 1

    def test_is_k_connected(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        assert is_k_connected(3, edges, 2)
        assert not is_k_connected(3, edges, 3)
        assert is_k_connected(1, [], 99)


class TestRandomOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(2, 14)
        edges = []
        for _ in range(rng.randrange(0, 36)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v))
        assert global_min_cut(n, edges) == nx_min_cut(n, edges)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 10),
    edges=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30),
)
def test_property_min_cut_matches(n, edges):
    edges = [(u % n, v % n) for u, v in edges if u % n != v % n]
    assert global_min_cut(n, edges) == nx_min_cut(n, edges)
