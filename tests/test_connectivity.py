"""Tests for star-contraction CC, batched union-find, and the incremental
(Section 5.7 / Table 1 column 1) structures."""

import random

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import (
    BatchUnionFind,
    IncrementalBipartiteness,
    IncrementalConnectivity,
    IncrementalCycleFree,
    IncrementalKCertificate,
    connected_components,
    spanning_forest,
)
from repro.runtime import CostModel


def random_edges(n, m, rng):
    out = []
    while len(out) < m:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            out.append((u, v))
    return out


class TestStarContraction:
    @pytest.mark.parametrize("seed", range(5))
    def test_labels_match_networkx(self, seed):
        rng = random.Random(seed)
        n, m = 60, 140
        edges = random_edges(n, m, rng)
        us = np.array([e[0] for e in edges])
        vs = np.array([e[1] for e in edges])
        labels = connected_components(n, us, vs, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        comps = list(nx.connected_components(g))
        for comp in comps:
            assert len({labels[v] for v in comp}) == 1
        assert len({labels[next(iter(c))] for c in comps}) == len(comps)

    def test_empty_and_loops(self):
        labels = connected_components(4, np.array([1]), np.array([1]))
        assert len(set(labels.tolist())) == 4
        labels = connected_components(3, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert labels.tolist() == [0, 1, 2]

    @pytest.mark.parametrize("seed", range(5))
    def test_spanning_forest_spans(self, seed):
        rng = random.Random(100 + seed)
        n, m = 50, 120
        edges = random_edges(n, m, rng)
        us = np.array([e[0] for e in edges])
        vs = np.array([e[1] for e in edges])
        pos = spanning_forest(n, us, vs, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        sg = nx.Graph()
        sg.add_nodes_from(range(n))
        sg.add_edges_from((int(us[p]), int(vs[p])) for p in pos)
        assert len(pos) == n - nx.number_connected_components(g)
        assert nx.number_connected_components(sg) == nx.number_connected_components(g)
        assert len(sg.edges) == len(pos)  # acyclic: no duplicates

    def test_work_charged_linearish(self):
        rng = random.Random(1)
        n, m = 256, 1024
        edges = random_edges(n, m, rng)
        cost = CostModel()
        connected_components(
            n,
            np.array([e[0] for e in edges]),
            np.array([e[1] for e in edges]),
            cost=cost,
        )
        assert 0 < cost.work < 20 * m


class TestBatchUnionFind:
    def test_single_unions(self):
        uf = BatchUnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_components == 4

    def test_batch_union_returns_forest_positions(self):
        uf = BatchUnionFind(6, seed=3)
        pos = uf.batch_union([0, 1, 0, 3], [1, 2, 2, 4])
        # (0,2) closes a cycle given (0,1),(1,2): exactly 3 joins happen.
        assert len(pos) == 3
        assert uf.num_components == 3  # {0,1,2}, {3,4}, {5}

    def test_batch_union_empty(self):
        uf = BatchUnionFind(3)
        assert uf.batch_union([], []).size == 0

    def test_mismatched_arrays_raise(self):
        uf = BatchUnionFind(3)
        with pytest.raises(ValueError):
            uf.batch_union([0], [1, 2])

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_over_batches(self, seed):
        rng = random.Random(seed)
        n = 50
        uf = BatchUnionFind(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for _ in range(20):
            edges = random_edges(n, rng.randrange(1, 10), rng)
            uf.batch_union([e[0] for e in edges], [e[1] for e in edges])
            g.add_edges_from(edges)
            assert uf.num_components == nx.number_connected_components(g)
            for _ in range(6):
                a, b = rng.randrange(n), rng.randrange(n)
                assert uf.connected(a, b) == nx.has_path(g, a, b)


class TestIncrementalStructures:
    def test_connectivity_forest_grows(self):
        ic = IncrementalConnectivity(4)
        new = ic.batch_insert([(0, 1), (1, 2), (0, 2)])
        assert len(new) == 2
        assert ic.num_components == 2
        assert ic.is_connected(0, 2)
        assert len(ic.forest_edges) == 2

    def test_bipartiteness_odd_cycle(self):
        ib = IncrementalBipartiteness(5)
        ib.batch_insert([(0, 1), (1, 2)])
        assert ib.is_bipartite()
        ib.batch_insert([(0, 2)])  # triangle
        assert not ib.is_bipartite()

    def test_bipartiteness_even_cycle_ok(self):
        ib = IncrementalBipartiteness(4)
        ib.batch_insert([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert ib.is_bipartite()

    @pytest.mark.parametrize("seed", range(3))
    def test_bipartiteness_random_oracle(self, seed):
        rng = random.Random(seed)
        n = 16
        ib = IncrementalBipartiteness(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for _ in range(35):
            edges = random_edges(n, rng.randrange(1, 4), rng)
            ib.batch_insert(edges)
            g.add_edges_from(edges)
            assert ib.is_bipartite() == nx.is_bipartite(g)

    def test_cyclefree(self):
        cf = IncrementalCycleFree(4)
        cf.batch_insert([(0, 1), (1, 2)])
        assert not cf.has_cycle()
        cf.batch_insert([(2, 0)])
        assert cf.has_cycle()

    def test_cyclefree_self_loop(self):
        cf = IncrementalCycleFree(3)
        cf.batch_insert([(1, 1)])
        assert cf.has_cycle()
        cf.batch_insert([(0, 1)])  # later inserts still processed
        assert cf._conn.is_connected(0, 1)

    def test_cyclefree_parallel_edge(self):
        cf = IncrementalCycleFree(3)
        cf.batch_insert([(0, 1), (0, 1)])
        assert cf.has_cycle()

    def test_kcertificate_invalid_k(self):
        with pytest.raises(ValueError):
            IncrementalKCertificate(3, k=0)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_kcertificate_preserves_small_cuts(self, k):
        rng = random.Random(k)
        n = 10
        kc = IncrementalKCertificate(n, k=k, seed=k)
        edges = random_edges(n, 60, rng)
        kc.batch_insert(edges)

        def multi_ec(rows):
            g = nx.Graph()
            g.add_nodes_from(range(n))
            for u, v in rows:
                if g.has_edge(u, v):
                    g[u][v]["weight"] += 1
                else:
                    g.add_edge(u, v, weight=1)
            if nx.number_connected_components(g) > 1:
                return 0
            value, _ = nx.stoer_wagner(g)
            return value

        gec = multi_ec(edges)
        cec = multi_ec(kc.certificate())
        assert min(gec, k) == min(cec, k)
        assert len(kc.certificate()) <= k * (n - 1)

    def test_kcertificate_lower_bound_sound(self):
        rng = random.Random(5)
        n = 8
        kc = IncrementalKCertificate(n, k=3, seed=5)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        kc.batch_insert(edges)
        g = nx.Graph(edges)
        for _ in range(10):
            u, v = rng.sample(range(n), 2)
            lb = kc.connectivity_lower_bound(u, v)
            if lb:
                assert nx.edge_connectivity(g, u, v) >= lb


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 20),
    edges=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60),
    seed=st.integers(0, 100),
)
def test_property_components_match(n, edges, seed):
    edges = [(u % n, v % n) for u, v in edges if u % n != v % n]
    us = np.array([e[0] for e in edges], dtype=np.int64)
    vs = np.array([e[1] for e in edges], dtype=np.int64)
    labels = connected_components(n, us, vs, seed=seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    for u in range(n):
        for v in range(n):
            assert (labels[u] == labels[v]) == nx.has_path(g, u, v)
