"""Smoke tests: every example script runs to completion and prints the
landmarks its narrative promises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["total weight now", "compressed path tree", "work ="],
    "social_stream_monitoring.py": ["communities", "bipartite"],
    "network_telemetry.py": ["backbone cost", "certificate", "agreed"],
    "sparsify_and_cut.py": ["sparsifier:", "global min cut"],
    "fleet_dispatch.py": ["route", "diameter", "O(lg n)"],
    "similarity_clustering.py": ["clusters", "dendrogram"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    for landmark in CASES[script]:
        assert landmark in proc.stdout, (script, landmark, proc.stdout[-500:])


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), "new example? add landmarks above"
