"""Unit tests for the dynamic ternarization layer."""

import pytest

from repro.trees.ternary import NEG_INF, TernaryForest


class TestBasics:
    def test_initial_copies_are_canonical(self):
        t = TernaryForest(4)
        assert [t.canonical(v) for v in range(4)] == [0, 1, 2, 3]
        assert t.num_copies == 4

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            TernaryForest(-1)

    def test_single_edge_no_copies(self):
        t = TernaryForest(3)
        links = t.add_edges([(0, 1, 2.5, 0)])
        assert len(links) == 1
        assert t.num_copies == 3
        assert links[0].w == 2.5 and links[0].eid == 0

    def test_self_loop_rejected(self):
        t = TernaryForest(3)
        with pytest.raises(ValueError):
            t.add_edges([(1, 1, 1.0, 0)])

    def test_duplicate_eid_rejected(self):
        t = TernaryForest(4)
        t.add_edges([(0, 1, 1.0, 7)])
        with pytest.raises(ValueError):
            t.add_edges([(2, 3, 1.0, 7)])
        with pytest.raises(ValueError):
            t.add_edges([(0, 2, 1.0, 8), (1, 3, 1.0, 8)])

    def test_negative_eid_rejected(self):
        t = TernaryForest(2)
        with pytest.raises(ValueError):
            t.add_edges([(0, 1, 1.0, -3)])

    def test_out_of_range_endpoint_rejected(self):
        t = TernaryForest(2)
        with pytest.raises(ValueError):
            t.add_edges([(0, 5, 1.0, 0)])


class TestDegreeBound:
    def _degrees(self, t, links):
        deg = {}
        for l in links:
            deg[l.a] = deg.get(l.a, 0) + 1
            deg[l.b] = deg.get(l.b, 0) + 1
        return deg

    def test_star_respects_degree_bound(self):
        t = TernaryForest(10)
        links = t.add_edges([(0, i, 1.0, i) for i in range(1, 10)])
        deg = self._degrees(t, links)
        assert max(deg.values()) <= 3
        # 9 edges on vertex 0 -> 8 extra copies, all owned by 0.
        extra = [c for c in range(t.num_copies) if c >= 10]
        assert all(t.owner(c) == 0 for c in extra)

    def test_virtual_links_have_neg_inf_weight(self):
        t = TernaryForest(5)
        links = t.add_edges([(0, i, 1.0, i) for i in range(1, 5)])
        virtual = [l for l in links if TernaryForest.is_virtual_eid(l.eid)]
        real = [l for l in links if not TernaryForest.is_virtual_eid(l.eid)]
        assert len(real) == 4
        assert virtual and all(l.w == NEG_INF for l in virtual)

    def test_slots_recycled_after_removal(self):
        t = TernaryForest(6)
        t.add_edges([(0, i, 1.0, i) for i in range(1, 6)])
        before = t.num_copies
        t.remove_edges([1, 2, 3])
        links = t.add_edges([(0, 1, 2.0, 10), (0, 2, 2.0, 11)])
        # Freed slots are reused: no new copies, no virtual links.
        assert t.num_copies == before
        assert all(not TernaryForest.is_virtual_eid(l.eid) for l in links)

    def test_remove_unknown_edge_raises(self):
        t = TernaryForest(2)
        with pytest.raises(KeyError):
            t.remove_edges([99])

    def test_endpoints_tracked(self):
        t = TernaryForest(4)
        t.add_edges([(2, 3, 1.0, 5)])
        a, b = t.endpoints(5)
        assert t.owner(a) == 2 and t.owner(b) == 3
        assert t.has_edge(5)
        t.remove_edges([5])
        assert not t.has_edge(5)
