"""The regression gate gates: ``scripts/gate.py`` and ``--trace-diff``.

Two self-test claims keep the gate honest:

- the **committed golden trace** replays deterministically and passes
  its committed baseline band (a green gate in CI is backed by a test,
  not hope);
- an **injected 2x p99 regression** (the ``--handicap`` lever) flips
  the verdict to FAIL against a freshly measured machine-local
  baseline -- proving the band is real, not vacuous.

Plus the triage path: ``python -m repro.report --trace-diff A B`` must
render a phase-by-phase comparison for healthy records and exit 1 with
a one-line diagnosis on truncated or schema-mismatched ones.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

from repro.obs.export import BenchmarkRecord, write_record
from repro.report import main as report_main
from repro.trace import TRACE_SCHEMA, read_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
GATE = REPO_ROOT / "scripts" / "gate.py"
GOLDEN = REPO_ROOT / "bench_results" / "traces" / "smoke.trace.jsonl"


def _load_gate():
    spec = importlib.util.spec_from_file_location("gate", GATE)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestGoldenTrace:
    def test_committed_trace_is_wellformed(self):
        """The committed golden trace parses clean: CRCs verify, the
        header names a rebuildable factory, reads ride write tokens."""
        meta, events = read_trace(GOLDEN)
        assert meta["trace"] == TRACE_SCHEMA if "trace" in meta else True
        assert meta["factory"]["structure"] == "SWConnectivityEager"
        kinds = {e.kind for e in events}
        assert kinds == {"write", "read"}
        assert any("at_least" in e.body for e in events if e.kind == "read")

    def test_committed_baseline_is_wellformed(self):
        gate = _load_gate()
        bpath = gate.baseline_path(GOLDEN)
        base = json.loads(bpath.read_text())
        assert base["schema"] == gate.BASELINE_SCHEMA
        assert base["p99_ms"] > 0
        assert base["reads_per_s"] > 0

    def test_gate_passes_on_committed_golden_trace(self, capsys):
        """The acceptance claim: the committed trace + committed band
        pass, end to end, through the real CLI entry point."""
        gate = _load_gate()
        assert gate.main(["--only", "smoke", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "determinism ok (both engines)" in out

    def test_emit_is_byte_reproducible(self, tmp_path):
        gate = _load_gate()
        a, b = tmp_path / "a.trace.jsonl", tmp_path / "b.trace.jsonl"
        gate.emit_trace(a, n=32, seed=7, rounds=6)
        gate.emit_trace(b, n=32, seed=7, rounds=6)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != b""


class TestGateVerdicts:
    def _emit_small(self, gate, traces_dir, name="tiny"):
        traces_dir.mkdir(parents=True, exist_ok=True)
        path = traces_dir / f"{name}.trace.jsonl"
        gate.emit_trace(path, n=32, seed=3, rounds=12)
        return path

    def test_injected_2x_regression_fails_the_gate(self, tmp_path, capsys):
        """Baseline the trace on this machine with a tight band, then
        replay it with a 2x p99 handicap: the gate must fail, naming
        the latency breach."""
        gate = _load_gate()
        self._emit_small(gate, tmp_path)
        argv = ["--traces-dir", str(tmp_path)]
        assert gate.main(argv + ["--update"]) == 0
        capsys.readouterr()
        assert (
            gate.main(argv + ["--handicap", "2.0", "--p99-tol", "1.4"]) == 1
        )
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "write p99" in out

    def test_missing_baseline_fails(self, tmp_path, capsys):
        gate = _load_gate()
        self._emit_small(gate, tmp_path)
        assert gate.main(["--traces-dir", str(tmp_path)]) == 1
        assert "no baseline" in capsys.readouterr().out

    def test_corrupt_baseline_fails(self, tmp_path, capsys):
        gate = _load_gate()
        path = self._emit_small(gate, tmp_path)
        gate.baseline_path(path).write_text(
            json.dumps({"schema": "bogus/v9", "p99_ms": 1.0})
        )
        assert gate.main(["--traces-dir", str(tmp_path)]) == 1
        assert "unreadable baseline" in capsys.readouterr().out

    def test_no_traces_is_an_error(self, tmp_path, capsys):
        gate = _load_gate()
        assert gate.main(["--traces-dir", str(tmp_path / "empty")]) == 1
        assert "no traces matched" in capsys.readouterr().err


# ----------------------------------------------------------------------
# python -m repro.report --trace-diff
# ----------------------------------------------------------------------


def _record(name: str, phases: list[tuple[str, int, float]], wall=1.0):
    return BenchmarkRecord(
        name=name,
        params={"engine": "array"},
        phases=[
            {"name": pn, "work": w, "span": 1, "wall_s": ws}
            for pn, w, ws in phases
        ],
        totals={
            "work": sum(w for _, w, _ in phases),
            "span": 1,
            "wall_s": wall,
        },
    )


class TestTraceDiffCLI:
    def test_diff_renders_per_phase_ratios(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_record(
            _record("bench", [("insert", 100, 0.5), ("query", 50, 0.25)]), a
        )
        write_record(
            _record(
                "bench", [("insert", 200, 1.0), ("query", 50, 0.25)], wall=2.0
            ),
            b,
        )
        assert report_main(["--trace-diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Trace diff" in out
        assert "2.00x" in out  # insert work doubled
        assert "1.00x" in out  # query unchanged
        assert "(totals)" in out

    def test_diff_marks_one_sided_phases(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_record(_record("bench", [("insert", 100, 0.5)]), a)
        write_record(_record("bench", [("expire", 10, 0.1)]), b)
        assert report_main(["--trace-diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        # A phase present on one side only gets "-" ratios, not "0.00x".
        assert "0.00x" not in out
        assert "-" in out

    def test_diff_rejects_truncated_record(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "trunc.json"
        write_record(_record("bench", [("insert", 100, 0.5)]), a)
        b.write_text(a.read_text()[: len(a.read_text()) // 2])
        assert report_main(["--trace-diff", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "not a readable benchmark record" in err
        assert "Traceback" not in err

    def test_diff_rejects_schema_mismatch(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "alien.json"
        write_record(_record("bench", [("insert", 100, 0.5)]), a)
        b.write_text(json.dumps({"schema": "someone.else/v3", "name": "x"}))
        assert report_main(["--trace-diff", str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "unknown benchmark-record schema" in err

    def test_diff_rejects_missing_file(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        write_record(_record("bench", [("insert", 100, 0.5)]), a)
        assert (
            report_main(["--trace-diff", str(a), str(tmp_path / "nope.json")])
            == 1
        )
        assert "no such record" in capsys.readouterr().err
