"""Tests for Algorithm 2 (BatchIncrementalMSF) and the sequential baseline.

The oracle is Kruskal over the cumulative edge multiset after every batch:
because ties break by edge id, the MSF is unique and the comparison is
edge-for-edge, not just by weight.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import BatchIncrementalMSF, SequentialIncrementalMSF
from repro.msf import EdgeArray, kruskal_msf
from repro.runtime import CostModel


def oracle_msf_eids(n, all_edges):
    ea = EdgeArray.from_tuples(n, all_edges)
    return sorted(ea.eid[kruskal_msf(ea)].tolist())


class TestSingleBatch:
    def test_insert_into_empty(self):
        m = BatchIncrementalMSF(4)
        rep = m.batch_insert([(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        assert sorted(e[3] for e in rep.inserted) == [0, 1]
        assert [e[3] for e in rep.rejected] == [2]
        assert m.num_msf_edges == 2
        assert m.connected(0, 2)
        assert m.num_components == 2  # {0,1,2} and {3}

    def test_self_loop_rejected(self):
        m = BatchIncrementalMSF(3)
        rep = m.batch_insert([(1, 1, 5.0)])
        assert len(rep.rejected) == 1 and not rep.inserted
        assert m.num_msf_edges == 0

    def test_empty_batch(self):
        m = BatchIncrementalMSF(3)
        rep = m.batch_insert([])
        assert not rep.inserted and not rep.evicted and not rep.rejected

    def test_parallel_edges_in_one_batch(self):
        m = BatchIncrementalMSF(2)
        rep = m.batch_insert([(0, 1, 5.0), (0, 1, 1.0), (1, 0, 3.0)])
        assert [e[3] for e in rep.inserted] == [1]
        assert sorted(e[3] for e in rep.rejected) == [0, 2]

    def test_eviction_across_batches(self):
        m = BatchIncrementalMSF(3)
        m.batch_insert([(0, 1, 10.0), (1, 2, 20.0)])
        rep = m.batch_insert([(0, 2, 5.0)])
        assert [e[3] for e in rep.inserted] == [2]
        assert [e[3] for e in rep.evicted] == [1]  # the 20.0 edge leaves
        assert m.total_weight() == pytest.approx(15.0)

    def test_weight_tie_older_edge_wins(self):
        m = BatchIncrementalMSF(3)
        m.batch_insert([(0, 1, 1.0), (1, 2, 1.0)])
        rep = m.batch_insert([(0, 2, 1.0)])
        assert not rep.inserted and not rep.evicted
        assert [e[3] for e in rep.rejected] == [2]

    def test_explicit_eids_respected(self):
        m = BatchIncrementalMSF(3)
        rep = m.batch_insert([(0, 1, 1.0, 100), (1, 2, 1.0, 50)])
        assert sorted(e[3] for e in rep.inserted) == [50, 100]
        with pytest.raises(ValueError):
            m.batch_insert([(0, 2, 1.0, 100)])  # reused id

    def test_negative_eid_rejected(self):
        m = BatchIncrementalMSF(3)
        with pytest.raises(ValueError):
            m.batch_insert([(0, 1, 1.0, -2)])

    def test_out_of_range_vertex_rejected(self):
        m = BatchIncrementalMSF(3)
        with pytest.raises(ValueError):
            m.batch_insert([(0, 7, 1.0)])

    def test_malformed_row_rejected(self):
        m = BatchIncrementalMSF(3)
        with pytest.raises(ValueError):
            m.batch_insert([(0, 1)])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            BatchIncrementalMSF(3, kernel="quantum")

    def test_whole_graph_as_one_batch_matches_kruskal(self):
        rng = random.Random(0)
        n, m_edges = 60, 250
        rows = [
            (rng.randrange(n), rng.randrange(n), rng.uniform(0, 1), i)
            for i in range(m_edges)
        ]
        rows = [r for r in rows if r[0] != r[1]]
        m = BatchIncrementalMSF(n)
        m.batch_insert(rows)
        assert sorted(e[3] for e in m.msf_edges()) == oracle_msf_eids(n, rows)


class TestQueryInterface:
    def test_heaviest_edge_on_msf_path(self):
        m = BatchIncrementalMSF(4)
        m.batch_insert([(0, 1, 3.0), (1, 2, 9.0), (2, 3, 5.0)])
        assert m.heaviest_edge(0, 3) == (9.0, 1)
        assert m.heaviest_edge(0, 0) is None

    def test_heaviest_edge_disconnected(self):
        m = BatchIncrementalMSF(4)
        m.batch_insert([(0, 1, 3.0)])
        assert m.heaviest_edge(0, 3) is None

    def test_has_edge_and_components(self):
        m = BatchIncrementalMSF(5)
        rep = m.batch_insert([(0, 1, 1.0), (2, 3, 1.0)])
        assert all(m.has_edge(e[3]) for e in rep.inserted)
        assert m.num_components == 3

    def test_forget_edges(self):
        m = BatchIncrementalMSF(3)
        rep = m.batch_insert([(0, 1, 1.0), (1, 2, 2.0)])
        m.forget_edges([rep.inserted[0][3]])
        assert m.num_msf_edges == 1
        assert not m.connected(0, 1)


class TestKernelsAgree:
    @pytest.mark.parametrize("kernel", ["kkt", "kruskal", "boruvka", "prim"])
    def test_all_kernels_same_msf(self, kernel):
        rng = random.Random(7)
        n = 30
        m = BatchIncrementalMSF(n, kernel=kernel)
        all_edges = []
        for _ in range(15):
            batch = []
            for _ in range(rng.randrange(1, 8)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                batch.append((u, v, rng.uniform(0, 10), len(all_edges) + len(batch)))
            m.batch_insert(batch)
            all_edges.extend(batch)
        assert sorted(e[3] for e in m.msf_edges()) == oracle_msf_eids(n, all_edges)


class TestRandomizedOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_batches_match_kruskal_every_step(self, seed):
        rng = random.Random(seed)
        n = 40
        m = BatchIncrementalMSF(n, seed=seed)
        s = SequentialIncrementalMSF(n, seed=seed + 1)
        all_edges = []
        for step in range(20):
            raw = []
            for _ in range(rng.randrange(1, 9)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    raw.append((u, v, round(rng.uniform(0, 10), 3)))
            batch = [
                (u, v, w, len(all_edges) + i) for i, (u, v, w) in enumerate(raw)
            ]
            m.batch_insert(batch)
            s.batch_insert(batch)
            all_edges.extend(batch)
            expect = oracle_msf_eids(n, all_edges)
            assert sorted(e[3] for e in m.msf_edges()) == expect, f"batch step {step}"
            assert sorted(e[3] for e in s.msf_edges()) == expect, f"seq step {step}"
            assert m.total_weight() == pytest.approx(s.total_weight())

    def test_report_reconstructs_msf(self):
        rng = random.Random(11)
        n = 25
        m = BatchIncrementalMSF(n)
        held = set()
        for _ in range(15):
            batch = []
            for _ in range(rng.randrange(1, 6)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    batch.append((u, v, rng.uniform(0, 5)))
            rep = m.batch_insert(batch)
            held |= {e[3] for e in rep.inserted}
            held -= {e[3] for e in rep.evicted}
            assert held == {e[3] for e in m.msf_edges()}
            # An edge is never both inserted and rejected.
            assert not ({e[3] for e in rep.inserted} & {e[3] for e in rep.rejected})


class TestWorkBounds:
    def test_batch_work_beats_sequential_for_large_batches(self):
        rng = random.Random(3)
        n = 1024
        rows = []
        for i in range(n - 1):
            rows.append((rng.randrange(i + 1), i + 1, rng.uniform(0, 1), i))
        extra = [
            (rng.randrange(n), rng.randrange(n), rng.uniform(0, 1), n + j)
            for j in range(500)
        ]
        extra = [e for e in extra if e[0] != e[1]]

        cb = CostModel()
        b = BatchIncrementalMSF(n, cost=cb)
        b.batch_insert(rows)
        b.batch_insert(extra)

        cs = CostModel()
        s = SequentialIncrementalMSF(n, cost=cs)
        s.batch_insert(rows)
        s.batch_insert(extra)

        assert sorted(e[3] for e in b.msf_edges()) == sorted(
            e[3] for e in s.msf_edges()
        )
        assert cb.work < cs.work, "batch algorithm must be more work-efficient"
        assert cb.span < cs.span / 5, "batch algorithm must be much shallower"


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_batch_msf_equals_kruskal(data):
    n = data.draw(st.integers(2, 18))
    m = BatchIncrementalMSF(n, seed=data.draw(st.integers(0, 999)))
    all_edges = []
    for _ in range(data.draw(st.integers(1, 5))):
        ell = data.draw(st.integers(1, 7))
        batch = []
        for _ in range(ell):
            u = data.draw(st.integers(0, n - 1))
            v = data.draw(st.integers(0, n - 1))
            if u == v:
                continue
            w = float(data.draw(st.integers(0, 8)))  # many ties on purpose
            batch.append((u, v, w, len(all_edges) + len(batch)))
        m.batch_insert(batch)
        all_edges.extend(batch)
    if all_edges:
        assert sorted(e[3] for e in m.msf_edges()) == oracle_msf_eids(n, all_edges)
