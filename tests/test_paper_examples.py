"""The paper's worked examples, reproduced as executable tests.

- Figure 1: a weighted tree with marked vertices A..E whose compressed path
  tree has edges weighted {6, 10, 9, 7, 12, 3} and two Steiner branch
  vertices.  The arXiv source does not give machine-readable coordinates, so
  the tree below is a faithful reconstruction realising exactly the
  published CPT (same marked set, same Steiner count, same edge weights).
- Figure 2: the 12-vertex tree on {a..l} whose RC tree the paper draws; we
  verify the contraction produces a legal recursive clustering with the
  properties the figure illustrates (single root, disjoint-union children,
  one composite cluster per contracted vertex).
"""

import networkx as nx
import pytest

from repro.paperdata import (
    FIG1_EDGES,
    FIG1_EXPECTED_CPT,
    FIG2_EDGES_NAMED,
    FIG2_NAMES,
    fig2_links,
)
from repro.trees import DynamicForest
from repro.trees.cluster import ClusterKind

A, B, C, D, E, X, Y = range(7)


class TestFigure1:
    @pytest.fixture()
    def forest(self):
        f = DynamicForest(14, seed=2020)
        f.batch_link(FIG1_EDGES)
        return f

    def test_cpt_matches_figure(self, forest):
        cpt = forest.compressed_path_tree([A, B, C, D, E])
        got = {frozenset((a, b)): w for a, b, w, _ in cpt.edges}
        assert got == FIG1_EXPECTED_CPT
        assert sorted(cpt.vertices) == [A, B, C, D, E, X, Y]
        assert cpt.marked == {A, B, C, D, E}

    def test_cpt_weights_multiset_as_published(self, forest):
        cpt = forest.compressed_path_tree([A, B, C, D, E])
        assert sorted(w for _, _, w, _ in cpt.edges) == [3.0, 6.0, 7.0, 9.0, 10.0, 12.0]

    def test_cpt_stable_under_contraction_seed(self):
        for seed in (1, 7, 42, 1234):
            f = DynamicForest(14, seed=seed)
            f.batch_link(FIG1_EDGES)
            cpt = f.compressed_path_tree([A, B, C, D, E])
            got = {frozenset((a, b)): w for a, b, w, _ in cpt.edges}
            assert got == FIG1_EXPECTED_CPT, f"seed {seed}"

    def test_edge_annotations_point_at_physical_edges(self, forest):
        cpt = forest.compressed_path_tree([A, B, C, D, E])
        by_eid = {eid: (u, v, w) for u, v, w, eid in FIG1_EDGES}
        for _, _, w, eid in cpt.edges:
            assert by_eid[eid][2] == w


# -- Figure 2 reconstruction ------------------------------------------------


class TestFigure2:
    @pytest.fixture()
    def forest(self):
        # These tests walk the object engine's per-node cluster graph
        # (vleaf / comp / root_cluster), so they pin engine="object".
        f = DynamicForest(12, seed=2, engine="object")
        f.batch_link(fig2_links())
        return f

    def test_tree_is_connected(self, forest):
        assert forest.num_components == 1
        assert forest.connected(0, 11)  # a .. l

    def test_single_nullary_root(self, forest):
        rc = forest.rc
        roots = {id(rc.root_cluster(rc.vleaf[v].rep)) for v in rc.vleaf}
        assert len(roots) == 1
        root = rc.root_cluster(next(iter(rc.vleaf)))
        assert root.kind is ClusterKind.NULLARY

    def test_children_disjoint_union(self, forest):
        """Every composite cluster is the disjoint union of its children
        (the defining property illustrated in Figure 2c)."""
        rc = forest.rc
        root = rc.root_cluster(0)

        def contents(node):
            if node.kind is ClusterKind.VERTEX:
                return {("v", node.rep)}
            if node.kind is ClusterKind.EDGE:
                return {("e", node.eid)}
            out = set()
            for c in node.children:
                sub = contents(c)
                assert not (out & sub), "children overlap"
                out |= sub
            return out

        everything = contents(root)
        verts = {x for t, x in everything if t == "v"}
        eids = {x for t, x in everything if t == "e"}
        assert verts == set(rc.vleaf)
        assert eids == set(rc.eleaf)

    def test_every_contracted_vertex_has_one_cluster(self, forest):
        rc = forest.rc
        for v in rc.vleaf:
            node = rc.comp[v]
            assert node.rep == v
            assert node.kind in (
                ClusterKind.UNARY,
                ClusterKind.BINARY,
                ClusterKind.NULLARY,
            )

    def test_rc_tree_height_logarithmic(self, forest):
        rc = forest.rc
        heights = [rc.rc_height(v) for v in rc.vleaf]
        assert max(heights) <= 24  # small tree: height stays very small

    def test_path_queries_on_figure_tree(self, forest):
        idx = {c: i for i, c in enumerate(FIG2_NAMES)}
        # Unweighted tree (all 1.0): ties in the path maximum resolve to the
        # largest edge id on the path -- here (k, l), edge 10.
        w, eid = forest.path_max(idx["a"], idx["l"])
        assert w == 1.0 and eid == 10
