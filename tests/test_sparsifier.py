"""Tests for the sliding-window cut sparsifier (Theorem 5.8)."""

import random

import networkx as nx
import pytest

from repro.sliding_window import SWSparsifier


def weighted_cut(g, s):
    return sum(d.get("weight", 1) for u, v, d in g.edges(data=True) if (u in s) != (v in s))


def to_weighted_graph(n, rows):
    h = nx.Graph()
    h.add_nodes_from(range(n))
    for u, v, w in rows:
        if h.has_edge(u, v):
            h[u][v]["weight"] += w
        else:
            h.add_edge(u, v, weight=w)
    return h


class TestBasics:
    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            SWSparsifier(4, eps=0)

    def test_empty_graph(self):
        sp = SWSparsifier(8, eps=1.0)
        assert sp.sparsify() == []
        sp.batch_expire(3)
        assert sp.sparsify() == []

    def test_tree_kept_exactly(self):
        # Connectivity 1 everywhere -> sampling probability 1 -> exact copy.
        n = 12
        sp = SWSparsifier(n, eps=1.0, seed=1)
        tree = [(i, i + 1) for i in range(n - 1)]
        sp.batch_insert(tree)
        out = sp.sparsify()
        assert sorted((min(u, v), max(u, v)) for u, v, _ in out) == sorted(tree)
        assert all(w == 1.0 for _, _, w in out)

    def test_expiry_removes_old_edges(self):
        n = 10
        sp = SWSparsifier(n, eps=1.0, seed=2)
        tree = [(i, i + 1) for i in range(n - 1)]
        sp.batch_insert(tree)
        sp.batch_expire(4)
        out = sp.sparsify()
        assert sorted((min(u, v), max(u, v)) for u, v, _ in out) == sorted(tree[4:])

    def test_connectivity_level_monotone_in_density(self):
        n = 16
        sparse = SWSparsifier(n, eps=1.0, seed=3)
        sparse.batch_insert([(0, 1)])
        dense = SWSparsifier(n, eps=1.0, seed=3)
        dense.batch_insert([(0, 1)] * 64)
        assert dense.connectivity_level(0, 1) >= sparse.connectivity_level(0, 1)

    def test_space_shape(self):
        sp = SWSparsifier(64, eps=0.5)
        # (L*K + 1) connectivity estimators + (L+1) certificates.
        assert sp.num_instances == sp.levels * sp.reps + 1 + sp.levels + 1


class TestCutPreservation:
    @pytest.mark.parametrize("seed", range(2))
    def test_dense_graph_cuts_loose(self, seed):
        # Sampling only engages once connectivity exceeds eps^-2 lg^2 n,
        # so the window must be a high-multiplicity multigraph.
        rng = random.Random(seed)
        n = 12
        sp = SWSparsifier(n, eps=1.0, seed=seed)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)] * 8
        rng.shuffle(edges)
        sp.batch_insert(edges)
        out = sp.sparsify()
        assert len(out) < len(edges)  # it actually sparsifies
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        h = to_weighted_graph(n, out)
        good = total = 0
        for _ in range(25):
            s = set(rng.sample(range(n), rng.randrange(1, n)))
            cg = weighted_cut(g, s)
            if cg == 0:
                continue
            total += 1
            ratio = weighted_cut(h, s) / cg
            if 0.2 <= ratio <= 5.0:  # loose: reduced polylog constants
                good += 1
        assert good >= 0.85 * total

    def test_total_weight_tracks_edge_count(self):
        rng = random.Random(7)
        n = 12
        sp = SWSparsifier(n, eps=1.0, seed=7)
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)] * 6
        sp.batch_insert(edges)
        out = sp.sparsify()
        total = sum(w for _, _, w in out)
        assert 0.2 * len(edges) <= total <= 5.0 * len(edges)

    def test_window_slide_keeps_sparsifying(self):
        rng = random.Random(9)
        n = 14
        sp = SWSparsifier(n, eps=1.0, seed=9)
        stream = []
        for _ in range(6):
            batch = []
            for _ in range(20):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    batch.append((u, v))
            stream += batch
            sp.batch_insert(batch)
            if len(stream) > 60:
                sp.batch_expire(20)
                del stream[:20]
        out = sp.sparsify()
        # Every output edge is an unexpired window edge.
        window = {frozenset(e) for e in stream}
        assert all(frozenset((u, v)) in window for u, v, _ in out)
