"""Unit and property tests for the join-based treap ordered set."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orderedset import Treap
from repro.runtime import CostModel


class TestBasics:
    def test_empty(self):
        t = Treap()
        assert len(t) == 0 and not t
        assert 5 not in t
        assert list(t.items()) == []

    def test_insert_get(self):
        t = Treap()
        t.insert(3, "a")
        t.insert(1, "b")
        assert t.get(3) == "a" and t.get(1) == "b"
        assert t.get(2, "dflt") == "dflt"
        assert len(t) == 2 and 3 in t

    def test_insert_replaces(self):
        t = Treap()
        t.insert(3, "a")
        t.insert(3, "b")
        assert t.get(3) == "b" and len(t) == 1

    def test_delete(self):
        t = Treap([(1, None), (2, None)])
        assert t.delete(1)
        assert not t.delete(1)
        assert list(t.keys()) == [2]

    def test_min_max(self):
        t = Treap([(5, "e"), (1, "a"), (9, "i")])
        assert t.min() == (1, "a")
        assert t.max() == (9, "i")

    def test_min_on_empty_raises(self):
        with pytest.raises(KeyError):
            Treap().min()
        with pytest.raises(KeyError):
            Treap().max()

    def test_ordered_iteration(self):
        keys = [5, 2, 8, 1, 9, 3]
        t = Treap((k, None) for k in keys)
        assert list(t.keys()) == sorted(keys)

    def test_rank_and_kth(self):
        t = Treap((k, k * 10) for k in [10, 20, 30, 40])
        assert t.rank(10) == 0
        assert t.rank(25) == 2
        assert t.rank(100) == 4
        assert t.kth(0) == (10, 100)
        assert t.kth(3) == (40, 400)
        with pytest.raises(IndexError):
            t.kth(4)


class TestBulk:
    def test_insert_many_and_delete_many(self):
        t = Treap()
        t.insert_many((k, k) for k in range(50))
        assert len(t) == 50
        t.delete_many(range(0, 50, 2))
        assert list(t.keys()) == list(range(1, 50, 2))
        t.check_invariants()

    def test_insert_many_replaces(self):
        t = Treap([(1, "old")])
        t.insert_many([(1, "new"), (2, "x")])
        assert t.get(1) == "new"

    def test_insert_many_with_duplicate_keys_in_batch(self):
        t = Treap()
        t.insert_many([(1, "a"), (1, "b")])
        assert len(t) == 1 and t.get(1) == "b"  # later value wins

    def test_empty_bulk_is_noop(self):
        t = Treap([(1, None)])
        t.insert_many([])
        t.delete_many([])
        assert len(t) == 1

    def test_split_at(self):
        t = Treap((k, None) for k in range(10))
        old = t.split_at(4)
        assert list(old.keys()) == [0, 1, 2, 3]
        assert list(t.keys()) == list(range(4, 10))
        t.check_invariants()
        old.check_invariants()

    def test_split_at_boundary_key_stays_right(self):
        t = Treap((k, None) for k in [1, 2, 3])
        old = t.split_at(2)
        assert list(old.keys()) == [1]
        assert list(t.keys()) == [2, 3]

    def test_bulk_cost_charged(self):
        cost = CostModel()
        t = Treap(cost=cost)
        t.insert_many((k, None) for k in range(128))
        assert cost.work > 0 and cost.span > 0

    def test_shape_depends_only_on_keys(self):
        a = Treap()
        for k in [5, 1, 9, 3]:
            a.insert(k)
        b = Treap()
        b.insert_many((k, None) for k in [9, 3, 5, 1])
        def shape(node):
            if node is None:
                return None
            return (node.key, shape(node.left), shape(node.right))
        assert shape(a._root) == shape(b._root)


class TestRandomizedModel:
    @pytest.mark.parametrize("seed", range(3))
    def test_against_dict_model(self, seed):
        rng = random.Random(seed)
        t = Treap()
        model = {}
        for _ in range(250):
            op = rng.random()
            if op < 0.35:
                ks = [rng.randrange(200) for _ in range(rng.randrange(1, 8))]
                t.insert_many([(k, k) for k in ks])
                model.update((k, k) for k in ks)
            elif op < 0.55:
                ks = [rng.randrange(200) for _ in range(rng.randrange(1, 8))]
                t.delete_many(ks)
                for k in ks:
                    model.pop(k, None)
            elif op < 0.7:
                k = rng.randrange(200)
                t.insert(k, -k)
                model[k] = -k
            elif op < 0.85:
                k = rng.randrange(200)
                assert t.delete(k) == (k in model)
                model.pop(k, None)
            else:
                thr = rng.randrange(200)
                old = t.split_at(thr)
                assert sorted(old.keys()) == sorted(k for k in model if k < thr)
                model = {k: v for k, v in model.items() if k >= thr}
            t.check_invariants()
            assert list(t.items()) == sorted(model.items())


@settings(max_examples=60, deadline=None)
@given(
    initial=st.lists(st.integers(0, 100), max_size=60),
    add=st.lists(st.integers(0, 100), max_size=30),
    remove=st.lists(st.integers(0, 100), max_size=30),
    threshold=st.integers(0, 100),
)
def test_property_bulk_ops_match_set_model(initial, add, remove, threshold):
    t = Treap((k, None) for k in initial)
    model = set(initial)
    t.insert_many((k, None) for k in add)
    model |= set(add)
    t.delete_many(remove)
    model -= set(remove)
    old = t.split_at(threshold)
    expired = {k for k in model if k < threshold}
    assert set(old.keys()) == expired
    assert set(t.keys()) == model - expired
    t.check_invariants()
