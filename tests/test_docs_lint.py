"""Documentation health: import lint + runnable doctests.

``scripts/check_docs.py`` fails when a ```python block in the markdown
docs imports a ``repro`` module or symbol that no longer exists; running
it here makes doc drift a test failure.  The doctest runners keep the
examples in ``repro.runtime`` executable, not decorative.
"""

from __future__ import annotations

import doctest
import importlib.util
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docs.py"


def _load_check_docs():
    spec = importlib.util.spec_from_file_location("check_docs", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_imports_resolve(capsys):
    """Every repro import in docs/*.md, README.md, EXPERIMENTS.md resolves."""
    mod = _load_check_docs()
    assert mod.main([]) == 0, capsys.readouterr().err


def test_lint_catches_missing_symbol(tmp_path):
    mod = _load_check_docs()
    bad = tmp_path / "bad.md"
    bad.write_text(
        "```python\nfrom repro.core import DefinitelyNotAThing\n```\n"
    )
    failures = mod.check_file(bad)
    assert len(failures) == 1
    assert "DefinitelyNotAThing" in failures[0]


def test_lint_catches_missing_module(tmp_path):
    mod = _load_check_docs()
    bad = tmp_path / "bad.md"
    bad.write_text("```python\nimport repro.does_not_exist\n```\n")
    assert any("repro.does_not_exist" in f for f in mod.check_file(bad))


def test_lint_ignores_non_python_and_fragments(tmp_path):
    mod = _load_check_docs()
    ok = tmp_path / "ok.md"
    ok.write_text(
        "```bash\npip install repro-not-real\n```\n"
        "```python\nBatchIncrementalMSF(n, seed=..., cost=...)\n"
        "from repro import *\n```\n"
    )
    assert mod.check_file(ok) == []


def test_every_public_module_is_documented():
    """The other direction of drift: no module may exist undocumented."""
    mod = _load_check_docs()
    assert mod.check_module_coverage(mod.default_targets()) == []


def test_module_enumeration_shape(tmp_path):
    mod = _load_check_docs()
    pkg = tmp_path / "repro"
    (pkg / "sub").mkdir(parents=True)
    (pkg / "_private").mkdir()
    for p in [
        pkg / "__init__.py",
        pkg / "top.py",
        pkg / "_hidden.py",
        pkg / "sub" / "__init__.py",
        pkg / "sub" / "leaf.py",
        pkg / "_private" / "__init__.py",
        pkg / "_private" / "inner.py",
    ]:
        p.write_text("")
    assert mod.public_modules(tmp_path) == [
        "repro.sub",
        "repro.sub.leaf",
        "repro.top",
    ]


def test_coverage_flags_missing_module(tmp_path):
    mod = _load_check_docs()
    page = tmp_path / "page.md"
    page.write_text("mentions only `repro.core.batch_msf` here\n")
    failures = mod.check_module_coverage([page])
    assert any("repro.trees.forest" in f for f in failures)
    assert not any("repro.core.batch_msf" in f for f in failures)


def test_every_engine_batch_method_is_documented():
    """Every public ``batch_*`` method on the engine seam has a doc
    mention (docs/batch_queries.md covers the read kernels)."""
    mod = _load_check_docs()
    assert mod.check_batch_method_coverage(mod.default_targets()) == []


def test_batch_method_lint_flags_missing_mention(tmp_path):
    mod = _load_check_docs()
    page = tmp_path / "page.md"
    page.write_text("mentions batch_link and batch_cut and batch_update\n")
    failures = mod.check_batch_method_coverage([page])
    assert any("batch_is_connected" in f for f in failures)
    assert any("batch_path_max" in f for f in failures)
    assert not any("batch_link" in f for f in failures)


def test_batch_method_enumeration_sees_read_kernels():
    mod = _load_check_docs()
    names = mod.engine_batch_methods()
    for required in ("batch_is_connected", "batch_path_max", "batch_connected"):
        assert required in names


def test_every_internal_doc_link_resolves():
    """No doc page may ship a dead cross-reference or anchor."""
    mod = _load_check_docs()
    assert mod.check_links(mod.default_targets()) == []


def test_link_lint_flags_missing_file_and_anchor(tmp_path):
    mod = _load_check_docs()
    good = tmp_path / "good.md"
    good.write_text("# Real Heading\n\nbody\n")
    page = tmp_path / "page.md"
    page.write_text(
        "[ok](good.md) [ok too](good.md#real-heading)\n"
        "[gone](missing.md) [bad anchor](good.md#not-a-heading)\n"
        "[external](https://example.com/nope) [mail](mailto:a@b.c)\n"
    )
    failures = mod.check_links([page])
    assert len(failures) == 2
    assert any("missing.md" in f for f in failures)
    assert any("not-a-heading" in f for f in failures)


def test_link_lint_same_file_anchor(tmp_path):
    mod = _load_check_docs()
    page = tmp_path / "page.md"
    page.write_text(
        "# One\n\n[up](#one) [down](#two) [nowhere](#three)\n\n## Two\n"
    )
    failures = mod.check_links([page])
    assert len(failures) == 1 and "#three" in failures[0]


def test_link_lint_ignores_code_fences(tmp_path):
    mod = _load_check_docs()
    page = tmp_path / "page.md"
    page.write_text(
        "prose\n\n```python\nx = table[key](arg)  # not a link\n```\n"
    )
    assert mod.check_links([page]) == []


def test_github_anchor_slugging():
    mod = _load_check_docs()
    assert mod.github_anchor("Failover walkthrough") == "failover-walkthrough"
    assert (
        mod.github_anchor("The service layer (`repro.service`)")
        == "the-service-layer-reproservice"
    )
    assert mod.github_anchor("p50/p99, explained") == "p50p99-explained"


@pytest.mark.parametrize(
    "module",
    [
        "repro.runtime.cost",
        "repro.runtime.scheduler",
        "repro.trees.rcforest",
        "repro.trees.rcarray",
    ],
)
def test_runtime_doctests_pass(module):
    """The docstring examples actually run and pass."""
    mod = sys.modules.get(module) or __import__(module, fromlist=["_"])
    results = doctest.testmod(mod, verbose=False)
    assert results.attempted > 0, f"{module} lost its doctests"
    assert results.failed == 0
