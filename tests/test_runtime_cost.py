"""Unit tests for the work-span cost model."""

import pytest

from repro.runtime import Cost, CostModel, measure
from repro.runtime.cost import log2ceil


class TestCostAlgebra:
    def test_sequential_composition_adds_both(self):
        assert Cost(3, 2) + Cost(5, 7) == Cost(8, 9)

    def test_parallel_composition_adds_work_maxes_span(self):
        assert Cost(3, 2) | Cost(5, 7) == Cost(8, 7)

    def test_zero_is_identity(self):
        c = Cost(4, 4)
        assert c + Cost.zero() == c
        assert c | Cost.zero() == c

    def test_log2ceil_values(self):
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1
        assert log2ceil(3) == 2
        assert log2ceil(4) == 2
        assert log2ceil(1024) == 10
        assert log2ceil(1025) == 11


class TestCostModel:
    def test_add_accumulates(self):
        cm = CostModel()
        cm.add(work=10, span=3)
        cm.add(work=5, span=2)
        assert (cm.work, cm.span) == (15, 5)

    def test_disabled_model_is_inert(self):
        cm = CostModel(enabled=False)
        cm.add(work=10, span=3)
        cm.bulk(100)
        assert (cm.work, cm.span) == (0, 0)

    def test_bulk_charges_log_span(self):
        cm = CostModel()
        cm.bulk(1024)
        assert cm.work == 1024
        assert cm.span == 10

    def test_bulk_of_zero_is_free(self):
        cm = CostModel()
        cm.bulk(0)
        assert (cm.work, cm.span) == (0, 0)

    def test_parallel_block_takes_max_span(self):
        cm = CostModel()
        with cm.parallel() as fork:
            with fork.branch() as b1:
                b1.add(work=10, span=4)
            with fork.branch() as b2:
                b2.add(work=20, span=9)
        assert cm.work == 30
        assert cm.span == 9

    def test_nested_parallel_blocks(self):
        cm = CostModel()
        cm.add(span=1)
        with cm.parallel() as fork:
            with fork.branch() as b:
                with b.parallel() as inner:
                    with inner.branch() as x:
                        x.add(work=1, span=5)
                    with inner.branch() as y:
                        y.add(work=1, span=3)
            with fork.branch() as b2:
                b2.add(work=7, span=2)
        assert cm.work == 9
        assert cm.span == 1 + 5

    def test_snapshot_and_since(self):
        cm = CostModel()
        cm.add(work=5, span=5)
        snap = cm.snapshot()
        cm.add(work=2, span=1)
        assert cm.since(snap) == Cost(2, 1)

    def test_measure_context(self):
        cm = CostModel()
        cm.add(work=100, span=10)
        with measure(cm) as m:
            cm.add(work=7, span=3)
        assert (m.work, m.span) == (7, 3)
        assert m.cost() == Cost(7, 3)

    def test_reset(self):
        cm = CostModel()
        cm.add(work=3, span=3)
        cm.reset()
        assert (cm.work, cm.span) == (0, 0)


class TestHashing:
    def test_bits_deterministic(self):
        from repro.runtime import HashBits

        h1, h2 = HashBits(seed=42), HashBits(seed=42)
        assert [h1.bit(v, r) for v in range(50) for r in range(5)] == [
            h2.bit(v, r) for v in range(50) for r in range(5)
        ]

    def test_bits_roughly_balanced(self):
        from repro.runtime import HashBits

        h = HashBits(seed=7)
        ones = sum(h.bit(v, 0) for v in range(4000))
        assert 1700 < ones < 2300

    def test_different_seeds_differ(self):
        from repro.runtime import HashBits

        a = [HashBits(1).bit(v, 0) for v in range(128)]
        b = [HashBits(2).bit(v, 0) for v in range(128)]
        assert a != b

    def test_splitmix_is_64bit(self):
        from repro.runtime import splitmix64

        for x in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(x) < 2**64


class TestScheduler:
    def test_sequential_map(self):
        from repro.runtime import SequentialScheduler

        s = SequentialScheduler()
        assert s.map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]

    def test_thread_pool_map_matches_sequential(self):
        from repro.runtime import SequentialScheduler, ThreadPoolScheduler

        with ThreadPoolScheduler(max_workers=4) as pool:
            xs = list(range(100))
            assert pool.map(lambda x: x + 1, xs) == SequentialScheduler().map(
                lambda x: x + 1, xs
            )

    def test_default_scheduler_swap(self):
        from repro.runtime import (
            SequentialScheduler,
            get_default_scheduler,
            set_default_scheduler,
        )

        old = get_default_scheduler()
        new = SequentialScheduler()
        prev = set_default_scheduler(new)
        try:
            assert prev is old
            assert get_default_scheduler() is new
        finally:
            set_default_scheduler(old)

    def test_starmap(self):
        from repro.runtime import SequentialScheduler

        s = SequentialScheduler()
        assert s.starmap(lambda a, b: a - b, [(5, 2), (9, 4)]) == [3, 5]


class TestParallelRegions:
    def test_sum_work_max_span(self):
        from repro.runtime import parallel_regions

        parent = CostModel()
        a, b = CostModel(), CostModel()
        out = parallel_regions(
            parent,
            [
                (a, lambda: (a.add(work=10, span=4), "A")[1]),
                (b, lambda: (b.add(work=5, span=9), "B")[1]),
            ],
        )
        assert out == ["A", "B"]
        assert parent.work == 15 and parent.span == 9

    def test_only_deltas_counted(self):
        from repro.runtime import parallel_regions

        parent = CostModel()
        a = CostModel()
        a.add(work=100, span=100)  # pre-existing charges must not leak
        parallel_regions(parent, [(a, lambda: a.add(work=1, span=1))])
        assert parent.work == 1 and parent.span == 1

    def test_empty_regions(self):
        from repro.runtime import parallel_regions

        parent = CostModel()
        assert parallel_regions(parent, []) == []
        assert parent.work == 0 and parent.span == 0
