"""Tests for compressed path trees (Section 3) over the DynamicForest."""

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import CostModel
from repro.trees import DynamicForest


def brute_path_max(g, u, v):
    if u == v or u not in g or v not in g or not nx.has_path(g, u, v):
        return None
    path = nx.shortest_path(g, u, v)
    return max((g[a][b]["w"], g[a][b]["eid"]) for a, b in zip(path, path[1:]))


def nx_of(forest_edges):
    g = nx.Graph()
    for u, v, w, eid in forest_edges:
        g.add_edge(u, v, w=w, eid=eid)
    return g


class TestSmallCases:
    def test_single_marked_vertex(self):
        f = DynamicForest(4)
        f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1)])
        cpt = f.compressed_path_tree([1])
        assert cpt.vertices == [1]
        assert cpt.edges == []

    def test_two_marked_on_path(self):
        f = DynamicForest(5)
        f.batch_link([(i, i + 1, float(10 - i), i) for i in range(4)])
        cpt = f.compressed_path_tree([0, 4])
        assert cpt.vertices == [0, 4]
        assert len(cpt.edges) == 1
        a, b, w, eid = cpt.edges[0]
        assert {a, b} == {0, 4}
        assert (w, eid) == (10.0, 0)  # heaviest edge is the first one

    def test_disconnected_marks(self):
        f = DynamicForest(4)
        f.batch_link([(0, 1, 1.0, 0)])
        cpt = f.compressed_path_tree([0, 1, 3])
        assert cpt.vertices == [0, 1, 3]
        assert len(cpt.edges) == 1  # only 0--1 connected

    def test_steiner_vertex_appears_at_branch(self):
        # Star: center 0, marked leaves 1, 2, 3 -> center is Steiner.
        f = DynamicForest(5)
        f.batch_link([(0, i, float(i), i) for i in (1, 2, 3, 4)])
        cpt = f.compressed_path_tree([1, 2, 3])
        assert set(cpt.vertices) == {0, 1, 2, 3}
        assert sorted((min(a, b), max(a, b)) for a, b, _, _ in cpt.edges) == [
            (0, 1),
            (0, 2),
            (0, 3),
        ]

    def test_degree_two_steiner_is_spliced(self):
        # Path 0-1-2 with only endpoints marked: 1 must be spliced out.
        f = DynamicForest(3)
        f.batch_link([(0, 1, 5.0, 0), (1, 2, 7.0, 1)])
        cpt = f.compressed_path_tree([0, 2])
        assert cpt.vertices == [0, 2]
        assert cpt.edges[0][2:] == (7.0, 1)

    def test_marked_degree_two_vertex_stays(self):
        f = DynamicForest(3)
        f.batch_link([(0, 1, 5.0, 0), (1, 2, 7.0, 1)])
        cpt = f.compressed_path_tree([0, 1, 2])
        assert cpt.vertices == [0, 1, 2]
        assert len(cpt.edges) == 2

    def test_out_of_range_mark_raises(self):
        f = DynamicForest(3)
        with pytest.raises(KeyError):
            f.compressed_path_tree([7])

    def test_high_degree_vertex_marked(self):
        # Marked center of a star: ternarization copies must merge back.
        f = DynamicForest(8)
        f.batch_link([(0, i, float(i), i) for i in range(1, 8)])
        cpt = f.compressed_path_tree([0, 3, 6])
        assert set(cpt.vertices) == {0, 3, 6}
        pairs = sorted((min(a, b), max(a, b)) for a, b, _, _ in cpt.edges)
        assert pairs == [(0, 3), (0, 6)]


class TestSemantics:
    @pytest.mark.parametrize("seed", range(5))
    def test_pairwise_path_max_preserved(self, seed):
        rng = random.Random(seed)
        n = 30
        f = DynamicForest(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        links, eid = [], 0
        for _ in range(40):
            a, b = rng.randrange(n), rng.randrange(n)
            if a == b or (a in g and b in g and nx.has_path(g, a, b)):
                continue
            w = rng.uniform(0, 10)
            links.append((a, b, w, eid))
            g.add_edge(a, b, w=w, eid=eid)
            eid += 1
        f.batch_link(links)
        marks = sorted(rng.sample(range(n), 6))
        cpt = f.compressed_path_tree(marks)
        cg = nx_of(cpt.edges)
        for v in cpt.vertices:
            cg.add_node(v)
        for i, a in enumerate(marks):
            for b in marks[i + 1 :]:
                assert brute_path_max(cg, a, b) == brute_path_max(g, a, b)

    @pytest.mark.parametrize("seed", range(5))
    def test_minimality_and_size(self, seed):
        rng = random.Random(100 + seed)
        n = 40
        f = DynamicForest(n, seed=seed)
        links = [(rng.randrange(v), v, rng.uniform(0, 1), v) for v in range(1, n)]
        f.batch_link(links)
        ell = rng.randrange(1, 10)
        marks = sorted(rng.sample(range(n), ell))
        cpt = f.compressed_path_tree(marks)
        cg = nx_of(cpt.edges)
        for v in cpt.vertices:
            cg.add_node(v)
        for v in cpt.vertices:
            if v not in cpt.marked:
                assert cg.degree(v) >= 3, "unmarked vertex of degree < 3 survived"
        assert len(cpt.vertices) <= 2 * ell  # Lemma 3.2: O(l) vertices
        assert len(cpt.edges) < 2 * ell

    def test_edge_ids_identify_physical_edges(self):
        f = DynamicForest(6)
        links = [(0, 1, 3.0, 10), (1, 2, 9.0, 11), (2, 3, 1.0, 12), (3, 4, 4.0, 13)]
        f.batch_link(links)
        cpt = f.compressed_path_tree([0, 4])
        ((_, _, w, eid),) = cpt.edges
        assert (w, eid) == (9.0, 11)
        u, v, w2 = f.edge_info(eid)
        assert {u, v} == {1, 2} and w2 == 9.0

    def test_cost_scales_with_marks_not_n(self):
        n = 2048
        cost = CostModel()
        f = DynamicForest(n, seed=2, cost=cost)
        f.batch_link([(i, i + 1, float(i % 7), i) for i in range(n - 1)])
        snap = cost.snapshot()
        f.compressed_path_tree([0, n // 2, n - 1])
        small = cost.since(snap).work
        snap = cost.snapshot()
        f.compressed_path_tree(list(range(0, n, 2)))
        large = cost.since(snap).work
        assert small < n // 4, "CPT of 3 marks should not scan the whole tree"
        assert large > small


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_cpt_preserves_all_pairs(data):
    n = data.draw(st.integers(2, 20))
    seed = data.draw(st.integers(0, 1000))
    f = DynamicForest(n, seed=seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    links = []
    for v in range(1, n):
        if data.draw(st.booleans()):
            p = data.draw(st.integers(0, v - 1))
            w = float(data.draw(st.integers(0, 50)))
            links.append((p, v, w, v))
            g.add_edge(p, v, w=w, eid=v)
    if links:
        f.batch_link(links)
    ell = data.draw(st.integers(1, min(n, 6)))
    marks = sorted(data.draw(st.sets(st.integers(0, n - 1), min_size=ell, max_size=ell)))
    cpt = f.compressed_path_tree(marks)
    cg = nx_of(cpt.edges)
    for v in cpt.vertices:
        cg.add_node(v)
    for i, a in enumerate(marks):
        for b in marks[i + 1 :]:
            assert brute_path_max(cg, a, b) == brute_path_max(g, a, b)
