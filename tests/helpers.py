"""Shared test utilities: random graph construction and networkx oracles."""

from __future__ import annotations

import random

import networkx as nx
import numpy as np

from repro.msf.graph import EdgeArray


def random_edge_array(
    n: int,
    m: int,
    rng: random.Random,
    weight_range: tuple[float, float] = (0.0, 1.0),
    allow_parallel: bool = True,
) -> EdgeArray:
    """A random multigraph edge list with distinct eids 0..m-1."""
    lo, hi = weight_range
    rows = []
    seen = set()
    attempts = 0
    while len(rows) < m and attempts < 50 * m + 100:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if not allow_parallel and key in seen:
            continue
        seen.add(key)
        rows.append((u, v, rng.uniform(lo, hi), len(rows)))
    return EdgeArray.from_tuples(n, rows)


def nx_msf_weight(edges: EdgeArray) -> float:
    """Total MSF weight computed by networkx (oracle)."""
    g = nx.Graph()
    g.add_nodes_from(range(edges.n))
    for u, v, w, eid in edges.iter_tuples():
        if g.has_edge(u, v):
            if (w, eid) < (g[u][v]["weight"], g[u][v]["eid"]):
                g[u][v]["weight"] = w
                g[u][v]["eid"] = eid
        else:
            g.add_edge(u, v, weight=w, eid=eid)
    forest = nx.minimum_spanning_edges(g, algorithm="kruskal", data=True)
    return sum(d["weight"] for _, _, d in forest)


def msf_weight_of(edges: EdgeArray, positions: np.ndarray) -> float:
    return float(edges.w[positions].sum())


def is_forest(edges: EdgeArray, positions: np.ndarray) -> bool:
    g = nx.MultiGraph()
    g.add_nodes_from(range(edges.n))
    for p in positions:
        g.add_edge(int(edges.u[p]), int(edges.v[p]))
    return nx.number_of_edges(g) == edges.n - nx.number_connected_components(g)


def spans_same_components(edges: EdgeArray, positions: np.ndarray) -> bool:
    """The selected forest connects exactly the components of the graph."""
    g_all = nx.Graph()
    g_all.add_nodes_from(range(edges.n))
    g_all.add_edges_from(zip(edges.u.tolist(), edges.v.tolist()))
    g_sel = nx.Graph()
    g_sel.add_nodes_from(range(edges.n))
    for p in positions:
        g_sel.add_edge(int(edges.u[p]), int(edges.v[p]))
    comps_all = {frozenset(c) for c in nx.connected_components(g_all)}
    comps_sel = {frozenset(c) for c in nx.connected_components(g_sel)}
    return comps_all == comps_sel
