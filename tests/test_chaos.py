"""Chaos engineering: fault injection, retry/backoff, degraded serving.

Fast sections unit-test each resilience primitive in isolation -- the
seeded :class:`FaultyIO` adversary, the WAL's append-repair invariant
under it, :class:`RetryPolicy`, :class:`CircuitBreaker`, overload
shedding, and degraded reads through a dead primary.  The slow section
is the acceptance soak: a seeded :class:`ChaosSchedule` of >= 50
adversities (follower kills/restarts, storage fault windows, primary
kills with failover) played against a live replicated service, after
which every surviving node must be byte-identical to the fault-free
oracle replayed from the winning WAL chain -- on both RC-tree engines.
"""

from __future__ import annotations

import errno
import random
import time

import pytest

from repro.chaos import ChaosDriver, ChaosEvent, ChaosSchedule, FaultyIO
from repro.chaos.faults import SNAPSHOT_SUFFIX, is_snapshot_path
from repro.chaos.schedule import replay_oracle
from repro.graphgen.streams import bursty_stream
from repro.replication import ReplicatedService
from repro.service import (
    CircuitBreaker,
    RetryPolicy,
    SegmentedWal,
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    StalenessExceeded,
    StorageIO,
    StreamService,
    WalCursor,
    is_transient_io,
)
from repro.service.query import QueryService
from repro.service.wal import WalCorruption
from repro.sliding_window import SWConnectivityEager

N = 24
SEED = 13
OPS = [("i", ((0, 1),))]

NO_SLEEP = lambda s: None  # noqa: E731


def make_sw(engine=None):
    return SWConnectivityEager(N, seed=SEED, engine=engine)


def fingerprint(sw):
    return (
        sw.num_components,
        sorted(sw.forest_edges()),
        sw._msf.forest.rc.snapshot(),
    )


def stream_rounds(rounds=8, seed=SEED):
    rng = random.Random(seed)
    return bursty_stream(
        N, rounds=rounds, base_batch=4, burst_batch=10, window=20, rng=rng
    )


def chaos_config(faults, **kw):
    # Chaos runs keep the full chain (the oracle replays from lsn 0) and
    # flush one explicit round per step.
    kw.setdefault("flush_edges", 10**9)
    kw.setdefault("snapshot_every", 10**9)
    kw.setdefault("io", faults)
    kw.setdefault("retry", RetryPolicy(sleep=NO_SLEEP))
    return ServiceConfig(**kw)


class ScriptedIO(StorageIO):
    """Raises a transient EIO on exactly the scripted call indices."""

    def __init__(self, fail_reads=(), fail_appends=()):
        self.fail_reads = set(fail_reads)
        self.fail_appends = set(fail_appends)
        self.reads = 0
        self.appends = 0

    def read_from(self, path, offset):
        self.reads += 1
        if self.reads in self.fail_reads:
            raise OSError(errno.EIO, "scripted read error")
        return super().read_from(path, offset)

    def append(self, f, data):
        self.appends += 1
        if self.appends in self.fail_appends:
            raise OSError(errno.EIO, "scripted append error")
        super().append(f, data)


# ---------------------------------------------------------------------------
# FaultyIO
# ---------------------------------------------------------------------------


class TestFaultyIO:
    def test_disarmed_injects_nothing(self, tmp_path):
        io = FaultyIO(seed=1, p_write_error=1.0, p_read_error=1.0)
        wal = SegmentedWal(tmp_path, io=io)
        wal.append(OPS)
        assert io.injected == 0
        wal.close()

    def test_same_seed_same_decisions(self):
        def decisions(seed):
            io = FaultyIO(seed=seed, p_read_error=0.5)
            io.arm()
            return [io._roll(io.p_read_error, "read_error") for _ in range(64)]

        assert decisions(3) == decisions(3)
        assert decisions(3) != decisions(4)

    def test_budget_bounds_a_window(self):
        io = FaultyIO(seed=0, p_read_error=1.0)
        io.arm(max_faults=2)
        hits = 0
        for _ in range(10):
            try:
                io.read_from("/nonexistent", 0)
            except OSError as exc:
                if exc.errno == errno.EIO:
                    hits += 1
        assert hits == 2  # later calls fail on the real path, not injection
        assert io.injected == 2
        assert not io.armed

    def test_torn_write_leaves_strict_prefix(self, tmp_path):
        io = FaultyIO(seed=5, p_torn_write=1.0)
        p = tmp_path / "f.bin"
        io.arm()
        with open(p, "wb") as f:
            with pytest.raises(OSError):
                io.append(f, b"x" * 100)
        assert 0 < p.stat().st_size < 100

    def test_bitflip_targets_snapshots_only(self, tmp_path):
        io = FaultyIO(seed=2, p_bitflip=1.0)
        snap = tmp_path / ("s" + SNAPSHOT_SUFFIX)
        log = tmp_path / "seg.jsonl"
        payload = b"\x00" * 32
        snap.write_bytes(payload)
        log.write_bytes(payload)
        io.arm()
        assert is_snapshot_path(snap) and not is_snapshot_path(log)
        assert io.read_bytes(snap) != payload
        assert io.read_bytes(log) == payload

    def test_transient_errnos_classified(self):
        assert is_transient_io(OSError(errno.EIO, "x"))
        assert is_transient_io(OSError(errno.ENOSPC, "x"))
        assert not is_transient_io(OSError(errno.EBADF, "x"))
        assert not is_transient_io(WalCorruption("x"))
        assert not is_transient_io(ValueError("x"))


# ---------------------------------------------------------------------------
# WAL under faults
# ---------------------------------------------------------------------------


class TestWalUnderFaults:
    def test_append_repairs_and_retries_same_lsn(self, tmp_path):
        io = ScriptedIO(fail_appends={3})  # call 1 is the segment header
        wal = SegmentedWal(tmp_path, io=io)
        wal.append(OPS)
        with pytest.raises(OSError):
            wal.append(OPS)
        # The failed round was discarded whole; the retry reuses its LSN.
        assert wal.append(OPS) == 1
        wal.close()
        cur = WalCursor(tmp_path)
        assert [r.lsn for r in cur.poll()] == [0, 1]

    def test_torn_append_repairs_on_retry(self, tmp_path):
        io = FaultyIO(seed=11, p_torn_write=1.0)
        wal = SegmentedWal(tmp_path, io=io)
        wal.append(OPS)
        io.arm(max_faults=1)
        with pytest.raises(OSError):
            wal.append(OPS)
        assert wal.append(OPS) == 1  # prefix truncated away, clean retry
        wal.close()
        cur = WalCursor(tmp_path)
        assert [r.lsn for r in cur.poll()] == [0, 1]

    def test_cursor_mid_poll_fault_keeps_partial_progress(self, tmp_path):
        # Regression: a transient read fault on a *later* iteration of one
        # poll() must not discard records already extracted (the cursor
        # position has advanced past them -- raising would skip them
        # forever).  Rotation forces poll() to read twice.
        wal = SegmentedWal(tmp_path)
        wal.append(OPS)
        wal.rotate()
        wal.append(OPS)
        wal.close()
        io = ScriptedIO(fail_reads={2})
        cur = WalCursor(tmp_path, io=io)
        first = cur.poll()
        assert [r.lsn for r in first] == [0]  # partial delivery, no raise
        assert [r.lsn for r in cur.poll()] == [1]

    def test_cursor_first_read_fault_raises_clean(self, tmp_path):
        # With nothing delivered yet the poll raises, and crucially the
        # position is untouched: a retry sees every record.
        wal = SegmentedWal(tmp_path)
        wal.append(OPS)
        wal.close()
        io = ScriptedIO(fail_reads={1})
        cur = WalCursor(tmp_path, io=io)
        with pytest.raises(OSError):
            cur.poll()
        assert [r.lsn for r in cur.poll()] == [0]

    def test_service_commit_retries_transient_append(self, tmp_path):
        io = ScriptedIO(fail_appends={2})  # call 1 is the segment header
        svc = StreamService(
            make_sw(),
            data_dir=tmp_path,
            config=ServiceConfig(
                flush_edges=10**9, io=io, retry=RetryPolicy(sleep=NO_SLEEP)
            ),
        )
        svc.submit_insert([(0, 1), (1, 2)])
        assert svc.flush() == 0  # retried under the policy, not surfaced
        assert svc.alive
        svc.close()


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoffs_deterministic_and_bounded(self):
        p = RetryPolicy(attempts=5, base_delay=0.01, max_delay=0.04, seed=9)
        a, b = p.backoffs(), p.backoffs()
        assert a == b and len(a) == 4
        assert all(0.005 <= d <= 0.04 for d in a)
        assert a != RetryPolicy(attempts=5, base_delay=0.01, seed=10).backoffs()

    def test_retries_transient_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError(errno.EIO, "transient")
            return "ok"

        slept = []
        p = RetryPolicy(attempts=4, sleep=slept.append)
        assert p.call(flaky) == "ok"
        assert len(calls) == 3 and len(slept) == 2

    def test_non_transient_raises_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise WalCorruption("damage")

        with pytest.raises(WalCorruption):
            RetryPolicy(attempts=5, sleep=NO_SLEEP).call(bad)
        assert len(calls) == 1  # corruption is never retried

    def test_attempts_exhausted_raises_last_error(self):
        calls = []

        def always():
            calls.append(1)
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(OSError):
            RetryPolicy(attempts=3, sleep=NO_SLEEP).call(always)
        assert len(calls) == 3

    def test_deadline_stops_early(self):
        def always():
            raise OSError(errno.EIO, "transient")

        p = RetryPolicy(
            attempts=50, base_delay=10.0, deadline=0.001, sleep=NO_SLEEP
        )
        t0 = time.monotonic()
        with pytest.raises(OSError):
            p.call(always)
        assert time.monotonic() - t0 < 1.0


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self):
        self.now = 0.0
        return CircuitBreaker(
            failure_threshold=2, cooldown=1.0, clock=lambda: self.now
        )

    def test_lifecycle(self):
        br = self.make()
        assert br.state("a") == "closed" and br.allow("a")
        br.record_failure("a")
        assert br.state("a") == "closed"
        br.record_failure("a")
        assert br.state("a") == "open" and not br.allow("a")
        self.now = 1.5
        assert br.state("a") == "half-open"
        assert br.allow("a")  # the single probe
        assert not br.allow("a")  # second caller rejected
        br.record_success("a")
        assert br.state("a") == "closed" and br.allow("a")

    def test_failed_probe_reopens(self):
        br = self.make()
        br.record_failure("a")
        br.record_failure("a")
        self.now = 1.5
        assert br.allow("a")
        br.record_failure("a")
        assert br.state("a") == "open"
        self.now = 2.0
        assert br.state("a") == "open"  # fresh cooldown from the re-open

    def test_cancel_hands_probe_back(self):
        br = self.make()
        br.record_failure("a")
        br.record_failure("a")
        self.now = 1.5
        assert br.allow("a")
        assert not br.allow("a")
        br.cancel("a")  # probe never ran (replica busy)
        assert br.allow("a")  # next caller may probe instead

    def test_keys_independent(self):
        br = self.make()
        br.record_failure("a")
        br.record_failure("a")
        assert not br.allow("a") and br.allow("b")
        br.reset("a")
        assert br.allow("a")


# ---------------------------------------------------------------------------
# Degraded serving and admission control
# ---------------------------------------------------------------------------


class TestDegradedServing:
    def kill_primary(self, svc):
        svc.primary.failpoints["before-wal-append"] = lambda lsn: True
        from repro.service import InjectedCrash

        with pytest.raises(InjectedCrash):
            svc.write([(9, 10)])
        assert not svc.primary.alive

    def test_degrade_serves_stale_from_best_follower(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=2
        ) as svc:
            token = 0
            for rnd in stream_rounds(5):
                token = svc.write(rnd.edges, rnd.expire)
            svc.poll()
            self.kill_primary(svc)
            qs = QueryService(svc, on_primary_down="degrade")
            # A token no follower can ever reach (the round died with the
            # primary) forces the primary fallback -- which is dead.
            res = qs.run([("components",)], at_least=token + 5)
            assert res.stale and res.replica.startswith("follower")
            # A plain read off a live follower is NOT flagged stale.
            assert qs.run([("components",)]).stale is False

    def test_fail_mode_raises_service_closed(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=1
        ) as svc:
            token = svc.write([(0, 1)])
            self.kill_primary(svc)
            qs = QueryService(svc, on_primary_down="fail")
            with pytest.raises(ServiceClosed):
                qs.run([("components",)], at_least=token + 5)

    def test_degrade_with_no_live_follower_raises_staleness(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=1
        ) as svc:
            svc.write([(0, 1)])
            self.kill_primary(svc)
            for f in svc.followers:
                f.kill()
            qs = QueryService(svc, on_primary_down="degrade")
            with pytest.raises(StalenessExceeded):
                qs.run([("components",)])

    def test_wait_fails_fast_with_no_live_replicas(self, tmp_path):
        # _wait_for is entered with a live replica that then dies; it must
        # fail fast instead of burning wait_timeout when nobody can ever
        # catch up, and fall back to the primary when *it* can serve.
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=1
        ) as svc:
            token = svc.write([(0, 1)])
            qs = QueryService(svc, on_lag="wait", wait_timeout=30.0)
            for f in svc.followers:
                f.kill()
            # Primary alive and has the round: fall back (None).
            assert qs._wait_for(token + 1) is None
            self.kill_primary(svc)
            t0 = time.monotonic()
            with pytest.raises(StalenessExceeded, match="no live replicas"):
                qs._wait_for(token + 1)
            assert time.monotonic() - t0 < 5.0  # not the 30s timeout

    def test_breaker_skips_repeat_offender(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=2
        ) as svc:
            svc.write([(0, 1)])
            svc.poll()
            from repro.replication import FollowerDead

            dead = svc.followers[0]

            def boom(fn):
                # Looks alive to routing but fails every read.
                raise FollowerDead(f"follower {dead.fid} is flaky")

            dead.try_query = boom
            dead.query = boom
            br = CircuitBreaker(failure_threshold=1, cooldown=60.0)
            qs = QueryService(svc, breaker=br)
            for _ in range(4):
                res = qs.run([("components",)])
                assert res.answers == [N - 1]
            assert br.state(dead.fid) == "open"

    def test_overload_sheds_with_retry_after(self, tmp_path):
        with ReplicatedService(
            make_sw, tmp_path, ServiceConfig(flush_edges=10**9), followers=1
        ) as svc:
            svc.write([(0, 1)])
            svc.poll()
            qs = QueryService(svc, max_inflight=1)
            assert qs.run([("components",)]).answers == [N - 1]
            assert qs._inflight.acquire(blocking=False)  # occupy the slot
            try:
                with pytest.raises(ServiceOverloaded) as ei:
                    qs.run([("components",)])
                assert ei.value.retry_after >= 0.0
            finally:
                qs._inflight.release()
            assert qs.run([("components",)]).answers == [N - 1]


# ---------------------------------------------------------------------------
# Schedules and the driver
# ---------------------------------------------------------------------------


class TestChaosSchedule:
    def test_same_seed_same_tape(self):
        a = ChaosSchedule.generate(seed=4, events=30, steps=100)
        b = ChaosSchedule.generate(seed=4, events=30, steps=100)
        assert a.events == b.events
        assert a.events != ChaosSchedule.generate(seed=5, events=30, steps=100).events

    def test_counts_and_primary_kills(self):
        s = ChaosSchedule.generate(seed=0, events=50, steps=200, primary_kills=3)
        c = s.counts()
        assert sum(c.values()) == 50
        assert c["primary_kill"] == 3
        assert all(0 <= e.step < 200 for e in s.events)
        with pytest.raises(ValueError):
            ChaosSchedule.generate(events=1, primary_kills=2)

    def test_at_returns_sorted_events(self):
        s = ChaosSchedule(
            seed=0,
            steps=10,
            events=[
                ChaosEvent(step=3, kind="kill_follower"),
                ChaosEvent(step=3, kind="fault_window", duration=2, budget=1),
                ChaosEvent(step=7, kind="restart_follower"),
            ],
        )
        assert [e.kind for e in s.at(3)] == ["fault_window", "kill_follower"]
        assert s.at(7) == [ChaosEvent(step=7, kind="restart_follower")]
        assert s.at(5) == []


class TestChaosDriver:
    def run_tape(self, tmp_path, seed=7, rounds=60, engine=None):
        factory = lambda: make_sw(engine)  # noqa: E731
        faults = FaultyIO(
            seed=seed,
            p_write_error=0.3,
            p_torn_write=0.2,
            p_fsync_error=0.2,
            p_read_error=0.2,
            p_bitflip=0.5,
            sleep=NO_SLEEP,
        )
        sched = ChaosSchedule.generate(
            seed=seed, events=25, steps=rounds, primary_kills=2
        )
        svc = ReplicatedService(
            factory,
            tmp_path,
            chaos_config(faults),
            followers=3,
            follower_retry=RetryPolicy(sleep=NO_SLEEP),
        )
        driver = ChaosDriver(svc, sched, faults)
        for step, rnd in enumerate(stream_rounds(rounds, seed=seed)):
            driver.step(step, rnd.edges, rnd.expire)
        driver.finish()
        return svc, driver, faults, factory

    def test_short_tape_converges_to_oracle(self, tmp_path):
        svc, driver, faults, factory = self.run_tape(tmp_path)
        oracle, tip = replay_oracle(factory, tmp_path)
        want = fingerprint(oracle)
        assert driver.stats["rounds"] == 60
        assert driver.stats["promotions"] >= 2
        assert faults.injected > 0
        assert fingerprint(svc.primary.structure) == want
        for f in svc.followers:
            if not f.alive:
                f.restart()
            f.catch_up()
            assert fingerprint(f.structure) == want
        svc.close()

    def test_oracle_requires_full_chain(self, tmp_path):
        svc = StreamService(
            make_sw(),
            data_dir=tmp_path,
            config=ServiceConfig(
                flush_edges=10**9, snapshot_every=2, retain_snapshots=1
            ),
        )
        for rnd in stream_rounds(10):
            svc.submit_insert(rnd.edges)
            if rnd.expire:
                svc.submit_expire(rnd.expire)
            svc.flush()
        svc.close()
        from repro.service.wal import WalTruncated

        with pytest.raises(WalTruncated):
            replay_oracle(make_sw, tmp_path)


# ---------------------------------------------------------------------------
# The acceptance soak (slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("engine", ["array", "object"])
@pytest.mark.parametrize("seed", [7, 21])
def test_chaos_soak_converges_on_oracle(tmp_path, engine, seed):
    """>= 50 seeded adversities; every node must match the replay oracle."""
    rounds = 120
    factory = lambda: make_sw(engine)  # noqa: E731
    faults = FaultyIO(
        seed=seed,
        p_write_error=0.3,
        p_torn_write=0.2,
        p_fsync_error=0.2,
        p_read_error=0.2,
        p_bitflip=0.5,
        sleep=NO_SLEEP,
    )
    sched = ChaosSchedule.generate(
        seed=seed, events=50, steps=rounds, primary_kills=3
    )
    assert sum(sched.counts().values()) >= 50
    svc = ReplicatedService(
        factory,
        tmp_path,
        chaos_config(faults),
        followers=3,
        follower_retry=RetryPolicy(sleep=NO_SLEEP),
    )
    driver = ChaosDriver(svc, sched, faults)
    for step, rnd in enumerate(stream_rounds(rounds, seed=seed)):
        driver.step(step, rnd.edges, rnd.expire)
    driver.finish()

    oracle, tip = replay_oracle(factory, tmp_path)
    want = fingerprint(oracle)
    assert driver.stats["rounds"] == rounds
    assert driver.stats["promotions"] >= 3
    assert driver.stats["follower_kills"] > 0
    assert faults.injected > 0
    assert svc.primary.next_lsn == tip
    assert fingerprint(svc.primary.structure) == want
    for f in svc.followers:
        if not f.alive:
            f.restart()
        f.catch_up()
        assert f.replayed_lsn == tip
        assert fingerprint(f.structure) == want
    svc.close()
