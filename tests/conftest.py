"""Shared pytest configuration: Hypothesis profiles.

Property-based suites run under one of two registered profiles:

- ``dev`` (default): Hypothesis's stock settings -- thorough local runs.
- ``ci``: bounded example counts and no deadline, so the full tier-1
  suite stays fast and flake-free on shared CI runners.

Select one with ``HYPOTHESIS_PROFILE=ci pytest`` (the CI workflow in
``.github/workflows/ci.yml`` does exactly that).  Suites that pin their
own ``@settings`` (the stateful machines) keep their explicit values;
the profile governs everything else.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile("dev", settings())
settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
