"""Tests for the RC-tree query library: path aggregates (sum / length /
max), component aggregates (size / edge count / weight) and dynamic tree
diameter -- the "multitude of queries" of Section 2.2 [3], all O(lg n)."""

import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.trees import DynamicForest
from repro.trees.cpt import PathAggregate


class TestPathAggregates:
    @pytest.fixture()
    def forest(self):
        f = DynamicForest(6)
        f.batch_link([(0, 1, 2.0, 0), (1, 2, 5.0, 1), (2, 3, 1.0, 2), (4, 5, 7.0, 3)])
        return f

    def test_path_sum_and_length(self, forest):
        assert forest.path_sum(0, 3) == pytest.approx(8.0)
        assert forest.path_length(0, 3) == 3
        assert forest.path_sum(4, 5) == pytest.approx(7.0)
        assert forest.path_length(4, 5) == 1

    def test_same_vertex(self, forest):
        assert forest.path_sum(2, 2) == 0.0
        assert forest.path_length(2, 2) == 0
        assert forest.path_aggregate(2, 2) is None

    def test_disconnected(self, forest):
        assert forest.path_sum(0, 4) is None
        assert forest.path_length(0, 4) is None

    def test_aggregate_object(self, forest):
        agg = forest.path_aggregate(0, 3)
        assert isinstance(agg, PathAggregate)
        assert (agg.max_w, agg.max_eid) == (5.0, 1)
        assert agg.total == pytest.approx(8.0)
        assert agg.count == 3

    def test_aggregate_combine(self):
        a = PathAggregate(3.0, 1, 5.0, 2)
        b = PathAggregate(4.0, 0, 1.0, 1)
        c = a.combine(b)
        assert (c.max_w, c.max_eid) == (4.0, 0)
        assert c.total == 6.0 and c.count == 3

    def test_cpt_aggregates_aligned(self, forest):
        cpt = forest.compressed_path_tree([0, 3, 4])
        assert len(cpt.aggregates) == len(cpt.edges)
        for (a, b, w, eid), agg in zip(cpt.edges, cpt.aggregates):
            assert (agg.max_w, agg.max_eid) == (w, eid)
            assert agg.count >= 1

    def test_high_degree_path_sums(self):
        # Ternarization virtual edges must not pollute sums or counts.
        f = DynamicForest(10)
        f.batch_link([(0, i, float(i), i) for i in range(1, 10)])
        for i in range(2, 10):
            assert f.path_length(1, i) == 2
            assert f.path_sum(1, i) == pytest.approx(1.0 + i)


class TestComponentAggregates:
    def test_isolated_vertex(self):
        f = DynamicForest(3)
        assert f.component_size(0) == 1
        assert f.component_edge_count(0) == 0
        assert f.component_weight(0) == 0.0
        assert f.component_diameter(0) == 0.0

    def test_small_tree(self):
        f = DynamicForest(5)
        f.batch_link([(0, 1, 3.0, 0), (1, 2, 4.0, 1), (1, 3, 10.0, 2)])
        for v in (0, 1, 2, 3):
            assert f.component_size(v) == 4
            assert f.component_edge_count(v) == 3
            assert f.component_weight(v) == pytest.approx(17.0)
            assert f.component_diameter(v) == pytest.approx(14.0)  # 2..1..3
        assert f.component_size(4) == 1

    def test_diameter_updates_on_cut(self):
        f = DynamicForest(4)
        f.batch_link([(0, 1, 5.0, 0), (1, 2, 5.0, 1), (2, 3, 5.0, 2)])
        assert f.component_diameter(0) == pytest.approx(15.0)
        f.batch_cut([1])
        assert f.component_diameter(0) == pytest.approx(5.0)
        assert f.component_diameter(3) == pytest.approx(5.0)

    def test_diameter_through_high_degree_vertex(self):
        f = DynamicForest(8)
        f.batch_link([(0, i, float(i), i) for i in range(1, 8)])
        # Diameter is the two heaviest spokes: 7 + 6.
        assert f.component_diameter(0) == pytest.approx(13.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_oracle(self, seed):
        rng = random.Random(seed)
        n = 32
        f = DynamicForest(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        live = {}
        eid = 0
        for _ in range(40):
            cut = [e for e in list(live) if rng.random() < 0.2]
            for e in cut:
                a, b = live.pop(e)
                g.remove_edge(a, b)
            links = []
            for _ in range(rng.randrange(0, 5)):
                a, b = rng.randrange(n), rng.randrange(n)
                if a == b or nx.has_path(g, a, b):
                    continue
                w = round(rng.uniform(0.5, 9.0), 3)
                links.append((a, b, w, eid))
                live[eid] = (a, b)
                g.add_edge(a, b, w=w)
                eid += 1
            f.batch_update(links=links, cut_eids=cut)
        for comp in nx.connected_components(g):
            v = next(iter(comp))
            sub = g.subgraph(comp)
            assert f.component_size(v) == len(comp)
            assert f.component_edge_count(v) == sub.number_of_edges()
            assert f.component_weight(v) == pytest.approx(
                sum(d["w"] for _, _, d in sub.edges(data=True))
            )
            expect = 0.0
            dist = dict(nx.all_pairs_dijkstra_path_length(sub, weight="w"))
            for x in comp:
                for y in comp:
                    expect = max(expect, dist[x][y])
            assert f.component_diameter(v) == pytest.approx(expect)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_property_path_aggregates_match_oracle(data):
    n = data.draw(st.integers(2, 16))
    f = DynamicForest(n, seed=data.draw(st.integers(0, 500)))
    g = nx.Graph()
    g.add_nodes_from(range(n))
    links = []
    for v in range(1, n):
        if data.draw(st.booleans()):
            p = data.draw(st.integers(0, v - 1))
            w = float(data.draw(st.integers(1, 20)))
            links.append((p, v, w, v))
            g.add_edge(p, v, w=w)
    if links:
        f.batch_link(links)
    u = data.draw(st.integers(0, n - 1))
    v = data.draw(st.integers(0, n - 1))
    if u != v and nx.has_path(g, u, v):
        p = nx.shortest_path(g, u, v)
        assert f.path_length(u, v) == len(p) - 1
        assert f.path_sum(u, v) == pytest.approx(
            sum(g[x][y]["w"] for x, y in zip(p, p[1:]))
        )
    elif u != v:
        assert f.path_length(u, v) is None


class TestEccentricityToolkit:
    """Diameter endpoints, eccentricity and farthest-vertex queries."""

    def test_isolated(self):
        f = DynamicForest(2)
        assert f.component_diameter_endpoints(0) == (0, 0)
        assert f.eccentricity(0) == 0.0
        assert f.farthest_vertex(0) == (0, 0.0)

    def test_path(self):
        f = DynamicForest(4)
        f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1), (2, 3, 4.0, 2)])
        assert set(f.component_diameter_endpoints(1)) == {0, 3}
        assert f.eccentricity(1) == pytest.approx(6.0)
        assert f.farthest_vertex(1) == (3, 6.0)
        assert f.eccentricity(3) == pytest.approx(7.0)

    def test_endpoints_update_after_cut(self):
        f = DynamicForest(5)
        f.batch_link([(0, 1, 5.0, 0), (1, 2, 5.0, 1), (2, 3, 5.0, 2), (3, 4, 5.0, 3)])
        assert set(f.component_diameter_endpoints(2)) == {0, 4}
        f.batch_cut([3])
        assert set(f.component_diameter_endpoints(2)) == {0, 3}
        assert f.farthest_vertex(4) == (4, 0.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_oracle(self, seed):
        rng = random.Random(200 + seed)
        n = 24
        f = DynamicForest(n, seed=seed)
        links = []
        for v in range(1, n):
            if rng.random() < 0.85:
                links.append((rng.randrange(v), v, round(rng.uniform(0.5, 9), 2), v))
        f.batch_link(links)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for u, v, w, _ in links:
            g.add_edge(u, v, w=w)
        for comp in nx.connected_components(g):
            sub = g.subgraph(comp)
            dist = dict(nx.all_pairs_dijkstra_path_length(sub, weight="w"))
            for u in list(comp)[:3]:
                expect = max(dist[u][x] for x in comp)
                assert f.eccentricity(u) == pytest.approx(expect)
                fv, fd = f.farthest_vertex(u)
                assert fd == pytest.approx(expect)
                assert dist[u][fv] == pytest.approx(expect)


class TestSplitAggregates:
    """What-if edge removal queries (cut -> query -> relink round trip)."""

    def test_split_small(self):
        f = DynamicForest(5)
        f.batch_link([(0, 1, 2.0, 0), (1, 2, 3.0, 1), (2, 3, 4.0, 2), (3, 4, 5.0, 3)])
        left, right = f.split_aggregates(1)  # cut between 1 and 2
        assert left["vertices"] == 2 and right["vertices"] == 3
        assert left["weight"] == pytest.approx(2.0)
        assert right["weight"] == pytest.approx(9.0)
        assert right["diameter"] == pytest.approx(9.0)

    def test_state_restored_exactly(self):
        f = DynamicForest(6, seed=9)
        f.batch_link([(0, 1, 1.0, 0), (1, 2, 2.0, 1), (2, 3, 3.0, 2)])
        before = f.rc.snapshot()
        f.split_aggregates(1)
        assert f.rc.snapshot() == before
        assert f.has_edge(1) and f.edge_info(1) == (1, 2, 2.0)

    def test_unknown_edge_raises(self):
        f = DynamicForest(3)
        with pytest.raises(KeyError):
            f.split_aggregates(42)

    @pytest.mark.parametrize("seed", range(2))
    def test_sides_match_oracle(self, seed):
        rng = random.Random(seed)
        n = 20
        f = DynamicForest(n, seed=seed)
        links = [(rng.randrange(v), v, round(rng.uniform(1, 5), 2), v) for v in range(1, n)]
        f.batch_link(links)
        g = nx.Graph()
        for u, v, w, eid in links:
            g.add_edge(u, v, w=w)
        for u, v, w, eid in rng.sample(links, 6):
            a, b = f.split_aggregates(eid)
            g.remove_edge(u, v)
            cu = nx.node_connected_component(g, u)
            cv = nx.node_connected_component(g, v)
            assert a["vertices"] == len(cu) and b["vertices"] == len(cv)
            assert a["edges"] == g.subgraph(cu).number_of_edges()
            assert b["weight"] == pytest.approx(
                sum(d["w"] for _, _, d in g.subgraph(cv).edges(data=True))
            )
            g.add_edge(u, v, w=w)


class TestLevelStatistics:
    def test_geometric_decay(self):
        import math

        from repro.trees.rcforest import RCForest
        from repro.trees.ternary import InternalLink

        for n in (128, 512, 2048):
            f = RCForest(vertices=range(n), seed=5)
            f.batch_update(
                links=[InternalLink(i, i + 1, 0.0, i) for i in range(n - 1)]
            )
            stats = f.level_statistics()
            assert stats[0] == n
            assert len(stats) <= 6 * math.log2(n)  # O(lg n) rounds w.h.p.
            assert sum(stats) <= 10 * n  # total leveled storage O(n)
            # Strictly decreasing from some point; a constant-fraction drop
            # every few rounds.
            for i in range(0, len(stats) - 4, 4):
                assert stats[i + 4] < stats[i]
