"""Batched read kernels: differential, determinism, and service grouping.

The vectorized batch reads (``batch_is_connected`` / ``batch_path_max``;
docs/batch_queries.md) have three implementations -- the shared scalar
reference (:mod:`repro.trees.batchquery`), used by the object engine and
by the array engine under ``DENSE_THRESHOLD``, and the array engine's
NumPy level sweep.  All three must return the answers of the per-query
oracles and charge identical work/span to identical phases; Hypothesis
drives all three through identical random forests and pair batches.

Reads must also be *pure*: interleaving batch reads with an insert
stream must leave the maintained MSF byte-identical.  And the service
layer's read grouping must dispatch through the batched entry points
when the structure has them, falling back (with a ``query.fallback``
metric, never silently) when it has only the per-query methods.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchIncrementalMSF
from repro.obs.metrics import get_metrics
from repro.runtime import CostModel, measure
from repro.service import UnsupportedQuery
from repro.service.query import answer_queries
from repro.trees import DynamicForest

# Small vertex counts force shared ancestors, repeated endpoints,
# self-pairs, and cross-component pairs in nearly every example.
N = 12
_VERTS = st.integers(0, N - 1)
_WEIGHT = st.integers(0, 6).map(float)
_EDGE = st.tuples(_VERTS, _VERTS, _WEIGHT)
_BATCHES = st.lists(st.lists(_EDGE, max_size=10), min_size=1, max_size=4)
_PAIRS = st.lists(st.tuples(_VERTS, _VERTS), min_size=1, max_size=24)


def _strip_wall(d):
    """Drop ``wall_s`` (real time); the simulated phase tree -- names,
    work, span, calls, items -- is what must be deterministic."""
    return {
        k: ([_strip_wall(c) for c in v] if k == "children" else v)
        for k, v in d.items()
        if k != "wall_s"
    }


def _forest_trio(seed=5):
    """(object, array-scalar, array-dense) forests with their models.

    The third forest forces the dense SoA sweep for *every* batch read
    via the ``DENSE_THRESHOLD`` instance override, so each example
    exercises both array read paths.
    """
    co, ca, cd = CostModel(), CostModel(), CostModel()
    fo = DynamicForest(N, seed=seed, cost=co, engine="object")
    fa = DynamicForest(N, seed=seed, cost=ca, engine="array")
    fd = DynamicForest(N, seed=seed, cost=cd, engine="array")
    fd.rc.DENSE_THRESHOLD = 0
    return (fo, co), (fa, ca), (fd, cd)


class TestKernelDifferential:
    @given(batches=_BATCHES, pairs=_PAIRS)
    @settings(deadline=None)
    def test_three_paths_match_oracle_and_each_other(self, batches, pairs):
        (fo, co), (fa, ca), (fd, cd) = _forest_trio()
        # Per-query oracle runs on its own forest so the compared cost
        # models only ever see links + batch reads.
        oracle = DynamicForest(N, seed=5, engine="object")
        # Union-find keeps every batch a forest batch (acyclic after
        # in-batch links too), mirroring the CPT differential test.
        parent = list(range(N))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        next_eid = 0
        for batch in batches:
            links = []
            for u, v, w in batch:
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                parent[ru] = rv
                links.append((u, v, w, next_eid))
                next_eid += 1
            for f in (fo, fa, fd, oracle):
                f.batch_link(links)

            with measure(co) as conn_op_o:
                conn_o = fo.batch_connected(pairs)
            with measure(ca) as conn_op_a:
                conn_a = fa.batch_connected(pairs)
            with measure(cd) as conn_op_d:
                conn_d = fd.batch_connected(pairs)
            # Per-query oracle, then cross-implementation agreement.
            assert conn_o == [oracle.connected(u, v) for u, v in pairs]
            assert conn_o == conn_a == conn_d
            assert (
                (conn_op_o.work, conn_op_o.span)
                == (conn_op_a.work, conn_op_a.span)
                == (conn_op_d.work, conn_op_d.span)
            )

            with measure(co) as path_op_o:
                path_o = fo.batch_path_max(pairs)
            with measure(ca) as path_op_a:
                path_a = fa.batch_path_max(pairs)
            with measure(cd) as path_op_d:
                path_d = fd.batch_path_max(pairs)
            assert path_o == [oracle.path_max(u, v) for u, v in pairs]
            assert path_o == path_a == path_d
            assert (
                (path_op_o.work, path_op_o.span)
                == (path_op_a.work, path_op_a.span)
                == (path_op_d.work, path_op_d.span)
            )

        # Whole-run phase trees (updates + reads) agree across all three
        # paths: same phase names, same work/span/calls/items everywhere.
        t_o = _strip_wall(co.phases.to_dict())
        t_a = _strip_wall(ca.phases.to_dict())
        t_d = _strip_wall(cd.phases.to_dict())
        assert t_o == t_a == t_d

    @given(batches=_BATCHES, pairs=_PAIRS)
    @settings(deadline=None)
    def test_msf_batch_reads_match_per_query(self, batches, pairs):
        mo = BatchIncrementalMSF(N, seed=5, engine="object")
        ma = BatchIncrementalMSF(N, seed=5, engine="array")
        for batch in batches:
            rows = [(u, v, w) for u, v, w in batch if u != v]
            mo.batch_insert(rows)
            ma.batch_insert(rows)
            for m in (mo, ma):
                assert m.batch_connected(pairs) == [
                    m.connected(u, v) for u, v in pairs
                ]
                assert m.batch_heaviest_edges(pairs) == [
                    m.heaviest_edge(u, v) for u, v in pairs
                ]
            assert mo.batch_heaviest_edges(pairs) == ma.batch_heaviest_edges(
                pairs
            )

    def test_empty_and_invalid_batches(self):
        (fo, _), (fa, _), (fd, _) = _forest_trio()
        for f in (fo, fa, fd):
            assert f.batch_connected([]) == []
            assert f.batch_path_max([]) == []
            with pytest.raises(KeyError):
                f.batch_connected([(0, N)])
            with pytest.raises(KeyError):
                f.batch_path_max([(-1, 0)])


class TestReadsDoNotMutate:
    """Interleaved batch reads must leave the MSF byte-identical."""

    _PAIR_SAMPLE = [(0, 1), (2, 7), (3, 11), (5, 6), (0, 0), (4, 10)]

    @pytest.mark.parametrize("engine", ["object", "array"])
    def test_interleaved_reads_leave_state_identical(self, engine):
        import random

        rng = random.Random(99)
        batches = [
            [
                (rng.randrange(N), rng.randrange(N), float(rng.randrange(7)))
                for _ in range(rng.randrange(1, 10))
            ]
            for _ in range(5)
        ]
        quiet = BatchIncrementalMSF(N, seed=7, engine=engine)
        noisy = BatchIncrementalMSF(N, seed=7, engine=engine)
        if engine == "array":
            # Exercise the dense sweep on the read-heavy copy too.
            noisy.forest.rc.DENSE_THRESHOLD = 0
        for batch in batches:
            rows = [(u, v, w) for u, v, w in batch if u != v]
            quiet.batch_insert(rows)
            noisy.batch_insert(rows)
            noisy.batch_connected(self._PAIR_SAMPLE)
            noisy.batch_heaviest_edges(self._PAIR_SAMPLE)
        assert bytes(json.dumps(quiet.msf_edges()), "utf-8") == bytes(
            json.dumps(noisy.msf_edges()), "utf-8"
        )
        assert quiet.forest.rc.snapshot() == noisy.forest.rc.snapshot()


class _Recording:
    """Stub with full batch capability; records which entry points ran."""

    def __init__(self):
        self.calls = []

    def batch_is_connected(self, pairs):
        self.calls.append(("batch_is_connected", tuple(pairs)))
        return [True] * len(pairs)

    def batch_heaviest_edges(self, pairs):
        self.calls.append(("batch_heaviest_edges", tuple(pairs)))
        return [None] * len(pairs)

    @property
    def window_size(self):
        return 3


class _ConnBatchOnly:
    """Mixed capability: batched connectivity, per-query path max."""

    def __init__(self, msf):
        self._msf = msf

    def batch_is_connected(self, pairs):
        return self._msf.batch_connected(pairs)

    def heaviest_edge(self, u, v):
        return self._msf.heaviest_edge(u, v)


class TestServiceGrouping:
    def test_grouped_reads_dispatch_batched(self):
        s = _Recording()
        before = get_metrics().counter("query.fallback").value
        answers = answer_queries(
            s,
            [
                ("connected", 0, 1),
                ("path_max", 2, 3),
                ("window_size",),
                ("connected", 4, 5),
            ],
        )
        assert answers == [True, None, 3, True]
        # One shared call per kind, pairs in query order.
        assert s.calls == [
            ("batch_is_connected", ((0, 1), (4, 5))),
            ("batch_heaviest_edges", ((2, 3),)),
        ]
        assert get_metrics().counter("query.fallback").value == before

    def test_mixed_capability_falls_back_with_metric(self):
        msf = BatchIncrementalMSF(8, seed=1)
        msf.batch_insert([(0, 1, 1.0), (1, 2, 2.0)])
        s = _ConnBatchOnly(msf)
        m = get_metrics()
        before = m.counter("query.fallback").value
        before_pm = m.counter("query.fallback.path_max").value
        before_conn = m.counter("query.fallback.connected").value
        answers = answer_queries(
            s,
            [
                ("connected", 0, 2),
                ("path_max", 0, 2),
                ("connected", 0, 3),
                ("path_max", 0, 3),
            ],
        )
        assert answers == [True, (2.0, 1), False, None]
        # The group missing its batch method degraded loudly ...
        assert m.counter("query.fallback").value == before + 2
        assert m.counter("query.fallback.path_max").value == before_pm + 2
        # ... while the batch-capable group did not degrade at all.
        assert m.counter("query.fallback.connected").value == before_conn

    def test_unanswerable_kind_raises(self):
        class Empty:
            pass

        with pytest.raises(UnsupportedQuery):
            answer_queries(Empty(), [("connected", 0, 1)])
        with pytest.raises(UnsupportedQuery):
            answer_queries(Empty(), [("no_such_kind",)])
