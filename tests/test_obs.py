"""The observability layer: phase spans, metrics, benchmark records.

Covers the invariants docs/observability.md promises: exact phase
attribution (top-level phases + untracked = CostModel totals), truthful
nesting and same-name merging, zero-cost disabled metrics, and lossless
JSON round-trips of benchmark records.
"""

from __future__ import annotations

import json

import pytest

from repro.core import BatchIncrementalMSF
from repro.obs import (
    BenchmarkRecord,
    Counter,
    MetricsRegistry,
    PhaseNode,
    append_jsonl,
    get_metrics,
    read_record,
    record_from_costs,
    render_phase_table,
    set_metrics,
    set_metrics_enabled,
    write_record,
)
from repro.obs.export import SCHEMA, UNTRACKED, read_jsonl
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.runtime import CostModel


# ---------------------------------------------------------------- phases


def test_phase_records_work_span_calls_items():
    cost = CostModel()
    with cost.phase("a", items=10):
        cost.add(work=100, span=5)
    with cost.phase("a", items=7):
        cost.add(work=50, span=2)
    node = cost.phases.children["a"]
    assert (node.work, node.span) == (150, 7)
    assert node.calls == 2
    assert node.items == 17
    assert node.wall > 0.0


def test_phase_nesting_inclusive_and_self():
    cost = CostModel()
    with cost.phase("outer"):
        cost.add(work=5, span=1)
        with cost.phase("inner"):
            cost.add(work=20, span=3)
        cost.add(work=2, span=1)
    outer = cost.phases.children["outer"]
    inner = outer.children["inner"]
    assert outer.work == 27  # inclusive of the nested phase
    assert inner.work == 20
    assert outer.self_work == 7
    assert outer.self_span == outer.span - inner.span
    # Same name under different parents -> different nodes.
    with cost.phase("inner"):
        cost.add(work=1, span=1)
    assert cost.phases.children["inner"].work == 1
    assert inner.work == 20


def test_phase_attribution_sums_to_model_totals():
    cost = CostModel()
    with cost.phase("p1"):
        cost.add(work=30, span=4)
    with cost.phase("p2"):
        cost.add(work=12, span=2)
    top_work = sum(c.work for c in cost.phases.children.values())
    assert top_work == cost.work
    assert cost.untracked_work() == 0
    cost.add(work=5, span=1)  # outside every phase
    assert cost.untracked_work() == 5


def test_phase_reentrancy_and_count():
    cost = CostModel()
    for batch in ([1, 2, 3], [4, 5]):
        with cost.phase("ingest") as ph:
            ph.count(len(batch))
            cost.add(work=len(batch), span=1)
    node = cost.phases.children["ingest"]
    assert (node.calls, node.items, node.work) == (2, 5, 5)


def test_phase_on_disabled_model_tracks_calls_not_work():
    cost = CostModel(enabled=False)
    with cost.phase("p"):
        cost.add(work=1000, span=10)
    node = cost.phases.children["p"]
    assert (node.work, node.span) == (0, 0)
    assert node.calls == 1
    assert node.wall >= 0.0


def test_phase_reset_clears_tree():
    cost = CostModel()
    with cost.phase("p"):
        cost.add(work=1, span=1)
    cost.reset()
    assert cost.work == 0
    assert not cost.phases.children


def test_phase_walk_preorder():
    cost = CostModel()
    with cost.phase("a"):
        with cost.phase("b"):
            pass
    with cost.phase("c"):
        pass
    names = [(d, n.name) for d, n in cost.phases.walk()]
    assert names == [(0, "total"), (1, "a"), (2, "b"), (1, "c")]


def test_phase_node_merge_and_roundtrip():
    a, b = PhaseNode("x"), PhaseNode("x")
    a.work, a.span, a.calls, a.items, a.wall = 10, 3, 1, 4, 0.5
    b.work, b.span, b.calls, b.items, b.wall = 7, 5, 2, 1, 0.25
    b.child("sub").work = 6
    a.merge(b)
    assert (a.work, a.span, a.calls, a.items) == (17, 8, 3, 5)
    assert a.wall == pytest.approx(0.75)
    assert a.children["sub"].work == 6
    again = PhaseNode.from_dict(a.to_dict())
    assert again.to_dict() == a.to_dict()


# --------------------------------------------------- real-path attribution


def test_batch_insert_phases_sum_to_total():
    """Algorithm 2's instrumented phases account for every unit of work."""
    cost = CostModel()
    m = BatchIncrementalMSF(32, seed=7, cost=cost)
    m.batch_insert([(i, (i + 1) % 32, float(i)) for i in range(31)])
    m.batch_insert([(0, 16, 0.5), (3, 9, 0.25)])
    top = cost.phases.children
    assert {"init", "semisort", "cpt-build", "msf-kernel", "forest-splice"} <= set(top)
    assert sum(c.work for c in top.values()) == cost.work
    assert cost.untracked_work() == 0
    assert "rc-propagate" in top["forest-splice"].children
    assert {"cpt-mark", "cpt-expand"} <= set(top["cpt-build"].children)


# ---------------------------------------------------------------- metrics


def test_metrics_instruments_accumulate():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.5)
    for v in (1.0, 3.0, 2.0):
        reg.histogram("h").observe(v)
    d = reg.as_dict()
    assert d["counters"]["c"] == 5
    assert d["gauges"]["g"] == 2.5
    assert d["histograms"]["h"] == {
        "count": 3,
        "sum": 6.0,
        "min": 1.0,
        "max": 3.0,
        "mean": 2.0,
    }
    reg.reset()
    assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_disabled_registry_returns_shared_null_instruments():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("a") is NULL_COUNTER
    assert reg.gauge("b") is NULL_GAUGE
    assert reg.histogram("c") is NULL_HISTOGRAM
    reg.counter("a").inc(100)
    reg.histogram("c").observe(9.0)
    assert NULL_COUNTER.value == 0
    assert NULL_HISTOGRAM.count == 0
    assert reg.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_disable_reenable_keeps_values():
    reg = MetricsRegistry()
    reg.counter("kept").inc(3)
    reg.enabled = False
    reg.counter("kept").inc(99)  # null instrument, dropped
    reg.enabled = True
    assert reg.counter("kept").value == 3


def test_global_registry_swap_and_toggle():
    fresh = MetricsRegistry()
    old = set_metrics(fresh)
    try:
        assert get_metrics() is fresh
        prev = set_metrics_enabled(False)
        assert prev is True
        assert get_metrics().counter("x") is NULL_COUNTER
        set_metrics_enabled(True)
        assert isinstance(get_metrics().counter("x"), Counter)
    finally:
        set_metrics(old)


def test_library_hot_paths_report_metrics():
    fresh = MetricsRegistry()
    old = set_metrics(fresh)
    try:
        m = BatchIncrementalMSF(16, seed=1)
        m.batch_insert([(0, 1, 1.0), (1, 2, 2.0)])
        d = fresh.as_dict()
        assert d["counters"]["batch_msf.batches"] == 1
        assert d["counters"]["batch_msf.inserted"] == 2
        assert d["counters"]["semisort.calls"] >= 1
        assert d["histograms"]["batch_msf.batch_size"]["count"] == 1
    finally:
        set_metrics(old)


# ---------------------------------------------------------------- records


def _model_with_phases() -> CostModel:
    cost = CostModel()
    with cost.phase("build", items=3):
        cost.add(work=40, span=4)
        with cost.phase("inner"):
            cost.add(work=10, span=1)
    with cost.phase("query"):
        cost.add(work=5, span=2)
    return cost


def test_record_from_costs_single_model():
    cost = _model_with_phases()
    rec = record_from_costs("r", cost, params={"n": 3}, extra={"ok": True})
    assert rec.schema == SCHEMA
    assert rec.totals == {"work": 55, "span": 7, "wall_s": pytest.approx(rec.totals["wall_s"])}
    assert sum(p["work"] for p in rec.phases) == cost.work
    assert [p["name"] for p in rec.phases] == ["build", "query"]
    assert rec.phases[0]["children"][0]["name"] == "inner"


def test_record_merges_models_and_flags_untracked():
    a = _model_with_phases()
    b = CostModel()
    with b.phase("build"):
        b.add(work=20, span=3)
    b.add(work=8, span=1)  # untracked on purpose
    rec = record_from_costs("merged", [a, b])
    assert rec.totals["work"] == a.work + b.work
    by_name = {p["name"]: p for p in rec.phases}
    assert by_name["build"]["work"] == 70
    assert by_name["build"]["calls"] == 2
    assert by_name[UNTRACKED]["work"] == 8
    assert sum(p["work"] for p in rec.phases) == rec.totals["work"]


def test_record_json_roundtrip(tmp_path):
    rec = record_from_costs(
        "rt", _model_with_phases(), params={"seed": 9}, metrics={"counters": {"c": 1}}
    )
    path = write_record(rec, tmp_path / "rt.json")
    again = read_record(path)
    assert again.to_dict() == rec.to_dict()
    # The file itself is plain, schema-tagged JSON.
    raw = json.loads(path.read_text())
    assert raw["schema"] == SCHEMA
    # phase_tree reconstructs a renderable tree with the right totals.
    tree = again.phase_tree()
    assert tree.work == rec.totals["work"]
    assert set(tree.children) == {"build", "query"}


def test_record_jsonl_append(tmp_path):
    path = tmp_path / "log.jsonl"
    for i in range(3):
        cost = CostModel()
        with cost.phase("p"):
            cost.add(work=i, span=1)
        append_jsonl(record_from_costs(f"run{i}", cost), path)
    recs = read_jsonl(path)
    assert [r.name for r in recs] == ["run0", "run1", "run2"]
    assert [r.totals["work"] for r in recs] == [0, 1, 2]


def test_render_phase_table_smoke():
    cost = _model_with_phases()
    rec = record_from_costs("smoke", cost)
    out = render_phase_table(rec)
    assert "smoke" in out
    assert "build" in out and "inner" in out and "query" in out
    assert "100.0%" in out  # total row
    # Also renders a bare PhaseNode.
    assert "build" in render_phase_table(cost.phases, title="direct")


def test_read_record_rejects_non_records(tmp_path):
    p = tmp_path / "junk.json"
    p.write_text(json.dumps({"hello": 1}))
    with pytest.raises((ValueError, KeyError)):
        read_record(p)


def test_benchmark_record_defaults_roundtrip():
    rec = BenchmarkRecord(name="bare")
    assert BenchmarkRecord.from_dict(rec.to_dict()).to_dict() == rec.to_dict()


def _deep_model(depth=8, fanout=2):
    cost = CostModel()

    def dig(d):
        with cost.phase(f"lvl{d}"):
            cost.add(work=1, span=1)
            if d < depth:
                for _ in range(fanout if d == 1 else 1):
                    dig(d + 1)

    dig(1)
    return cost


def test_phase_cap_folds_depth_and_marks_collapsed():
    from repro.obs.export import cap_phases

    rec = record_from_costs("deep", _deep_model(), raw_phases=True)

    def max_depth(p):
        return 1 + max((max_depth(c) for c in p["children"]), default=0)

    assert max_depth(rec.phases[0]) == 8
    capped = cap_phases(rec.phases, max_depth=3, max_nodes=10**6)
    assert max_depth(capped[0]) == 3
    # Inclusive totals survive the fold; the boundary node says how many
    # descendants it absorbed.
    assert capped[0]["work"] == rec.phases[0]["work"]
    frontier = capped[0]["children"][0]["children"][0]
    assert frontier["children"] == [] and frontier["collapsed"] > 0
    # The raw record is untouched.
    assert max_depth(rec.phases[0]) == 8


def test_phase_cap_node_budget_tightens_depth():
    from repro.obs.export import cap_phases

    rec = record_from_costs("deep", _deep_model(), raw_phases=True)
    capped = cap_phases(rec.phases, max_depth=8, max_nodes=3)

    def count(p):
        return 1 + sum(count(c) for c in p["children"])

    assert sum(count(p) for p in capped) <= 3


def test_record_from_costs_caps_by_default_env_opts_out(monkeypatch):
    from repro.obs.export import PHASE_DEPTH_CAP, RAW_PHASES_ENV

    def max_depth(p):
        return 1 + max((max_depth(c) for c in p["children"]), default=0)

    monkeypatch.delenv(RAW_PHASES_ENV, raising=False)
    rec = record_from_costs("deep", _deep_model())
    assert max_depth(rec.phases[0]) == PHASE_DEPTH_CAP
    assert sum(p["work"] for p in rec.phases) == rec.totals["work"]
    monkeypatch.setenv(RAW_PHASES_ENV, "1")
    raw = record_from_costs("deep", _deep_model())
    assert max_depth(raw.phases[0]) == 8


def test_from_dict_accepts_v1_and_rejects_unknown_schema():
    from repro.obs.export import SCHEMA_V1

    d = record_from_costs("r", _model_with_phases()).to_dict()
    d["schema"] = SCHEMA_V1
    assert BenchmarkRecord.from_dict(d).schema == SCHEMA_V1
    d["schema"] = "repro.obs/benchmark-record/v99"
    with pytest.raises(ValueError, match="unknown benchmark-record schema"):
        BenchmarkRecord.from_dict(d)
