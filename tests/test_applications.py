"""Tests for the applications package (single-linkage, bottleneck/widest
paths) against brute-force oracles."""

import itertools
import math
import random

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import BottleneckPaths, SingleLinkageClustering, WidestPaths


def brute_minimax(edges, n, u, v):
    """Minimax path value by thresholding + union-find."""
    if u == v:
        return float("-inf")
    best = math.inf
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for w, a, b in sorted((w, a, b) for a, b, w in edges):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
        if find(u) == find(v):
            return w
    return None


class TestSingleLinkage:
    def test_basic_merging(self):
        sl = SingleLinkageClustering(4)
        sl.batch_insert([(0, 1, 1.0), (1, 2, 5.0), (2, 3, 2.0)])
        assert sl.merge_distance(0, 1) == 1.0
        assert sl.merge_distance(0, 3) == 5.0  # through the 5.0 edge
        assert sl.same_cluster(0, 1, 1.0)
        assert not sl.same_cluster(0, 3, 4.9)
        assert sl.same_cluster(0, 3, 5.0)

    def test_num_clusters_by_threshold(self):
        sl = SingleLinkageClustering(4)
        sl.batch_insert([(0, 1, 1.0), (1, 2, 5.0), (2, 3, 2.0)])
        assert sl.num_clusters(0.5) == 4
        assert sl.num_clusters(1.0) == 3
        assert sl.num_clusters(2.0) == 2
        assert sl.num_clusters(5.0) == 1
        assert sl.num_components == 1

    def test_merge_heights_sorted(self):
        sl = SingleLinkageClustering(5)
        sl.batch_insert([(0, 1, 3.0), (1, 2, 1.0), (3, 4, 2.0)])
        assert sl.merge_heights() == [1.0, 2.0, 3.0]

    def test_clusters_partition(self):
        sl = SingleLinkageClustering(5)
        sl.batch_insert([(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.5)])
        assert sl.clusters(1.0) == [[0, 1], [2], [3], [4]]
        assert sl.clusters(1.5) == [[0, 1], [2], [3, 4]]
        assert sl.clusters(2.0) == [[0, 1, 2], [3, 4]]

    def test_better_edges_tighten_merges(self):
        sl = SingleLinkageClustering(3)
        sl.batch_insert([(0, 1, 9.0), (1, 2, 9.0)])
        assert sl.merge_distance(0, 2) == 9.0
        sl.batch_insert([(0, 2, 2.0)])
        assert sl.merge_distance(0, 2) == 2.0
        assert sl.num_clusters(2.0) == 2  # {0,2} merged, 1 apart

    def test_negative_dissimilarity_rejected(self):
        sl = SingleLinkageClustering(3)
        with pytest.raises(ValueError):
            sl.batch_insert([(0, 1, -1.0)])

    def test_disconnected_merge_distance(self):
        sl = SingleLinkageClustering(3)
        assert sl.merge_distance(0, 2) == math.inf
        assert sl.merge_distance(1, 1) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_against_scipy_style_oracle(self, seed):
        rng = random.Random(seed)
        n = 20
        sl = SingleLinkageClustering(n, seed=seed)
        edges = []
        for _ in range(80):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, round(rng.uniform(0, 10), 3)))
        for i in range(0, len(edges), 7):
            sl.batch_insert(edges[i : i + 7])
        for theta in (0.5, 2.0, 5.0, 10.0):
            g = nx.Graph()
            g.add_nodes_from(range(n))
            for u, v, w in edges:
                if w <= theta and (not g.has_edge(u, v) or g[u][v]["w"] > w):
                    g.add_edge(u, v, w=w)
            assert sl.num_clusters(theta) == nx.number_connected_components(g)
            comps = [sorted(c) for c in nx.connected_components(g)]
            assert sl.clusters(theta) == sorted(comps)


class TestBottleneckPaths:
    def test_small(self):
        bp = BottleneckPaths(4)
        bp.batch_insert([(0, 1, 5.0), (1, 2, 1.0), (0, 2, 3.0), (2, 3, 7.0)])
        b, _ = bp.bottleneck(0, 2)
        assert b == 3.0  # direct edge beats 0-1-2's max of 5
        assert bp.bottleneck(0, 3)[0] == 7.0
        assert bp.bottleneck(1, 1) == (float("-inf"), -1)
        assert bp.bottleneck(0, 3) is not None
        assert bp.reachable_within(0, 2, 3.0)
        assert not bp.reachable_within(0, 2, 2.9)

    def test_disconnected(self):
        bp = BottleneckPaths(3)
        bp.batch_insert([(0, 1, 1.0)])
        assert bp.bottleneck(0, 2) is None
        assert not bp.reachable_within(0, 2, 1e18)
        assert bp.num_components == 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_oracle(self, seed):
        rng = random.Random(seed)
        n = 16
        bp = BottleneckPaths(n, seed=seed)
        edges = []
        for _ in range(60):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                edges.append((u, v, round(rng.uniform(0, 9), 3)))
        for i in range(0, len(edges), 9):
            bp.batch_insert(edges[i : i + 9])
        for u, v in itertools.combinations(range(n), 2):
            expect = brute_minimax(edges, n, u, v)
            got = bp.bottleneck(u, v)
            if expect is None:
                assert got is None
            else:
                assert got[0] == expect


class TestWidestPaths:
    def test_small(self):
        wp = WidestPaths(4)
        wp.batch_insert([(0, 1, 10.0), (1, 2, 3.0), (0, 2, 5.0), (2, 3, 8.0)])
        assert wp.widest_path(0, 2)[0] == 5.0  # direct 5 beats min(10, 3)
        assert wp.widest_path(0, 3)[0] == 5.0  # 0-2-3: min(5, 8)
        assert wp.widest_path(2, 2) == (float("inf"), -1)
        assert wp.supports_demand(0, 3, 5.0)
        assert not wp.supports_demand(0, 3, 5.1)

    def test_upgrades_improve_capacity(self):
        wp = WidestPaths(3)
        wp.batch_insert([(0, 1, 2.0), (1, 2, 2.0)])
        assert wp.widest_path(0, 2)[0] == 2.0
        wp.batch_insert([(0, 2, 9.0)])
        assert wp.widest_path(0, 2)[0] == 9.0

    def test_disconnected(self):
        wp = WidestPaths(3)
        assert wp.widest_path(0, 1) is None
        assert not wp.supports_demand(0, 1, 0.0)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_oracle(self, seed):
        rng = random.Random(100 + seed)
        n = 14
        wp = WidestPaths(n, seed=seed)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        batch = []
        for _ in range(50):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                c = round(rng.uniform(1, 9), 3)
                batch.append((u, v, c))
                if not g.has_edge(u, v) or g[u][v]["cap"] < c:
                    g.add_edge(u, v, cap=c)
        wp.batch_insert(batch)
        for u, v in itertools.combinations(range(n), 2):
            got = wp.widest_path(u, v)
            if not nx.has_path(g, u, v):
                assert got is None
                continue
            # Oracle: maximize over paths of the min capacity.
            expect = max(
                min(g[a][b]["cap"] for a, b in zip(p, p[1:]))
                for p in nx.all_simple_paths(g, u, v)
            )
            assert got[0] == pytest.approx(expect)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(2, 10),
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9), st.integers(0, 12)),
        max_size=30,
    ),
)
def test_property_minimax_matches_oracle(n, edges):
    rows = [(u % n, v % n, float(w)) for u, v, w in edges if u % n != v % n]
    bp = BottleneckPaths(n)
    bp.batch_insert(rows)
    for u in range(n):
        for v in range(u + 1, n):
            expect = brute_minimax(rows, n, u, v)
            got = bp.bottleneck(u, v)
            assert (got is None) == (expect is None)
            if got is not None:
                assert got[0] == expect
