"""Hypothesis stateful (rule-based) testing.

Two machines drive the library through arbitrary interleavings of
operations while maintaining a networkx model; every rule cross-checks a
random sample of queries, and invariants run between steps.  This explores
operation orderings no hand-written scenario covers.
"""

import networkx as nx
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core import BatchIncrementalMSF
from repro.msf.graph import EdgeArray
from repro.msf.kruskal import kruskal_msf
from repro.sliding_window import SWConnectivityEager
from repro.trees import DynamicForest

N = 12


class DynamicForestMachine(RuleBasedStateMachine):
    """Random link/cut/query interleavings vs a networkx model."""

    def __init__(self):
        super().__init__()
        self.forest = DynamicForest(N, seed=97)
        self.model = nx.Graph()
        self.model.add_nodes_from(range(N))
        self.next_eid = 0
        self.live: dict[int, tuple[int, int, float]] = {}

    @rule(
        u=st.integers(0, N - 1),
        v=st.integers(0, N - 1),
        w=st.integers(0, 30),
    )
    def link(self, u, v, w):
        if u == v or nx.has_path(self.model, u, v):
            return
        eid = self.next_eid
        self.next_eid += 1
        self.forest.batch_link([(u, v, float(w), eid)])
        self.model.add_edge(u, v, w=float(w), eid=eid)
        self.live[eid] = (u, v, float(w))

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def cut(self, pick):
        eid = pick.choice(sorted(self.live))
        u, v, _ = self.live.pop(eid)
        self.forest.batch_cut([eid])
        self.model.remove_edge(u, v)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def batch_mixed(self, data):
        # One combined cut + link propagation pass.
        cut_ids = data.draw(
            st.lists(st.sampled_from(sorted(self.live)), unique=True, max_size=3)
        )
        for eid in cut_ids:
            u, v, _ = self.live.pop(eid)
            self.model.remove_edge(u, v)
        links = []
        for _ in range(data.draw(st.integers(0, 3))):
            u = data.draw(st.integers(0, N - 1))
            v = data.draw(st.integers(0, N - 1))
            if u == v or nx.has_path(self.model, u, v):
                continue
            eid = self.next_eid
            self.next_eid += 1
            w = float(data.draw(st.integers(0, 30)))
            links.append((u, v, w, eid))
            self.model.add_edge(u, v, w=w, eid=eid)
            self.live[eid] = (u, v, w)
        self.forest.batch_update(links=links, cut_eids=cut_ids)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_connectivity(self, u, v):
        assert self.forest.connected(u, v) == nx.has_path(self.model, u, v)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_path_max(self, u, v):
        got = self.forest.path_max(u, v)
        if u == v or not nx.has_path(self.model, u, v):
            assert got is None
        else:
            path = nx.shortest_path(self.model, u, v)
            expect = max(
                (self.model[a][b]["w"], self.model[a][b]["eid"])
                for a, b in zip(path, path[1:])
            )
            assert got == expect

    @rule(v=st.integers(0, N - 1))
    def query_component_size(self, v):
        assert self.forest.component_size(v) == len(
            nx.node_connected_component(self.model, v)
        )

    @invariant()
    def counts_match(self):
        assert self.forest.num_edges == self.model.number_of_edges()
        assert self.forest.num_components == nx.number_connected_components(
            self.model
        )


class SlidingWindowMachine(RuleBasedStateMachine):
    """Random insert/expire interleavings vs window recomputation."""

    def __init__(self):
        super().__init__()
        self.sw = SWConnectivityEager(N, seed=13)
        self.stream: list[tuple[int, int]] = []
        self.tw = 0

    @rule(
        edges=st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=5
        )
    )
    def insert(self, edges):
        batch = [e for e in edges if e[0] != e[1]]
        self.stream += batch
        self.sw.batch_insert(batch)

    @precondition(lambda self: len(self.stream) > self.tw)
    @rule(data=st.data())
    def expire(self, data):
        d = data.draw(st.integers(1, len(self.stream) - self.tw))
        self.tw += d
        self.sw.batch_expire(d)

    def _window_graph(self):
        g = nx.MultiGraph()
        g.add_nodes_from(range(N))
        g.add_edges_from(self.stream[self.tw :])
        return g

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query(self, u, v):
        assert self.sw.is_connected(u, v) == nx.has_path(self._window_graph(), u, v)

    @invariant()
    def component_count_matches(self):
        assert self.sw.num_components == nx.number_connected_components(
            self._window_graph()
        )
        assert self.sw.window_size == len(self.stream) - self.tw


class CrossEngineMSFMachine(RuleBasedStateMachine):
    """Both RC-tree engines driven through identical random MSF streams.

    Every rule applies the same command (``batch_insert`` /
    ``forget_edges`` / queries) to an object-engine and an array-engine
    :class:`BatchIncrementalMSF`; invariants demand the two agree with
    each other, charge identical simulated work/span, and match a Kruskal
    oracle.  The oracle is applied *incrementally* -- ``kruskal_msf`` over
    (surviving forest + new batch) per insert, edge removal per forget --
    which models exactly the structure's documented semantics: while no
    edge has been forgotten it coincides with global Kruskal over the
    whole stream, and ``forget_edges`` is a cut *without replacement*
    (the sliding-window expiry primitive), not a general deletion.  This
    is the stateful counterpart of ``tests/test_engine_differential.py``
    -- interleavings instead of single shots, and Hypothesis shrinks any
    divergence to a minimal command sequence.
    """

    def __init__(self):
        super().__init__()
        self.obj = BatchIncrementalMSF(N, seed=41, engine="object")
        self.arr = BatchIncrementalMSF(N, seed=41, engine="array")
        self.oracle: list[tuple[int, int, float, int]] = []
        self.next_eid = 0

    @rule(
        edges=st.lists(
            st.tuples(
                st.integers(0, N - 1),
                st.integers(0, N - 1),
                st.integers(0, 6),
            ),
            max_size=8,
        )
    )
    def insert(self, edges):
        rows = []
        for u, v, w in edges:
            rows.append((u, v, float(w), self.next_eid))
            self.next_eid += 1
        rep_o = self.obj.batch_insert(rows)
        rep_a = self.arr.batch_insert(rows)
        assert rep_o.inserted == rep_a.inserted
        assert rep_o.evicted == rep_a.evicted
        assert rep_o.rejected == rep_a.rejected
        pool = self.oracle + [r for r in rows if r[0] != r[1]]
        if pool:
            arr = EdgeArray.from_tuples(N, pool)
            keep = set(arr.eid[kruskal_msf(arr)].tolist())
            self.oracle = [r for r in pool if r[3] in keep]

    @rule(data=st.data())
    def forget(self, data):
        if not self.oracle:
            return
        eids = sorted(r[3] for r in self.oracle)
        chosen = data.draw(
            st.lists(st.sampled_from(eids), unique=True, max_size=4),
            label="forgotten eids",
        )
        if not chosen:
            return
        self.obj.forget_edges(chosen)
        self.arr.forget_edges(chosen)
        gone = set(chosen)
        self.oracle = [r for r in self.oracle if r[3] not in gone]

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_connected(self, u, v):
        assert self.obj.connected(u, v) == self.arr.connected(u, v)

    @rule(u=st.integers(0, N - 1), v=st.integers(0, N - 1))
    def query_heaviest(self, u, v):
        assert self.obj.heaviest_edge(u, v) == self.arr.heaviest_edge(u, v)

    @invariant()
    def engines_and_oracle_agree(self):
        msf_o = self.obj.msf_edges()
        assert msf_o == self.arr.msf_edges()
        assert self.obj.num_components == self.arr.num_components
        assert self.obj.total_weight() == self.arr.total_weight()
        assert {e[3] for e in msf_o} == {r[3] for r in self.oracle}

    @invariant()
    def engines_charge_identical_costs(self):
        assert (self.obj.cost.work, self.obj.cost.span) == (
            self.arr.cost.work,
            self.arr.cost.span,
        )


TestDynamicForestStateful = DynamicForestMachine.TestCase
TestDynamicForestStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestSlidingWindowStateful = SlidingWindowMachine.TestCase
TestSlidingWindowStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestCrossEngineMSFStateful = CrossEngineMSFMachine.TestCase
TestCrossEngineMSFStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
